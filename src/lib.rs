//! Umbrella crate for the adaptive-query-parallelization reproduction.
//!
//! This crate only re-exports the workspace members so that the runnable
//! examples under `examples/` and the cross-crate integration tests under
//! `tests/` have a single, convenient dependency. The actual functionality
//! lives in the `apq-*` crates:
//!
//! * [`apq_columnar`] — columnar storage, partitioning, data generation.
//! * [`apq_operators`] — physical relational operators.
//! * [`apq_engine`] — dataflow plan IR, scheduler, profiler.
//! * [`apq_core`] — adaptive parallelization (plan mutation + convergence).
//! * [`apq_baselines`] — heuristic / work-stealing / admission-control baselines.
//! * [`apq_workloads`] — TPC-H-like and TPC-DS-like workloads, micro-benchmarks.
//! * [`apq_bench`] — experiment harness reproducing the paper's tables and figures.

pub use apq_baselines as baselines;
pub use apq_bench as bench;
pub use apq_columnar as columnar;
pub use apq_core as adaptive;
pub use apq_engine as engine;
pub use apq_operators as operators;
pub use apq_workloads as workloads;
