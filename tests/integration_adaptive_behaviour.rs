//! Cross-crate behavioural properties of adaptive parallelization: the
//! degree of parallelism grows only where it pays off, the convergence
//! algorithm stays within its bounds, and the adaptive plans hold their own
//! under data skew and concurrent load.

use std::sync::Arc;

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::Engine;
use adaptive_parallelization::workloads::concurrent::{measure_under_load, BackgroundLoad};
use adaptive_parallelization::workloads::micro::{join_sweep, select_sweep, skewed};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};

#[test]
fn adaptive_parallelism_grows_and_improves_on_a_large_scan() {
    let rows = 400_000;
    let workers = 4;
    let catalog = select_sweep::catalog(rows, 11);
    let engine = Engine::with_workers(workers);
    let config =
        AdaptiveConfig::for_cores(workers).with_min_partition_rows(1_000).with_max_runs(16);
    let serial = select_sweep::plan(&catalog, 50).expect("plan builds");
    let report = AdaptiveOptimizer::new(config.clone())
        .optimize(&engine, &catalog, &serial)
        .expect("optimization succeeds");

    // The best plan is at least as fast as the serial plan.
    assert!(report.total_runs >= 1);
    assert!(report.best_us <= report.serial_us);
    // On parallel hardware the best plan must also be more parallel than the
    // serial plan. On a single hardware thread (some CI containers) extra
    // partitions cannot improve wall time, so converging back to the serial
    // plan is the *correct* adaptive outcome and growth is not asserted.
    let hw = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    if hw > 1 {
        assert!(report.best_plan.node_count() > serial.node_count());
        assert!(report.best_plan.count_of("select") >= 2, "select was never parallelized");
    }
    // Convergence respected both the balance rule and the hard cap.
    assert!(report.total_runs <= config.max_runs);
    // The run count stays within the paper's (approximate) upper bound plus
    // slack for credit earned on the plateau.
    assert!(report.total_runs <= 2 * config.upper_bound_runs());
}

#[test]
fn adaptive_beats_static_partitioning_under_skew() {
    // Fig. 12's qualitative claim: with skewed matches, dynamically sized
    // partitions beat equal-sized static partitions.
    let rows = 600_000;
    let workers = 4;
    let catalog = skewed::catalog(rows, 3);
    let engine = Engine::with_workers(workers);
    let serial = skewed::plan(&catalog, 2).expect("plan builds");
    let static_plan = heuristic_parallelize(&serial, &catalog, workers).expect("HP rewrite");
    let report = AdaptiveOptimizer::new(
        AdaptiveConfig::for_cores(workers).with_min_partition_rows(4_000).with_max_runs(20),
    )
    .optimize(&engine, &catalog, &serial)
    .expect("optimization succeeds");

    let best = |plan: &adaptive_parallelization::engine::Plan| {
        (0..5)
            .map(|_| {
                let start = std::time::Instant::now();
                engine.execute(plan, &catalog).expect("executes");
                start.elapsed().as_secs_f64()
            })
            .fold(f64::INFINITY, f64::min)
    };
    let static_s = best(&static_plan);
    let adaptive_s = best(&report.best_plan);
    // Allow generous noise margin: adaptive must not be dramatically slower,
    // and usually is faster. (The strict "<" would be flaky on a busy CI box.)
    assert!(
        adaptive_s <= static_s * 1.5,
        "adaptive {adaptive_s:.4}s much slower than static {static_s:.4}s under skew"
    );
}

#[test]
fn adaptive_join_plan_partitions_only_the_outer_side() {
    let catalog = join_sweep::catalog(200_000, 512, 21);
    let workers = 4;
    let engine = Engine::with_workers(workers);
    let serial = join_sweep::plan(&catalog).expect("plan builds");
    let report = AdaptiveOptimizer::new(
        AdaptiveConfig::for_cores(workers).with_min_partition_rows(1_000).with_max_runs(12),
    )
    .optimize(&engine, &catalog, &serial)
    .expect("optimization succeeds");
    // The hash build stays single (the paper never parallelizes the build side).
    assert_eq!(report.best_plan.count_of("hashbuild"), 1);
    // The probe side got cloned if any mutation happened at all.
    if report.total_runs > 0 && report.best_plan.node_count() > serial.node_count() {
        assert!(
            report.best_plan.count_of("join") + report.best_plan.count_of("fetch")
                > serial.count_of("join") + serial.count_of("fetch"),
            "no probe-side operator was parallelized"
        );
    }
}

#[test]
fn adaptive_plans_respond_under_concurrent_load() {
    // Smoke-scale version of the Fig. 16 concurrent experiment: measuring the
    // adaptive plan under background load completes and returns sane numbers.
    let workers = 4;
    let catalog = tpch::generate(TpchScale::new(0.002), 55);
    let engine = Arc::new(Engine::with_workers(workers));
    let serial = TpchQuery::Q6.build(&catalog).expect("Q6 builds");
    let hp = heuristic_parallelize(&serial, &catalog, workers).expect("HP rewrite");
    let report = AdaptiveOptimizer::new(
        AdaptiveConfig::for_cores(workers).with_min_partition_rows(256).with_max_runs(8),
    )
    .optimize(&engine, &catalog, &serial)
    .expect("optimization succeeds");

    let background: Vec<_> = TpchQuery::all()
        .iter()
        .map(|q| {
            let s = q.build(&catalog).expect("builds");
            heuristic_parallelize(&s, &catalog, workers).expect("HP rewrite")
        })
        .collect();
    let load = BackgroundLoad::start(Arc::clone(&engine), Arc::clone(&catalog), background, 6, 3);
    let hp_m = measure_under_load(&engine, &catalog, &hp, 3).expect("HP measured");
    let ap_m = measure_under_load(&engine, &catalog, &report.best_plan, 3).expect("AP measured");
    let executed = load.stop();
    assert!(executed > 0, "background load executed nothing");
    assert!(hp_m.mean_ms() > 0.0 && ap_m.mean_ms() > 0.0);
}

#[test]
fn convergence_statistics_are_reported_consistently() {
    let workers = 4;
    let catalog = tpch::generate(TpchScale::new(0.002), 99);
    let engine = Engine::with_workers(workers);
    let optimizer = AdaptiveOptimizer::new(
        AdaptiveConfig::for_cores(workers).with_min_partition_rows(256).with_max_runs(10),
    );
    for query in [TpchQuery::Q6, TpchQuery::Q14, TpchQuery::Q4] {
        let serial = query.build(&catalog).expect("builds");
        let report = optimizer.optimize(&engine, &catalog, &serial).expect("optimizes");
        assert_eq!(report.records.len(), report.total_runs + 1, "{query}: record count");
        assert!(report.gme_run <= report.total_runs, "{query}: GME beyond the last run");
        assert!(report.best_us <= report.serial_us, "{query}: best worse than serial");
        assert!(report.gme_us >= report.best_us, "{query}: GME better than the true best");
        assert!(report.speedup() >= 1.0, "{query}: speedup below 1");
        // The convergence curve covers every run exactly once, in order.
        let runs: Vec<usize> = report.convergence_curve().iter().map(|(r, _)| *r).collect();
        assert_eq!(runs, (0..=report.total_runs).collect::<Vec<_>>(), "{query}: curve runs");
    }
}
