//! Cross-mode equivalence: morsel-driven execution must produce
//! byte-identical results to operator-at-a-time execution for every
//! evaluated query, under both scheduler policies.
//!
//! This is the execution-layer analogue of `integration_correctness.rs`:
//! plan mutation changes *what the plan looks like*, the execution mode
//! changes *how a fixed plan is dispatched* — neither may change what a
//! query returns. Serial plans exercise scan-source pipelines; the
//! heuristically parallelized plans exercise chunk-source pipelines over
//! `SlicePart` stream partitions (the PR-1 `stream_base` alignment
//! invariant, now also load-bearing for morsel slicing).

use std::sync::Arc;
use std::time::Duration;

use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::{
    ControllerConfig, Engine, EngineConfig, ExecutionMode, OperatorSpec, Plan, QueryOutput,
    QueryService, SchedulerPolicy, ServiceConfig, SharingConfig,
};
use adaptive_parallelization::workloads::tpcds::{self, TpcdsQuery, TpcdsScale};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};
use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_operators::{AggFunc, BinaryOp, CmpOp, Predicate};

const WORKERS: usize = 4;
/// Small enough that the ~12k-row sample workloads split into many morsels.
const MORSEL_ROWS: usize = 1_000;

fn morsel_engine(policy: SchedulerPolicy) -> Engine {
    Engine::new(
        EngineConfig::with_workers(WORKERS)
            .with_scheduler(policy)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(MORSEL_ROWS),
    )
}

/// Executes `plan` operator-at-a-time, then under morsel mode with both
/// scheduler policies, asserting identical outputs throughout.
fn assert_modes_agree(
    label: &str,
    plan: &Plan,
    catalog: &Arc<Catalog>,
    reference: &Engine,
) -> QueryOutput {
    let expected = reference.execute(plan, catalog).expect("operator-at-a-time executes").output;
    for policy in SchedulerPolicy::ALL {
        let engine = morsel_engine(policy);
        let exec = engine.execute(plan, catalog).expect("morsel mode executes");
        assert_eq!(exec.output, expected, "{label} [{policy}]: morsel mode diverged");
        // Morsel mode really ran morsel-wise: profiles carry pipelines and
        // every executed node is profiled exactly once.
        assert_eq!(
            exec.profile.operators.len(),
            plan.node_count(),
            "{label} [{policy}]: missing operator profiles"
        );
        assert_eq!(
            exec.profile.morsels_by_worker().iter().sum::<u64>() as usize,
            exec.profile.total_morsels(),
            "{label} [{policy}]: per-worker morsel counters do not add up"
        );
    }
    expected
}

#[test]
fn tpch_serial_and_heuristic_plans_match_across_modes() {
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected =
            assert_modes_agree(&format!("{query} serial"), &serial, &catalog, &reference);

        // Heuristic plans contain SlicePart partitions, exchange unions and
        // cloned probes — the chunk-source pipeline shapes.
        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        let hp_out = assert_modes_agree(&format!("{query} HP"), &hp, &catalog, &reference);
        assert_eq!(hp_out, expected, "{query}: HP plan diverged from serial");
    }
}

#[test]
fn tpcds_serial_and_heuristic_plans_match_across_modes() {
    let catalog = tpcds::generate(TpcdsScale::new(0.002), 77);
    let reference = Engine::with_workers(WORKERS);
    for query in TpcdsQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected =
            assert_modes_agree(&format!("{query} serial"), &serial, &catalog, &reference);

        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        let hp_out = assert_modes_agree(&format!("{query} HP"), &hp, &catalog, &reference);
        assert_eq!(hp_out, expected, "{query}: HP plan diverged from serial");
    }
}

/// A controller-enabled morsel engine whose morsel-size lever reacts on
/// every tick with hair-trigger thresholds, so sizes really change
/// mid-workload. The elastic-DOP lever stays off: these queries are
/// submitted uncapped and must remain so.
fn adaptive_engine(policy: SchedulerPolicy) -> Engine {
    Engine::new(
        EngineConfig::with_workers(WORKERS)
            .with_scheduler(policy)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(MORSEL_ROWS)
            .with_controller(
                ControllerConfig::default()
                    .with_tick(Duration::from_micros(200))
                    .with_elastic_dop(false)
                    .with_morsel_bounds(250, 4_000),
            ),
    )
}

#[test]
fn adaptive_morsel_sizing_matches_static_sizing_under_both_policies() {
    // Morsel size is a pure dispatch-granularity knob: whatever trajectory
    // the controller drives it along, results must stay byte-identical to
    // the static configuration — under both scheduler policies.
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        for plan in [&serial, &hp] {
            let expected = reference.execute(plan, &catalog).expect("reference executes").output;
            for policy in SchedulerPolicy::ALL {
                let engine = adaptive_engine(policy);
                let shared = Arc::new(plan.clone());
                // Repeats give the controller time to move the size around;
                // every repeat must still match the static reference.
                for rep in 0..4 {
                    let exec = engine.execute_shared(&shared, &catalog).expect("executes");
                    assert_eq!(
                        exec.output, expected,
                        "{query} [{policy}] rep {rep}: adaptive morsel sizing diverged"
                    );
                    // Whatever size each pipeline launched with, it stayed
                    // inside the configured clamps.
                    for &size in &exec.profile.morsel_sizes() {
                        assert!(
                            (250..=4_000).contains(&size),
                            "{query} [{policy}]: morsel size {size} escaped the clamps"
                        );
                    }
                }
            }
        }
    }
}

/// Catalog for the two-aligned-input fused shapes: two value columns of a
/// row count that does not divide the morsel size (ragged last morsel).
fn two_column_catalog(rows: usize) -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..rows as i64).map(|v| (v * 7) % 1000).collect())
            .i64_column("b", (0..rows as i64).map(|v| (v * 13) % 97 - 48).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

fn scan_t(p: &mut Plan, col: &str, rows: usize) -> usize {
    p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: col.into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    )
}

/// scan a, scan b → calc(a ⊗ b) → sum: the col⊗col calc fuses into scan a's
/// pipeline with b sliced on the same morsel grid. Returns (plan, calc node).
fn calc_col_col_plan(rows: usize) -> (Plan, usize) {
    let mut p = Plan::new();
    let a = scan_t(&mut p, "a", rows);
    let b = scan_t(&mut p, "b", rows);
    let calc = p.add(
        OperatorSpec::Calc { op: BinaryOp::Mul, left_scalar: None, right_scalar: None },
        vec![a, b],
    );
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![calc]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    (p, calc)
}

/// scan a → mask(a < 500), scan b → ifthenelse(mask, b, 0) → sum: the
/// guarded projection fuses behind the mask with b grid-sliced.
fn if_then_else_plan(rows: usize) -> (Plan, usize) {
    let mut p = Plan::new();
    let a = scan_t(&mut p, "a", rows);
    let mask =
        p.add(OperatorSpec::PredMask { predicate: Predicate::cmp(CmpOp::Lt, 500i64) }, vec![a]);
    let b = scan_t(&mut p, "b", rows);
    let ite = p.add(OperatorSpec::IfThenElse { otherwise: ScalarValue::I64(0) }, vec![mask, b]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![ite]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    (p, ite)
}

#[test]
fn two_aligned_input_fused_stages_match_across_modes_policies_and_controller() {
    // The newly fusible two-range-aligned-input shapes (Calc col⊗col,
    // IfThenElse) must stay byte-identical across 2 scheduler policies × 2
    // execution modes × controller on/off — and must actually have fused:
    // the two-input stage appears inside a multi-morsel pipeline.
    let rows = 12_345; // ragged last morsel at MORSEL_ROWS = 1_000
    let catalog = two_column_catalog(rows);
    let reference = Engine::with_workers(WORKERS);
    let (calc_plan, calc_node) = calc_col_col_plan(rows);
    let (ite_plan, ite_node) = if_then_else_plan(rows);
    for (label, plan, fused_node) in
        [("calc col⊗col", &calc_plan, calc_node), ("ifthenelse", &ite_plan, ite_node)]
    {
        let expected = assert_modes_agree(label, plan, &catalog, &reference);
        for policy in SchedulerPolicy::ALL {
            // Controller off: assert the stage really fused and morsel-ran.
            let exec = morsel_engine(policy).execute(plan, &catalog).expect("morsel executes");
            let pipeline = exec
                .profile
                .pipelines
                .iter()
                .find(|p| p.nodes.contains(&fused_node))
                .unwrap_or_else(|| {
                    panic!("{label} [{policy}]: stage {fused_node} not in any pipeline")
                });
            assert!(
                pipeline.n_morsels > 1,
                "{label} [{policy}]: fused pipeline ran a single morsel"
            );
            // Controller on (adaptive morsel re-sizing): still identical.
            for rep in 0..3 {
                let exec = adaptive_engine(policy).execute(plan, &catalog).expect("executes");
                assert_eq!(
                    exec.output, expected,
                    "{label} [{policy}] rep {rep}: adaptive run diverged"
                );
            }
        }
    }
}

/// scan a, scan b → groupagg(a, b) → mergegrouped: the grouped aggregate
/// fuses as the key scan's pipeline terminal, with b grid-sliced on the
/// same morsel grid. Returns (plan, groupagg node).
fn group_agg_plan(rows: usize, func: AggFunc) -> (Plan, usize) {
    let mut p = Plan::new();
    let k = scan_t(&mut p, "a", rows);
    let v = scan_t(&mut p, "b", rows);
    let group = p.add(OperatorSpec::GroupAgg { func }, vec![k, v]);
    let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
    p.set_root(merge);
    (p, group)
}

#[test]
fn fused_group_agg_matches_across_modes_policies_sharing_and_controller() {
    // GroupAgg now fuses as a pipeline terminal over range-aligned
    // keys/values inputs: each morsel yields a partial grouped aggregate
    // and the driver merges them in morsel order. Results must stay
    // byte-identical to operator-at-a-time across 2 scheduler policies ×
    // 2 execution modes × sharing on/off × controller on/off — on a row
    // count that does not divide the morsel size (ragged last morsel).
    let rows = 12_345;
    let catalog = two_column_catalog(rows);
    let reference = Engine::with_workers(WORKERS);
    for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Count] {
        let label = format!("groupagg {}", func.name());
        let (plan, group_node) = group_agg_plan(rows, func);
        let expected = assert_modes_agree(&label, &plan, &catalog, &reference);
        for policy in SchedulerPolicy::ALL {
            // The aggregate really fused and morsel-ran, and the profile
            // says so.
            let exec = morsel_engine(policy).execute(&plan, &catalog).expect("morsel executes");
            let pipeline = exec
                .profile
                .pipelines
                .iter()
                .find(|p| p.nodes.contains(&group_node))
                .unwrap_or_else(|| panic!("{label} [{policy}]: groupagg not in any pipeline"));
            assert!(pipeline.n_morsels > 1, "{label} [{policy}]: groupagg ran a single morsel");
            assert!(pipeline.groupagg_fused, "{label} [{policy}]: terminal flag not set");
            assert_eq!(exec.profile.fused_groupagg_pipelines(), 1, "{label} [{policy}]");

            // Sharing on, both modes: cold run populates the partial cache
            // with the fused grouped terminal, the warm repeat may resume
            // from it — either way the bytes must not move.
            for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                let engine = Engine::new(
                    EngineConfig::with_workers(WORKERS)
                        .with_scheduler(policy)
                        .with_execution_mode(mode)
                        .with_morsel_rows(MORSEL_ROWS)
                        .with_sharing(SharingConfig::default()),
                );
                for rep in 0..2 {
                    let exec = engine.execute(&plan, &catalog).expect("sharing run executes");
                    assert_eq!(
                        exec.output, expected,
                        "{label} [{policy}/{mode:?}] rep {rep}: sharing diverged"
                    );
                }
            }

            // Controller on (adaptive morsel re-sizing): still identical.
            for rep in 0..3 {
                let exec = adaptive_engine(policy).execute(&plan, &catalog).expect("executes");
                assert_eq!(
                    exec.output, expected,
                    "{label} [{policy}] rep {rep}: adaptive run diverged"
                );
            }
        }
    }
}

#[test]
fn fused_group_agg_handles_empty_and_tiny_inputs() {
    // Empty scans still run one morsel and publish an empty grouped
    // result; single-morsel inputs take the n_morsels == 1 fast path. Both
    // must agree with operator-at-a-time under both policies.
    let catalog = two_column_catalog(12_345);
    let reference = Engine::with_workers(WORKERS);
    for rows in [0, 1, MORSEL_ROWS - 1, MORSEL_ROWS] {
        let (plan, _) = group_agg_plan(rows, AggFunc::Sum);
        assert_modes_agree(&format!("groupagg over {rows} rows"), &plan, &catalog, &reference);
    }
}

#[test]
fn mismatched_aligned_input_errors_like_operator_at_a_time() {
    // A col⊗col calc whose inputs disagree on length must fail identically
    // in both modes (never silently zip morsel-sized slices that happen to
    // agree): the executor checks the whole-input length before slicing.
    let catalog = two_column_catalog(4_000);
    let mut p = Plan::new();
    let a = scan_t(&mut p, "a", 4_000);
    let b = scan_t(&mut p, "b", 2_000); // shorter aligned input
    let calc = p.add(
        OperatorSpec::Calc { op: BinaryOp::Add, left_scalar: None, right_scalar: None },
        vec![a, b],
    );
    p.set_root(calc);
    let oat_err = Engine::with_workers(WORKERS)
        .execute(&p, &catalog)
        .expect_err("operator-at-a-time rejects mismatched lengths")
        .to_string();
    for policy in SchedulerPolicy::ALL {
        let morsel_err = morsel_engine(policy)
            .execute(&p, &catalog)
            .expect_err("morsel mode rejects mismatched lengths")
            .to_string();
        assert_eq!(morsel_err, oat_err, "[{policy}]: error mismatch across modes");
    }
}

#[test]
fn service_plan_cache_hits_match_cold_execution_across_modes_and_policies() {
    // The service layer's plan cache is a dispatch-path knob like the
    // execution mode: a warm submission re-executes through the cached
    // `Arc<Plan>` and must stay byte-identical to the cold run and to the
    // direct-engine reference — across 2 policies × 2 execution modes.
    // The result cache is disabled so the warm submission really executes.
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let plan = query.build(&catalog).expect("serial plan builds");
        let expected = reference.execute(&plan, &catalog).expect("reference executes").output;
        for policy in SchedulerPolicy::ALL {
            for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                let service = QueryService::new(
                    ServiceConfig::with_engine(
                        EngineConfig::with_workers(WORKERS)
                            .with_scheduler(policy)
                            .with_execution_mode(mode)
                            .with_morsel_rows(MORSEL_ROWS),
                    )
                    .with_result_cache_capacity(0),
                    Arc::clone(&catalog),
                );
                let session = service.connect();
                let cold = session.submit(&plan).expect("cold submission executes");
                assert!(!cold.plan_cache_hit);
                assert_eq!(
                    cold.output, expected,
                    "{query} [{policy}/{mode:?}]: service diverged from direct engine"
                );
                let warm = session.submit(&plan).expect("warm submission executes");
                assert!(warm.plan_cache_hit, "{query} [{policy}/{mode:?}]: expected a hit");
                assert!(warm.profile.is_some(), "plan-cache hits still execute");
                assert_eq!(
                    warm.output, expected,
                    "{query} [{policy}/{mode:?}]: plan-cache hit changed the result"
                );
            }
        }
    }
}

#[test]
fn shared_scans_stay_byte_identical_across_policies_and_modes() {
    // Work sharing (shared scan-group windows + partial-aggregate reuse)
    // is a who-does-the-work knob, never a what-comes-out knob: with
    // sharing enabled, every workload query must stay byte-identical to
    // the unshared reference under 2 policies × 2 execution modes — on a
    // cold engine AND on a warm one whose groups/partials are populated
    // from earlier submissions. Profile-shape assertions are deliberately
    // absent: a warm repeat may resume from a cached partial and legally
    // skip entire pipelines.
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        for (label, plan) in [("serial", &serial), ("HP", &hp)] {
            let expected = reference.execute(plan, &catalog).expect("reference executes").output;
            for policy in SchedulerPolicy::ALL {
                for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                    let engine = Engine::new(
                        EngineConfig::with_workers(WORKERS)
                            .with_scheduler(policy)
                            .with_execution_mode(mode)
                            .with_morsel_rows(MORSEL_ROWS)
                            .with_sharing(SharingConfig::default()),
                    );
                    for rep in 0..2 {
                        let exec = engine.execute(plan, &catalog).expect("sharing run executes");
                        assert_eq!(
                            exec.output, expected,
                            "{query} {label} [{policy}/{mode:?}] rep {rep}: sharing diverged"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn morsel_mode_is_deterministic_across_repeats() {
    // Scheduling is nondeterministic; results must not be. Repeat a query
    // whose pipelines see heavy inter-worker stealing.
    let catalog = tpch::generate(TpchScale::new(0.002), 99);
    let serial = TpchQuery::Q14.build(&catalog).expect("Q14 builds");
    let engine = morsel_engine(SchedulerPolicy::WorkStealing);
    let plan = Arc::new(serial);
    let first = engine.execute_shared(&plan, &catalog).expect("executes").output;
    for _ in 0..5 {
        assert_eq!(
            engine.execute_shared(&plan, &catalog).expect("executes").output,
            first,
            "morsel-driven Q14 results varied across repeats"
        );
    }
}
