//! Cross-mode equivalence: morsel-driven execution must produce
//! byte-identical results to operator-at-a-time execution for every
//! evaluated query, under both scheduler policies.
//!
//! This is the execution-layer analogue of `integration_correctness.rs`:
//! plan mutation changes *what the plan looks like*, the execution mode
//! changes *how a fixed plan is dispatched* — neither may change what a
//! query returns. Serial plans exercise scan-source pipelines; the
//! heuristically parallelized plans exercise chunk-source pipelines over
//! `SlicePart` stream partitions (the PR-1 `stream_base` alignment
//! invariant, now also load-bearing for morsel slicing).

use std::sync::Arc;

use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::{
    Engine, EngineConfig, ExecutionMode, Plan, QueryOutput, SchedulerPolicy,
};
use adaptive_parallelization::workloads::tpcds::{self, TpcdsQuery, TpcdsScale};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};
use apq_columnar::Catalog;

const WORKERS: usize = 4;
/// Small enough that the ~12k-row sample workloads split into many morsels.
const MORSEL_ROWS: usize = 1_000;

fn morsel_engine(policy: SchedulerPolicy) -> Engine {
    Engine::new(
        EngineConfig::with_workers(WORKERS)
            .with_scheduler(policy)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(MORSEL_ROWS),
    )
}

/// Executes `plan` operator-at-a-time, then under morsel mode with both
/// scheduler policies, asserting identical outputs throughout.
fn assert_modes_agree(
    label: &str,
    plan: &Plan,
    catalog: &Arc<Catalog>,
    reference: &Engine,
) -> QueryOutput {
    let expected = reference.execute(plan, catalog).expect("operator-at-a-time executes").output;
    for policy in SchedulerPolicy::ALL {
        let engine = morsel_engine(policy);
        let exec = engine.execute(plan, catalog).expect("morsel mode executes");
        assert_eq!(exec.output, expected, "{label} [{policy}]: morsel mode diverged");
        // Morsel mode really ran morsel-wise: profiles carry pipelines and
        // every executed node is profiled exactly once.
        assert_eq!(
            exec.profile.operators.len(),
            plan.node_count(),
            "{label} [{policy}]: missing operator profiles"
        );
        assert_eq!(
            exec.profile.morsels_by_worker().iter().sum::<u64>() as usize,
            exec.profile.total_morsels(),
            "{label} [{policy}]: per-worker morsel counters do not add up"
        );
    }
    expected
}

#[test]
fn tpch_serial_and_heuristic_plans_match_across_modes() {
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected =
            assert_modes_agree(&format!("{query} serial"), &serial, &catalog, &reference);

        // Heuristic plans contain SlicePart partitions, exchange unions and
        // cloned probes — the chunk-source pipeline shapes.
        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        let hp_out = assert_modes_agree(&format!("{query} HP"), &hp, &catalog, &reference);
        assert_eq!(hp_out, expected, "{query}: HP plan diverged from serial");
    }
}

#[test]
fn tpcds_serial_and_heuristic_plans_match_across_modes() {
    let catalog = tpcds::generate(TpcdsScale::new(0.002), 77);
    let reference = Engine::with_workers(WORKERS);
    for query in TpcdsQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected =
            assert_modes_agree(&format!("{query} serial"), &serial, &catalog, &reference);

        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        let hp_out = assert_modes_agree(&format!("{query} HP"), &hp, &catalog, &reference);
        assert_eq!(hp_out, expected, "{query}: HP plan diverged from serial");
    }
}

#[test]
fn morsel_mode_is_deterministic_across_repeats() {
    // Scheduling is nondeterministic; results must not be. Repeat a query
    // whose pipelines see heavy inter-worker stealing.
    let catalog = tpch::generate(TpchScale::new(0.002), 99);
    let serial = TpchQuery::Q14.build(&catalog).expect("Q14 builds");
    let engine = morsel_engine(SchedulerPolicy::WorkStealing);
    let plan = Arc::new(serial);
    let first = engine.execute_shared(&plan, &catalog).expect("executes").output;
    for _ in 0..5 {
        assert_eq!(
            engine.execute_shared(&plan, &catalog).expect("executes").output,
            first,
            "morsel-driven Q14 results varied across repeats"
        );
    }
}
