//! Cross-mode equivalence: morsel-driven execution must produce
//! byte-identical results to operator-at-a-time execution for every
//! evaluated query, under both scheduler policies.
//!
//! This is the execution-layer analogue of `integration_correctness.rs`:
//! plan mutation changes *what the plan looks like*, the execution mode
//! changes *how a fixed plan is dispatched* — neither may change what a
//! query returns. Serial plans exercise scan-source pipelines; the
//! heuristically parallelized plans exercise chunk-source pipelines over
//! `SlicePart` stream partitions (the PR-1 `stream_base` alignment
//! invariant, now also load-bearing for morsel slicing).

use std::sync::Arc;
use std::time::Duration;

use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::{
    ControllerConfig, Engine, EngineConfig, ExecutionMode, Plan, QueryOutput, SchedulerPolicy,
};
use adaptive_parallelization::workloads::tpcds::{self, TpcdsQuery, TpcdsScale};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};
use apq_columnar::Catalog;

const WORKERS: usize = 4;
/// Small enough that the ~12k-row sample workloads split into many morsels.
const MORSEL_ROWS: usize = 1_000;

fn morsel_engine(policy: SchedulerPolicy) -> Engine {
    Engine::new(
        EngineConfig::with_workers(WORKERS)
            .with_scheduler(policy)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(MORSEL_ROWS),
    )
}

/// Executes `plan` operator-at-a-time, then under morsel mode with both
/// scheduler policies, asserting identical outputs throughout.
fn assert_modes_agree(
    label: &str,
    plan: &Plan,
    catalog: &Arc<Catalog>,
    reference: &Engine,
) -> QueryOutput {
    let expected = reference.execute(plan, catalog).expect("operator-at-a-time executes").output;
    for policy in SchedulerPolicy::ALL {
        let engine = morsel_engine(policy);
        let exec = engine.execute(plan, catalog).expect("morsel mode executes");
        assert_eq!(exec.output, expected, "{label} [{policy}]: morsel mode diverged");
        // Morsel mode really ran morsel-wise: profiles carry pipelines and
        // every executed node is profiled exactly once.
        assert_eq!(
            exec.profile.operators.len(),
            plan.node_count(),
            "{label} [{policy}]: missing operator profiles"
        );
        assert_eq!(
            exec.profile.morsels_by_worker().iter().sum::<u64>() as usize,
            exec.profile.total_morsels(),
            "{label} [{policy}]: per-worker morsel counters do not add up"
        );
    }
    expected
}

#[test]
fn tpch_serial_and_heuristic_plans_match_across_modes() {
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected =
            assert_modes_agree(&format!("{query} serial"), &serial, &catalog, &reference);

        // Heuristic plans contain SlicePart partitions, exchange unions and
        // cloned probes — the chunk-source pipeline shapes.
        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        let hp_out = assert_modes_agree(&format!("{query} HP"), &hp, &catalog, &reference);
        assert_eq!(hp_out, expected, "{query}: HP plan diverged from serial");
    }
}

#[test]
fn tpcds_serial_and_heuristic_plans_match_across_modes() {
    let catalog = tpcds::generate(TpcdsScale::new(0.002), 77);
    let reference = Engine::with_workers(WORKERS);
    for query in TpcdsQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected =
            assert_modes_agree(&format!("{query} serial"), &serial, &catalog, &reference);

        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        let hp_out = assert_modes_agree(&format!("{query} HP"), &hp, &catalog, &reference);
        assert_eq!(hp_out, expected, "{query}: HP plan diverged from serial");
    }
}

/// A controller-enabled morsel engine whose morsel-size lever reacts on
/// every tick with hair-trigger thresholds, so sizes really change
/// mid-workload. The elastic-DOP lever stays off: these queries are
/// submitted uncapped and must remain so.
fn adaptive_engine(policy: SchedulerPolicy) -> Engine {
    Engine::new(
        EngineConfig::with_workers(WORKERS)
            .with_scheduler(policy)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(MORSEL_ROWS)
            .with_controller(
                ControllerConfig::default()
                    .with_tick(Duration::from_micros(200))
                    .with_elastic_dop(false)
                    .with_morsel_bounds(250, 4_000),
            ),
    )
}

#[test]
fn adaptive_morsel_sizing_matches_static_sizing_under_both_policies() {
    // Morsel size is a pure dispatch-granularity knob: whatever trajectory
    // the controller drives it along, results must stay byte-identical to
    // the static configuration — under both scheduler policies.
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let hp = heuristic_parallelize(&serial, &catalog, WORKERS).expect("HP rewrite");
        for plan in [&serial, &hp] {
            let expected = reference.execute(plan, &catalog).expect("reference executes").output;
            for policy in SchedulerPolicy::ALL {
                let engine = adaptive_engine(policy);
                let shared = Arc::new(plan.clone());
                // Repeats give the controller time to move the size around;
                // every repeat must still match the static reference.
                for rep in 0..4 {
                    let exec = engine.execute_shared(&shared, &catalog).expect("executes");
                    assert_eq!(
                        exec.output, expected,
                        "{query} [{policy}] rep {rep}: adaptive morsel sizing diverged"
                    );
                    // Whatever size each pipeline launched with, it stayed
                    // inside the configured clamps.
                    for &size in &exec.profile.morsel_sizes() {
                        assert!(
                            (250..=4_000).contains(&size),
                            "{query} [{policy}]: morsel size {size} escaped the clamps"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn morsel_mode_is_deterministic_across_repeats() {
    // Scheduling is nondeterministic; results must not be. Repeat a query
    // whose pipelines see heavy inter-worker stealing.
    let catalog = tpch::generate(TpchScale::new(0.002), 99);
    let serial = TpchQuery::Q14.build(&catalog).expect("Q14 builds");
    let engine = morsel_engine(SchedulerPolicy::WorkStealing);
    let plan = Arc::new(serial);
    let first = engine.execute_shared(&plan, &catalog).expect("executes").output;
    for _ in 0..5 {
        assert_eq!(
            engine.execute_shared(&plan, &catalog).expect("executes").output,
            first,
            "morsel-driven Q14 results varied across repeats"
        );
    }
}
