//! Chaos suite: seeded fault schedules across the full execution matrix
//! (2 scheduler policies × 2 execution modes × controller on/off).
//!
//! Every cell must satisfy the robustness contract of
//! `docs/architecture.md` §9:
//!
//! * **no hang** — the whole cell finishes under a watchdog deadline,
//! * **no leaked DOP slots** — every retained handle reads `running() == 0`
//!   after the drain,
//! * **census consistent** — the live-query registry is empty afterwards,
//! * **reproducible** — the same seed yields the same pass/fail pattern
//!   and byte-identical successful outputs on a rerun, and fault-free
//!   seeds (quiet / timing-only) are byte-identical to the fault-free
//!   reference engine.
//!
//! The seed matrix here is fixed and mirrored by the CI `chaos` job.

use std::sync::{mpsc, Arc};
use std::thread;
use std::time::Duration;

use adaptive_parallelization::engine::{
    ControllerConfig, DopPhase, Engine, EngineConfig, EngineError, ExecutionMode, FaultConfig,
    OperatorSpec, Plan, QueryOptions, QueryOutput, SchedulerPolicy, SharingConfig,
};
use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, TableBuilder};
use apq_operators::{AggFunc, CmpOp, Predicate};

const WORKERS: usize = 4;
const MORSEL_ROWS: usize = 500;
const ROWS: usize = 6_000;
/// Fixed seed matrix, mirrored by the CI chaos job.
const SEEDS: [u64; 3] = [11, 42, 2016];
/// Per-cell watchdog: generous next to the µs-scale injected delays, but
/// finite — a hung drain fails the test instead of wedging CI.
const CELL_DEADLINE: Duration = Duration::from_secs(120);

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("a", (0..ROWS as i64).map(|v| (v * 7) % 1000).collect())
            .i64_column("b", (0..ROWS as i64).map(|v| (v * 13) % 97 - 48).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

fn scan(p: &mut Plan, column: &str) -> usize {
    p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: column.into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    )
}

/// `SELECT sum(col) FROM t WHERE col < threshold` — scan/select/fetch/agg,
/// enough plan surface that chaos sites land on varied operator kinds.
fn filtered_sum(column: &str, threshold: i64) -> Plan {
    let mut p = Plan::new();
    let s = scan(&mut p, column);
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![s]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, s]);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

fn plain_sum(column: &str) -> Plan {
    let mut p = Plan::new();
    let s = scan(&mut p, column);
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![s]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

/// `SELECT a, sum(b) FROM t GROUP BY a` — a fused `GroupAgg` pipeline
/// terminal (keys and values grid-sliced on the same morsel grid), so the
/// chaos matrix also lands faults inside grouped-aggregate pipelines.
fn grouped_sum() -> Plan {
    let mut p = Plan::new();
    let k = scan(&mut p, "a");
    let v = scan(&mut p, "b");
    let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![k, v]);
    let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
    p.set_root(merge);
    p
}

fn workload() -> Vec<Plan> {
    vec![
        plain_sum("a"),
        plain_sum("b"),
        filtered_sum("a", 500),
        filtered_sum("b", 0),
        filtered_sum("a", 120),
        filtered_sum("b", 30),
        grouped_sum(),
    ]
}

fn engine(
    policy: SchedulerPolicy,
    mode: ExecutionMode,
    controller: bool,
    faults: FaultConfig,
) -> Engine {
    engine_with_sharing(policy, mode, controller, faults, false)
}

fn engine_with_sharing(
    policy: SchedulerPolicy,
    mode: ExecutionMode,
    controller: bool,
    faults: FaultConfig,
    sharing: bool,
) -> Engine {
    let mut config = EngineConfig::with_workers(WORKERS)
        .with_scheduler(policy)
        .with_execution_mode(mode)
        .with_morsel_rows(MORSEL_ROWS)
        .with_faults(faults);
    if sharing {
        config = config.with_sharing(SharingConfig::default());
    }
    if controller {
        config = config.with_controller(
            ControllerConfig::default()
                .with_tick(Duration::from_micros(200))
                .with_total_dop(WORKERS),
        );
    }
    Engine::new(config)
}

/// Runs `f` under the cell watchdog; a cell that does not finish in time
/// fails the test loudly instead of hanging the whole suite.
fn with_watchdog<T: Send + 'static>(label: &str, f: impl FnOnce() -> T + Send + 'static) -> T {
    let (tx, rx) = mpsc::channel();
    let worker = thread::spawn(move || {
        let _ = tx.send(f());
    });
    match rx.recv_timeout(CELL_DEADLINE) {
        Ok(value) => {
            worker.join().expect("cell worker exits after reporting");
            value
        }
        Err(_) => panic!("{label}: chaos cell exceeded the {CELL_DEADLINE:?} watchdog (hang)"),
    }
}

/// Submits the workload serially (query ids — and therefore fault sites —
/// are deterministic), returning each submission's outcome. Verifies the
/// per-cell robustness contract before returning.
fn run_cell(
    policy: SchedulerPolicy,
    mode: ExecutionMode,
    controller: bool,
    faults: FaultConfig,
) -> Vec<Result<QueryOutput, EngineError>> {
    run_cell_with_sharing(policy, mode, controller, faults, false)
}

fn run_cell_with_sharing(
    policy: SchedulerPolicy,
    mode: ExecutionMode,
    controller: bool,
    faults: FaultConfig,
    sharing: bool,
) -> Vec<Result<QueryOutput, EngineError>> {
    let catalog = catalog();
    let engine = engine_with_sharing(policy, mode, controller, faults, sharing);
    let mut outcomes = Vec::new();
    let mut handles = Vec::new();
    for round in 0..2 {
        for plan in &workload() {
            let shared = Arc::new(plan.clone());
            let handle = engine.register_query(QueryOptions { priority: 0, admitted_dop: 0 });
            // Round 1 resubmits with an already-expired deadline on every
            // other query: deterministic DeadlineExceeded, zero dispatch.
            if round == 1 && handle.id().is_multiple_of(2) {
                handle.set_deadline(Duration::ZERO);
            }
            handles.push(Arc::clone(&handle));
            let outcome = engine
                .execute_with_handle(&shared, &catalog, Arc::clone(&handle))
                .map(|exec| exec.output);
            outcomes.push(outcome);
        }
    }
    // Census consistent: nothing left registered once every submission
    // returned.
    assert!(
        engine.active_queries().is_empty(),
        "[{policy}/{mode:?}/ctl={controller}] live-query registry not drained"
    );
    // No leaked DOP slots, successful or failed alike.
    for handle in &handles {
        assert_eq!(
            handle.running(),
            0,
            "[{policy}/{mode:?}/ctl={controller}] query {} leaked a DOP slot",
            handle.id()
        );
    }
    outcomes
}

fn allowed_chaos_error(err: &EngineError) -> bool {
    matches!(
        err,
        EngineError::Cancelled | EngineError::DeadlineExceeded | EngineError::WorkerPanicked(_)
    )
}

#[test]
fn chaos_matrix_terminates_cleanly_and_reproduces_from_the_seed() {
    for seed in SEEDS {
        for policy in SchedulerPolicy::ALL {
            for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                for controller in [false, true] {
                    let label = format!("seed {seed} [{policy}/{mode:?}/ctl={controller}]");
                    let (first, second) = with_watchdog(&label, move || {
                        (
                            run_cell(policy, mode, controller, FaultConfig::chaos(seed)),
                            run_cell(policy, mode, controller, FaultConfig::chaos(seed)),
                        )
                    });
                    assert_eq!(first.len(), second.len());
                    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
                        match (a, b) {
                            // Outcome-changing faults are site-keyed: the
                            // same seed must fail the same submissions and
                            // produce byte-identical successes. (The *kind*
                            // of failure may differ when two injected
                            // faults race inside one query.)
                            (Ok(x), Ok(y)) => {
                                assert_eq!(x, y, "{label}: submission {i} output diverged")
                            }
                            (Err(x), Err(y)) => {
                                assert!(allowed_chaos_error(x), "{label}: unexpected error {x}");
                                assert!(allowed_chaos_error(y), "{label}: unexpected error {y}");
                            }
                            _ => panic!(
                                "{label}: submission {i} flipped between identical seeded runs \
                                 ({a:?} vs {b:?})"
                            ),
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn fault_free_seeds_are_byte_identical_to_the_reference() {
    let catalog = catalog();
    let reference = Engine::with_workers(WORKERS);
    for seed in SEEDS {
        for policy in SchedulerPolicy::ALL {
            for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                // `quiet` injects nothing; `timing_only` injects delays and
                // stalls, which stretch wall-clock but may not change any
                // result byte.
                for faults in [FaultConfig::quiet(seed), FaultConfig::timing_only(seed)] {
                    let engine = engine(policy, mode, false, faults);
                    for plan in &workload() {
                        let expected =
                            reference.execute(plan, &catalog).expect("reference executes").output;
                        let got = engine
                            .execute(plan, &catalog)
                            .expect("fault-free seed executes")
                            .output;
                        assert_eq!(
                            got, expected,
                            "seed {seed} [{policy}/{mode:?}]: fault-free run diverged"
                        );
                    }
                    let stats = engine.fault_stats();
                    assert_eq!(stats.panics, 0, "timing-only/quiet seeds never panic");
                    assert_eq!(stats.cancels, 0, "timing-only/quiet seeds never cancel");
                }
            }
        }
    }
}

#[test]
fn chaos_matrix_with_sharing_reproduces_from_the_seed() {
    // Work sharing on top of the chaos matrix: the robustness contract is
    // unchanged (no hang, no leaked slots, drained census — all checked
    // inside the cell), and the same seed still yields the same pass/fail
    // pattern with byte-identical successes. Faulty members must detach
    // from their scan groups without corrupting what later submissions —
    // which reuse the surviving windows and partials — return.
    for seed in SEEDS {
        for policy in SchedulerPolicy::ALL {
            for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                let label = format!("seed {seed} [{policy}/{mode:?}/sharing]");
                let (first, second) = with_watchdog(&label, move || {
                    (
                        run_cell_with_sharing(policy, mode, false, FaultConfig::chaos(seed), true),
                        run_cell_with_sharing(policy, mode, false, FaultConfig::chaos(seed), true),
                    )
                });
                assert_eq!(first.len(), second.len());
                for (i, (a, b)) in first.iter().zip(&second).enumerate() {
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            assert_eq!(x, y, "{label}: submission {i} output diverged")
                        }
                        (Err(x), Err(y)) => {
                            assert!(allowed_chaos_error(x), "{label}: unexpected error {x}");
                            assert!(allowed_chaos_error(y), "{label}: unexpected error {y}");
                        }
                        _ => panic!(
                            "{label}: submission {i} flipped between identical seeded runs \
                             ({a:?} vs {b:?})"
                        ),
                    }
                }
            }
        }
    }
}

#[test]
fn chaos_sharing_successes_match_the_unshared_reference() {
    // Whatever a chaos seed does to its victims, every submission that
    // *succeeds* on a sharing engine must still be byte-identical to the
    // fault-free unshared reference — shared windows seeded by a query
    // that later failed are complete, correct units and must never leak
    // partial state into other members' results.
    let catalog = catalog();
    let reference = Engine::with_workers(WORKERS);
    let expected: Vec<QueryOutput> = workload()
        .iter()
        .map(|p| reference.execute(p, &catalog).expect("reference executes").output)
        .collect();
    for seed in SEEDS {
        for policy in SchedulerPolicy::ALL {
            for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
                let label = format!("seed {seed} [{policy}/{mode:?}/sharing]");
                let outcomes = with_watchdog(&label, move || {
                    run_cell_with_sharing(policy, mode, false, FaultConfig::chaos(seed), true)
                });
                for (i, outcome) in outcomes.iter().enumerate() {
                    match outcome {
                        Ok(output) => assert_eq!(
                            output,
                            &expected[i % expected.len()],
                            "{label}: surviving submission {i} was corrupted"
                        ),
                        Err(err) => {
                            assert!(allowed_chaos_error(err), "{label}: unexpected error {err}")
                        }
                    }
                }
            }
        }
    }
}

#[test]
fn already_expired_deadline_fails_before_any_dispatch() {
    // Acceptance criterion: a query submitted with an expired deadline
    // fails with DeadlineExceeded without dispatching a single task.
    let catalog = catalog();
    for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
        let engine = Engine::new(
            EngineConfig::with_workers(2).with_execution_mode(mode).with_morsel_rows(MORSEL_ROWS),
        );
        let handle = engine.register_query(QueryOptions { priority: 0, admitted_dop: 0 });
        handle.set_deadline(Duration::ZERO);
        let shared = Arc::new(filtered_sum("a", 500));
        let err = engine
            .execute_with_handle(&shared, &catalog, Arc::clone(&handle))
            .expect_err("expired deadline must not execute");
        assert_eq!(err, EngineError::DeadlineExceeded, "[{mode:?}]");
        assert_eq!(handle.signals().dispatched, 0, "[{mode:?}]: a task was dispatched");
        assert_eq!(handle.running(), 0, "[{mode:?}]");
        // The expiry landed in the DOP timeline exactly once.
        let timeouts =
            handle.dop_timeline().iter().filter(|e| e.phase == DopPhase::Timeout).count();
        assert_eq!(timeouts, 1, "[{mode:?}]: expected exactly one Timeout event");
    }
}

#[test]
fn mid_flight_deadlines_abort_at_checkpoints_without_leaks() {
    // Delays stretch execution so a tight (but nonzero) deadline expires
    // mid-flight for at least some submissions; whatever the outcome, the
    // engine must drain clean.
    let catalog = catalog();
    for policy in SchedulerPolicy::ALL {
        let engine =
            engine(policy, ExecutionMode::MorselDriven, false, FaultConfig::timing_only(7));
        let mut timed_out = 0;
        for (i, plan) in workload().iter().cycle().take(24).enumerate() {
            let shared = Arc::new(plan.clone());
            let handle = engine.register_query(QueryOptions { priority: 0, admitted_dop: 0 });
            // Sweep the deadline from "hopeless" to "comfortable".
            handle.set_deadline(Duration::from_micros(50 * (i as u64 + 1)));
            match engine.execute_with_handle(&shared, &catalog, Arc::clone(&handle)) {
                Ok(_) => {}
                Err(EngineError::DeadlineExceeded) => {
                    timed_out += 1;
                    let timeouts = handle
                        .dop_timeline()
                        .iter()
                        .filter(|e| e.phase == DopPhase::Timeout)
                        .count();
                    assert_eq!(timeouts, 1, "[{policy}]: Timeout event recorded once");
                }
                Err(other) => panic!("[{policy}]: unexpected error {other}"),
            }
            assert_eq!(handle.running(), 0, "[{policy}]: query {i} leaked a DOP slot");
        }
        assert!(engine.active_queries().is_empty(), "[{policy}]: registry not drained");
        // With 50µs–1.2ms deadlines over delay-stretched queries, at least
        // the tightest submissions must have expired.
        assert!(timed_out > 0, "[{policy}]: deadline sweep never timed out");
    }
}

#[test]
fn controller_tick_watchdog_contains_scripted_panics() {
    // Scripted tick panics must be contained by the watchdog: the restart
    // counter moves, later ticks run normally, and queries still execute.
    let catalog = catalog();
    let engine = Engine::new(
        EngineConfig::with_workers(2)
            .with_controller(
                // An hour-long tick: the background thread stays out of the
                // way and the synchronous ticks below consume the scripted
                // indices (the counter is shared, so a stray background
                // tick only shifts which call hits the panic).
                ControllerConfig::default().with_tick(Duration::from_secs(3_600)),
            )
            .with_faults(
                FaultConfig::quiet(3).with_controller_tick_panic(0).with_controller_tick_panic(1),
            ),
    );
    engine.controller_tick();
    engine.controller_tick();
    assert!(
        engine.controller_restarts() >= 1,
        "scripted tick panic was not contained/counted by the watchdog"
    );
    // The controller survived: a later tick and a real query both work.
    engine.controller_tick();
    let plan = plain_sum("a");
    let expected = Engine::with_workers(2).execute(&plan, &catalog).unwrap().output;
    let got = engine.execute(&plan, &catalog).expect("engine healthy after tick panics").output;
    assert_eq!(got, expected);
}
