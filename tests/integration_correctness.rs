//! Cross-crate correctness: for every evaluated query, the serial plan, the
//! heuristically parallelized plan and the plan found by adaptive
//! parallelization must produce identical results.
//!
//! This is the end-to-end version of the paper's implicit correctness
//! obligation — plan mutation and static rewriting only change *how* a query
//! is evaluated, never *what* it returns.

use std::sync::Arc;

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::baselines::{heuristic_parallelize, work_stealing_plan};
use adaptive_parallelization::engine::Engine;
use adaptive_parallelization::workloads::tpcds::{self, TpcdsQuery, TpcdsScale};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};

fn optimizer(workers: usize) -> AdaptiveOptimizer {
    AdaptiveOptimizer::new(
        AdaptiveConfig::for_cores(workers)
            .with_min_partition_rows(256)
            .with_max_runs(10)
            .with_verification(),
    )
}

#[test]
fn tpch_adaptive_and_heuristic_plans_match_serial_results() {
    let workers = 4;
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let engine = Engine::with_workers(workers);
    let optimizer = optimizer(workers);

    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected = engine.execute(&serial, &catalog).expect("serial executes").output;

        let hp = heuristic_parallelize(&serial, &catalog, workers).expect("HP rewrite");
        let hp_out = engine.execute(&hp, &catalog).expect("HP executes").output;
        assert_eq!(hp_out, expected, "{query}: heuristic plan diverged");

        let ws = work_stealing_plan(&serial, &catalog, workers * 8).expect("WS rewrite");
        let ws_out = engine.execute(&ws, &catalog).expect("WS executes").output;
        assert_eq!(ws_out, expected, "{query}: work-stealing plan diverged");

        // The optimizer itself verifies every intermediate run (verification
        // is enabled in the config); re-check the final plan explicitly.
        let report = optimizer.optimize(&engine, &catalog, &serial).expect("adaptive optimization");
        let ap_out = engine.execute(&report.best_plan, &catalog).expect("AP executes").output;
        assert_eq!(ap_out, expected, "{query}: adaptive plan diverged");
        assert_eq!(report.final_output, expected, "{query}: report output diverged");
    }
}

#[test]
fn tpcds_adaptive_and_heuristic_plans_match_serial_results() {
    let workers = 4;
    let catalog = tpcds::generate(TpcdsScale::new(0.002), 77);
    let engine = Engine::with_workers(workers);
    let optimizer = optimizer(workers);

    for query in TpcdsQuery::all() {
        let serial = query.build(&catalog).expect("serial plan builds");
        let expected = engine.execute(&serial, &catalog).expect("serial executes").output;

        let hp = heuristic_parallelize(&serial, &catalog, workers).expect("HP rewrite");
        assert_eq!(
            engine.execute(&hp, &catalog).expect("HP executes").output,
            expected,
            "{query}: heuristic plan diverged"
        );

        let report = optimizer.optimize(&engine, &catalog, &serial).expect("adaptive optimization");
        assert_eq!(
            engine.execute(&report.best_plan, &catalog).expect("AP executes").output,
            expected,
            "{query}: adaptive plan diverged"
        );
    }
}

#[test]
fn adaptive_plans_survive_different_worker_counts() {
    // A plan adapted on one engine must still be correct on engines with a
    // different worker count (plans and execution resources are independent).
    let catalog = tpch::generate(TpchScale::new(0.002), 5);
    let serial = TpchQuery::Q14.build(&catalog).expect("Q14 builds");
    let engine4 = Engine::with_workers(4);
    let expected = engine4.execute(&serial, &catalog).expect("serial executes").output;
    let report = optimizer(4).optimize(&engine4, &catalog, &serial).expect("adaptive optimization");
    for workers in [1, 2, 8] {
        let other = Engine::with_workers(workers);
        assert_eq!(
            other.execute(&report.best_plan, &catalog).expect("executes").output,
            expected,
            "adaptive Q14 plan diverged on {workers} workers"
        );
    }
}

#[test]
fn heuristic_partition_count_does_not_change_results() {
    let catalog = Arc::clone(&tpch::generate(TpchScale::new(0.002), 9));
    let engine = Engine::with_workers(3);
    let serial = TpchQuery::Q19.build(&catalog).expect("Q19 builds");
    let expected = engine.execute(&serial, &catalog).expect("serial executes").output;
    for partitions in [2, 3, 5, 9, 17] {
        let hp = heuristic_parallelize(&serial, &catalog, partitions).expect("HP rewrite");
        assert_eq!(
            engine.execute(&hp, &catalog).expect("executes").output,
            expected,
            "HP Q19 with {partitions} partitions diverged"
        );
    }
}
