//! Work-sharing acceptance suite: cooperative shared scans and
//! partial-aggregate reuse (`docs/architecture.md` §10).
//!
//! The contract under test:
//!
//! * **one table pass, not N** — N sessions scanning the same column cost
//!   roughly one private pass; every other morsel is served from the scan
//!   group's published windows (`ServiceStats::morsels_shared`),
//! * **byte-identical** — sharing changes who executes scan work, never
//!   what a query returns, across both scheduler policies and both
//!   execution modes,
//! * **invalidation flushes** — per-table invalidation drops cached
//!   partials alongside cached results,
//! * **cost-aware caching** — executions cheaper than
//!   [`ServiceConfig::min_cache_cost`] never claim a result-cache slot.

use std::sync::Arc;
use std::time::Duration;

use adaptive_parallelization::engine::{
    Engine, EngineConfig, EngineError, ExecutionMode, OperatorSpec, Plan, QueryService,
    SchedulerPolicy, ServiceConfig,
};
use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_operators::{AggFunc, BinaryOp};

const WORKERS: usize = 4;
const MORSEL_ROWS: usize = 1_000;
const ROWS: usize = 20_000;

fn catalog() -> Arc<Catalog> {
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("t")
            .i64_column("v", (0..ROWS as i64).map(|x| (x * 7) % 1000).collect())
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

/// `SELECT sum(v * k) FROM t` — the scalar factor `k` makes each session's
/// plan signature distinct (no whole-query partial reuse, no result-cache
/// aliasing) while every plan scans the identical column range, which is
/// exactly the shape scan groups share.
fn scaled_sum(k: i64) -> Plan {
    let mut p = Plan::new();
    let scan = p.add(
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "v".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let calc = p.add(
        OperatorSpec::Calc {
            op: BinaryOp::Mul,
            left_scalar: None,
            right_scalar: Some(ScalarValue::I64(k)),
        },
        vec![scan],
    );
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![calc]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

fn sharing_service(
    policy: SchedulerPolicy,
    mode: ExecutionMode,
    catalog: &Arc<Catalog>,
) -> QueryService {
    QueryService::new(
        ServiceConfig::with_engine(
            EngineConfig::with_workers(WORKERS)
                .with_scheduler(policy)
                .with_execution_mode(mode)
                .with_morsel_rows(MORSEL_ROWS),
        )
        .with_shared_scans(true)
        // The result cache would satisfy repeats without executing; this
        // suite needs every submission to reach the engine.
        .with_result_cache_capacity(0),
        Arc::clone(catalog),
    )
}

#[test]
fn sixteen_sessions_cost_one_table_pass() {
    // The headline acceptance criterion: 16 sessions scanning the same
    // table perform ~1 private pass over it; the other 15 passes are
    // served from shared windows — with byte-identical outputs.
    let catalog = catalog();
    let reference = Engine::with_workers(WORKERS);
    for policy in SchedulerPolicy::ALL {
        let service = sharing_service(policy, ExecutionMode::MorselDriven, &catalog);
        for k in 1..=16i64 {
            let plan = scaled_sum(k);
            let expected = reference.execute(&plan, &catalog).expect("reference executes").output;
            let session = service.connect();
            let response = session.submit(&plan).expect("sharing submission executes");
            assert_eq!(response.output, expected, "[{policy}] k={k}: sharing changed the result");
            if k > 1 {
                // Every member after the first is fully served from the
                // group's published windows.
                let profile = response.profile.expect("executions carry a profile");
                assert!(
                    profile.total_shared_morsels() > 0,
                    "[{policy}] k={k}: expected shared morsels in the profile"
                );
            }
        }
        let stats = service.stats();
        assert_eq!(stats.scan_groups, 1, "[{policy}]: one scanned column, one group");
        assert!(stats.morsels_private > 0 || stats.morsels_shared > 0);
        // One private pass (the first session), fifteen shared passes.
        assert_eq!(
            stats.morsels_shared,
            15 * stats.morsels_private,
            "[{policy}]: expected 15 shared passes per private pass \
             (shared {}, private {})",
            stats.morsels_shared,
            stats.morsels_private
        );
    }
}

#[test]
fn sharing_is_byte_identical_across_policies_and_modes() {
    let catalog = catalog();
    let reference = Engine::with_workers(WORKERS);
    for policy in SchedulerPolicy::ALL {
        for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
            let service = sharing_service(policy, mode, &catalog);
            for k in [1, 3, 5] {
                let plan = scaled_sum(k);
                let expected = reference.execute(&plan, &catalog).expect("reference").output;
                // Twice: the repeat exercises window reuse AND whole-query
                // partial-aggregate reuse (identical signature).
                for rep in 0..2 {
                    let session = service.connect();
                    let got = session.submit(&plan).expect("executes").output;
                    assert_eq!(got, expected, "[{policy}/{mode:?}] k={k} rep {rep}: diverged");
                }
            }
        }
    }
}

#[test]
fn repeated_aggregates_resume_from_cached_partials() {
    let catalog = catalog();
    let service =
        sharing_service(SchedulerPolicy::WorkStealing, ExecutionMode::MorselDriven, &catalog);
    let plan = scaled_sum(7);
    let session = service.connect();
    let first = session.submit(&plan).expect("cold run executes").output;
    assert_eq!(service.stats().partials_reused, 0, "cold run cannot reuse partials");
    let second = session.submit(&plan).expect("warm run executes").output;
    assert_eq!(second, first, "partial reuse changed the result");
    assert!(
        service.stats().partials_reused > 0,
        "identical resubmission should resume from cached partials"
    );
}

#[test]
fn repeated_group_aggregates_resume_from_cached_partials() {
    // Fused GroupAgg terminals cache like scalar-aggregate terminals: the
    // partial cache is chunk-typed, so a `Chunk::Grouped` merged in morsel
    // order stores under the same catalog/grid/signature key and a repeat
    // of the shape skips the whole pipeline.
    let mut c = Catalog::new();
    c.register(
        TableBuilder::new("g")
            .i64_column("k", (0..ROWS as i64).map(|x| x % 50).collect())
            .i64_column("v", (0..ROWS as i64).map(|x| (x * 3) % 101).collect())
            .build()
            .unwrap(),
    );
    let catalog = Arc::new(c);
    let service =
        sharing_service(SchedulerPolicy::WorkStealing, ExecutionMode::MorselDriven, &catalog);
    let mut p = Plan::new();
    let k = p.add(
        OperatorSpec::ScanColumn {
            table: "g".into(),
            column: "k".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let v = p.add(
        OperatorSpec::ScanColumn {
            table: "g".into(),
            column: "v".into(),
            range: RowRange::new(0, ROWS),
        },
        vec![],
    );
    let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![k, v]);
    let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
    p.set_root(merge);

    let session = service.connect();
    let first = session.submit(&p).expect("cold run executes");
    let profile = first.profile.as_ref().expect("executions carry a profile");
    assert!(
        profile.fused_groupagg_pipelines() > 0,
        "groupagg over range-aligned scans should fuse"
    );
    assert_eq!(service.stats().partials_reused, 0, "cold run cannot reuse partials");
    let second = session.submit(&p).expect("warm run executes");
    assert_eq!(second.output, first.output, "grouped partial reuse changed the result");
    assert!(
        service.stats().partials_reused > 0,
        "identical grouped resubmission should resume from the cached partial"
    );
}

#[test]
fn per_table_invalidation_flushes_partials_and_windows() {
    let catalog = catalog();
    let service =
        sharing_service(SchedulerPolicy::GlobalQueue, ExecutionMode::MorselDriven, &catalog);
    let plan = scaled_sum(7);
    let session = service.connect();
    let expected = session.submit(&plan).expect("cold run executes").output;
    session.submit(&plan).expect("warm run executes");
    let reused_before = service.stats().partials_reused;
    assert!(reused_before > 0, "warm run should have reused a partial");

    // Flush: the next identical submission must re-execute from the table
    // (no partial reuse, no shared windows left to serve from).
    service.invalidate_table("t");
    let shared_before = service.stats().morsels_shared;
    let got = session.submit(&plan).expect("post-invalidation run executes").output;
    assert_eq!(got, expected, "invalidation changed the result");
    let stats = service.stats();
    assert_eq!(stats.partials_reused, reused_before, "flushed partial was reused");
    assert_eq!(stats.morsels_shared, shared_before, "flushed windows served a morsel");
}

#[test]
fn cancellation_and_deadlines_leave_the_group_healthy() {
    // A member failing out (expired deadline here) must detach without
    // stalling or poisoning the group: the next member still executes and
    // still shares.
    let catalog = catalog();
    let service =
        sharing_service(SchedulerPolicy::WorkStealing, ExecutionMode::MorselDriven, &catalog);
    let plan = scaled_sum(3);
    let session = service.connect();
    session.submit(&plan).expect("seed the scan group");
    let err = session
        .submit_with_deadline(&scaled_sum(4), Duration::ZERO)
        .expect_err("expired deadline must fail");
    assert_eq!(err, EngineError::DeadlineExceeded);
    let reference = Engine::with_workers(WORKERS);
    let follow_up = scaled_sum(5);
    let expected = reference.execute(&follow_up, &catalog).expect("reference").output;
    let got = session.submit(&follow_up).expect("group survives a failed member").output;
    assert_eq!(got, expected);
    assert!(service.stats().morsels_shared > 0, "surviving members still share");
}

#[test]
fn min_cache_cost_gates_result_cache_admission() {
    let catalog = catalog();
    let plan = scaled_sum(2);
    // A floor no sub-second query reaches: nothing is admitted, the warm
    // submission re-executes.
    let expensive_only = QueryService::new(
        ServiceConfig::with_engine(EngineConfig::with_workers(WORKERS))
            .with_min_cache_cost(Duration::from_secs(3_600)),
        Arc::clone(&catalog),
    );
    let session = expensive_only.connect();
    session.submit(&plan).expect("cold run executes");
    let warm = session.submit(&plan).expect("warm run executes");
    assert!(!warm.result_cache_hit, "a cheap execution claimed a cache slot");
    assert!(warm.profile.is_some(), "warm run should have re-executed");

    // The zero default admits everything, as before.
    let admit_all = QueryService::new(ServiceConfig::default(), Arc::clone(&catalog));
    let session = admit_all.connect();
    session.submit(&plan).expect("cold run executes");
    let warm = session.submit(&plan).expect("warm run is served from cache");
    assert!(warm.result_cache_hit, "zero floor should admit the cold result");
}
