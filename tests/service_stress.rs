//! Service churn stress: concurrent sessions submitting through the
//! shared plan/result caches must return byte-identical results to a
//! direct `Engine` execution of the same plans — across 2 scheduler
//! policies × 2 execution modes × controller on/off × cache hit/miss.
//!
//! Each configuration runs several client threads with their own
//! sessions; half the clients close mid-run (staggered departures), so
//! the unified census shrinks while survivors keep submitting, and the
//! controller (when on) re-grants DOP concurrently with cache churn.

use std::sync::Arc;
use std::time::Duration;

use adaptive_parallelization::engine::{
    ControllerConfig, Engine, EngineConfig, EngineError, ExecutionMode, QueryOutput, QueryService,
    SchedulerPolicy, ServiceConfig,
};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};

const WORKERS: usize = 4;
const MORSEL_ROWS: usize = 1_000;
const CLIENTS: usize = 6;
const ROUNDS: usize = 3;

/// The query mix every client cycles through.
const QUERIES: [TpchQuery; 3] = [TpchQuery::Q4, TpchQuery::Q6, TpchQuery::Q14];

fn engine_config(policy: SchedulerPolicy, mode: ExecutionMode, controller: bool) -> EngineConfig {
    let mut config = EngineConfig::with_workers(WORKERS)
        .with_scheduler(policy)
        .with_execution_mode(mode)
        .with_morsel_rows(MORSEL_ROWS);
    if controller {
        config = config.with_controller(
            ControllerConfig::default()
                .with_tick(Duration::from_micros(500))
                .with_morsel_bounds(250, 4_000),
        );
    }
    config
}

#[test]
fn churning_sessions_return_byte_identical_results_across_the_matrix() {
    let catalog = tpch::generate(TpchScale::new(0.002), 1234);
    let reference = Engine::with_workers(WORKERS);
    let expected: Vec<QueryOutput> = QUERIES
        .iter()
        .map(|q| {
            let plan = q.build(&catalog).expect("plan builds");
            reference.execute(&plan, &catalog).expect("reference executes").output
        })
        .collect();

    for policy in SchedulerPolicy::ALL {
        for mode in [ExecutionMode::OperatorAtATime, ExecutionMode::MorselDriven] {
            for controller in [false, true] {
                let label = format!("{policy}/{mode:?}/controller={controller}");
                let service = QueryService::new(
                    ServiceConfig::with_engine(engine_config(policy, mode, controller)),
                    Arc::clone(&catalog),
                );

                let threads: Vec<_> = (0..CLIENTS)
                    .map(|client| {
                        let service = service.clone();
                        let catalog = Arc::clone(&catalog);
                        let expected = expected.clone();
                        let label = label.clone();
                        std::thread::spawn(move || {
                            let session = service.connect();
                            for round in 0..ROUNDS {
                                // Staggered departures: odd clients leave
                                // after the first round and must be refused
                                // from then on, shrinking the census the
                                // survivors are re-granted from.
                                if client % 2 == 1 && round == 1 {
                                    session.close();
                                }
                                for (q, want) in QUERIES.iter().zip(&expected) {
                                    let plan = q.build(&catalog).expect("plan builds");
                                    match session.submit(&plan) {
                                        Ok(response) => {
                                            assert!(!session.is_closed());
                                            assert_eq!(
                                                &response.output, want,
                                                "{label} client {client} round {round} {q}: \
                                                 result diverged from direct engine"
                                            );
                                            // A hit skips execution, a miss
                                            // profiles one — never both.
                                            assert_eq!(
                                                response.profile.is_none(),
                                                response.result_cache_hit,
                                                "{label}: hit/profile disagree"
                                            );
                                        }
                                        Err(err) => {
                                            assert!(session.is_closed());
                                            assert_eq!(err, EngineError::SessionClosed);
                                        }
                                    }
                                }
                            }
                            session.close();
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().expect("client thread panicked");
                }

                // Both cache outcomes were exercised: first submissions
                // missed, repeats (cross-session, shared cache) hit.
                let stats = service.stats();
                assert!(stats.result_cache_hits > 0, "{label}: no cache hits exercised");
                assert!(stats.result_cache_misses >= QUERIES.len() as u64, "{label}: no misses");
                assert_eq!(
                    stats.result_cache_hits + stats.result_cache_misses,
                    stats.queries,
                    "{label}: per-query cache accounting drifted"
                );
                assert_eq!(stats.sessions_opened, CLIENTS as u64, "{label}");
                assert_eq!(stats.sessions_closed, CLIENTS as u64, "{label}");
                // The census drains completely once every client is gone.
                assert!(
                    service.engine().active_queries().is_empty(),
                    "{label}: reservations leaked past their sessions"
                );
            }
        }
    }
}
