//! Cross-policy scheduler stress: N concurrent clients execute a mixed plan
//! pool under every scheduling policy; every query's output must be
//! byte-identical across policies, and the queue-wait signal must appear in
//! the profiles whenever the pool is oversubscribed.
//!
//! This is the correctness obligation of the pluggable scheduler subsystem:
//! policies may reorder arbitrarily (local-first pop, stealing, priority
//! lanes, DOP throttling), but dependency order — and therefore the result —
//! is enforced by the executor's dataflow counters, never by queue order.

use std::sync::Arc;

use adaptive_parallelization::baselines::{heuristic_parallelize, AdmissionController};
use adaptive_parallelization::engine::{
    Engine, EngineConfig, QueryOptions, QueryOutput, SchedulerPolicy,
};
use adaptive_parallelization::workloads::micro::{join_sweep, select_sweep, skewed};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};

/// A mixed pool of plans: micro select/join/skew plans plus every TPC-H-like
/// query, serial and heuristically parallelized.
fn plan_pool(
) -> (Arc<adaptive_parallelization::columnar::Catalog>, Vec<adaptive_parallelization::engine::Plan>)
{
    let catalog = tpch::generate(TpchScale::new(0.002), 4242);
    let mut plans = Vec::new();
    for q in TpchQuery::all() {
        let serial = q.build(&catalog).expect("tpch plan builds");
        let hp = heuristic_parallelize(&serial, &catalog, 4).expect("HP rewrite");
        plans.push(serial);
        plans.push(hp);
    }
    (catalog, plans)
}

#[test]
fn concurrent_queries_produce_identical_outputs_under_every_policy() {
    let (catalog, plans) = plan_pool();
    let plans: Vec<Arc<_>> = plans.into_iter().map(Arc::new).collect();
    let n_clients = 6;
    let rounds = 3;

    let mut outputs_by_policy: Vec<Vec<QueryOutput>> = Vec::new();
    for policy in SchedulerPolicy::ALL {
        let engine = Arc::new(Engine::new(EngineConfig::with_workers(3).with_scheduler(policy)));
        let mut clients = Vec::new();
        for client in 0..n_clients {
            let engine = Arc::clone(&engine);
            let catalog = Arc::clone(&catalog);
            let plans = plans.clone();
            clients.push(std::thread::spawn(move || {
                let mut outs = Vec::new();
                for round in 0..rounds {
                    // Deterministic interleaving-independent assignment.
                    let plan = &plans[(client * rounds + round) % plans.len()];
                    outs.push(
                        engine
                            .execute_shared(plan, &catalog)
                            .expect("stress query executes")
                            .output,
                    );
                }
                outs
            }));
        }
        let outputs: Vec<QueryOutput> =
            clients.into_iter().flat_map(|c| c.join().expect("client thread")).collect();
        // Every task dispatched exactly once: the scheduler executed all the
        // operators that all the queries produced.
        assert!(engine.scheduler_stats().total_executed() > 0);
        outputs_by_policy.push(outputs);
    }

    let [global, stealing] = &outputs_by_policy[..] else {
        panic!("expected exactly two policies")
    };
    assert_eq!(global.len(), stealing.len());
    for (i, (g, s)) in global.iter().zip(stealing).enumerate() {
        assert_eq!(g, s, "query {i}: outputs diverged between scheduling policies");
    }
}

#[test]
fn oversubscribed_pool_records_queue_wait_under_every_policy() {
    let catalog = select_sweep::catalog(60_000, 7);
    let plan = select_sweep::plan(&catalog, 40).expect("plan builds");
    let parallel = Arc::new(heuristic_parallelize(&plan, &catalog, 8).expect("HP rewrite"));
    for policy in SchedulerPolicy::ALL {
        // 8 partitions on 2 workers: ready tasks must queue.
        let engine = Engine::new(EngineConfig::with_workers(2).with_scheduler(policy));
        let exec = engine.execute_shared(&parallel, &catalog).expect("executes");
        assert!(
            exec.profile.total_queue_wait_us() > 0,
            "{policy}: oversubscribed plan recorded no queue wait"
        );
        let share = exec.profile.queue_wait_share();
        assert!((0.0..=1.0).contains(&share), "{policy}: wait share {share} out of range");
        let stats = engine.scheduler_stats();
        assert_eq!(stats.total_executed() as usize, exec.profile.operators.len());
        assert_eq!(stats.total_queue_wait_us(), exec.profile.total_queue_wait_us());
    }
}

#[test]
fn skew_and_joins_survive_stealing_with_throttled_and_priority_queries() {
    // Heterogeneous pressure: a skewed select, a join plan and an admission-
    // throttled query run concurrently under the work-stealing policy.
    let skew_cat = skewed::catalog(100_000, 5);
    let skew_plan = Arc::new(
        heuristic_parallelize(&skewed::plan(&skew_cat, 2).expect("builds"), &skew_cat, 6)
            .expect("HP rewrite"),
    );
    let join_cat = join_sweep::catalog(50_000, 256, 9);
    let join_plan = Arc::new(join_sweep::plan(&join_cat).expect("builds"));

    let engine = Arc::new(Engine::new(
        EngineConfig::with_workers(3).with_scheduler(SchedulerPolicy::WorkStealing),
    ));
    let skew_expected = engine.execute_shared(&skew_plan, &skew_cat).expect("skew").output;
    let join_expected = engine.execute_shared(&join_plan, &join_cat).expect("join").output;

    let mut threads = Vec::new();
    for i in 0..4 {
        let engine = Arc::clone(&engine);
        let skew_plan = Arc::clone(&skew_plan);
        let skew_cat = Arc::clone(&skew_cat);
        let join_plan = Arc::clone(&join_plan);
        let join_cat = Arc::clone(&join_cat);
        let skew_expected = skew_expected.clone();
        let join_expected = join_expected.clone();
        threads.push(std::thread::spawn(move || {
            for _ in 0..2 {
                match i % 3 {
                    0 => {
                        // Throttled to one task at a time, high priority.
                        let handle =
                            engine.register_query(QueryOptions { priority: 1, admitted_dop: 1 });
                        let out = engine
                            .execute_with_handle(&skew_plan, &skew_cat, handle)
                            .expect("throttled skew executes")
                            .output;
                        assert_eq!(out, skew_expected);
                    }
                    1 => {
                        let out =
                            engine.execute_shared(&join_plan, &join_cat).expect("join").output;
                        assert_eq!(out, join_expected);
                    }
                    _ => {
                        let out =
                            engine.execute_shared(&skew_plan, &skew_cat).expect("skew").output;
                        assert_eq!(out, skew_expected);
                    }
                }
            }
        }));
    }
    for t in threads {
        t.join().expect("stress thread");
    }
}

#[test]
fn admission_as_scheduler_policy_matches_plan_rewriting_results() {
    let catalog = tpch::generate(TpchScale::new(0.002), 17);
    let serial = TpchQuery::Q6.build(&catalog).expect("Q6 builds");
    for policy in SchedulerPolicy::ALL {
        let engine = Engine::new(EngineConfig::with_workers(4).with_scheduler(policy));
        let expected = engine.execute(&serial, &catalog).expect("serial").output;
        let parallel = Arc::new(heuristic_parallelize(&serial, &catalog, 4).expect("HP"));
        let ctrl = AdmissionController::new(4);
        // Old mechanism: DOP baked into the plan.
        let (rewritten, _ticket) = ctrl.plan_for(&serial, &catalog).expect("plan_for");
        let rewritten_out = engine.execute(&rewritten, &catalog).expect("rewritten").output;
        // New mechanism: DOP enforced by the scheduler.
        let (exec, _dop) = ctrl.execute_admitted(&engine, &parallel, &catalog).expect("admitted");
        assert_eq!(rewritten_out, expected, "{policy}: rewritten plan diverged");
        assert_eq!(exec.output, expected, "{policy}: scheduler-throttled plan diverged");
    }
}
