#!/usr/bin/env bash
# Schema check for the benchmark records: fails if a BENCH_*.json file is
# missing, empty, brace-unbalanced, or lacks the keys its consumers rely on.
#
# Usage: scripts/check_bench_json.sh <hotpath|service> <path>
set -euo pipefail

kind="${1:?usage: check_bench_json.sh <hotpath|service> <path>}"
path="${2:?usage: check_bench_json.sh <hotpath|service> <path>}"

case "$kind" in
  hotpath)
    keys=(
      '"bench": "hotpath"'
      '"mode":'
      'slice_union_microbench'
      'windowed_ms'
      'materializing_ms'
      'typed_access'
      'repeat_window_access'
      'warm_ms'
      'cold_ms'
      'groupagg_q1_style'
      'fused_ms'
      'unfused_ms'
      'tpch_morsel_wall_time'
    )
    ;;
  service)
    keys=(
      '"bench": "service"'
      '"mode":'
      'client_churn'
      'throughput_qps'
      'result_cache_hits'
      'staged_departure'
      'mean_response_ms'
      'mean_admit_dop'
      '"overload"'
      '"shed"'
      '"timed_out"'
      'p99_response_ms'
      '"chaos"'
      'faults_injected'
      '"shared_scan"'
      'morsels_shared'
      'partials_reused'
    )
    ;;
  *)
    echo "check_bench_json.sh: unknown bench kind '$kind'" >&2
    exit 2
    ;;
esac

[ -s "$path" ] || { echo "FAIL: $path is missing or empty" >&2; exit 1; }

status=0
for key in "${keys[@]}"; do
  if ! grep -qF "$key" "$path"; then
    echo "FAIL: $path is missing required key: $key" >&2
    status=1
  fi
done

# Balanced braces/brackets: cheap well-formedness without a JSON parser.
opens=$(grep -o '{' "$path" | wc -l)
closes=$(grep -o '}' "$path" | wc -l)
if [ "$opens" -ne "$closes" ]; then
  echo "FAIL: $path has unbalanced braces ({: $opens, }: $closes)" >&2
  status=1
fi
opens=$(grep -o '\[' "$path" | wc -l)
closes=$(grep -o '\]' "$path" | wc -l)
if [ "$opens" -ne "$closes" ]; then
  echo "FAIL: $path has unbalanced brackets ([: $opens, ]: $closes)" >&2
  status=1
fi

if [ "$status" -eq 0 ]; then
  echo "OK: $path conforms to the $kind schema"
fi
exit "$status"
