//! The production front door: client churn rewritten against the
//! [`QueryService`] session API.
//!
//! Where `elastic_concurrency.rs` wires admission, registration and
//! execution together by hand (admission ticket → `register_query` →
//! `execute_with_handle`), this example opens a session and submits — the
//! service folds admission into the engine's live-query registry, so a
//! client counts against the census from `connect`-and-submit time and the
//! elastic controller re-grants survivors as others leave. Shared plan and
//! result caches turn repeat submissions into cache hits across sessions.
//!
//! ```text
//! cargo run --release --example query_service
//! ```

use std::sync::Arc;
use std::time::Duration;

use adaptive_parallelization::columnar::{datagen, Catalog, TableBuilder};
use adaptive_parallelization::engine::{
    ControllerConfig, DopPhase, EngineConfig, ExecutionMode, Plan, QueryService, ServiceConfig,
};
use adaptive_parallelization::operators::{AggFunc, BinaryOp, CmpOp, Predicate};
use adaptive_parallelization::workloads::PlanBuilder;

/// sum(amount * (100 - discount) / 100) over rows with region < cut.
fn revenue_plan(catalog: &Catalog, cut: i64) -> Plan {
    let mut b = PlanBuilder::new(catalog);
    let region = b.scan("sales", "region").expect("column exists");
    let selected = b.select(region, Predicate::cmp(CmpOp::Lt, cut));
    let amount = b.scan("sales", "amount").expect("column exists");
    let discount = b.scan("sales", "discount").expect("column exists");
    let amount_f = b.fetch(selected, amount);
    let discount_f = b.fetch(selected, discount);
    let one_minus = b.scalar_calc(BinaryOp::Sub, 100i64, discount_f);
    let revenue = b.calc(BinaryOp::Mul, amount_f, one_minus);
    let revenue = b.calc_scalar(BinaryOp::Div, revenue, 100i64);
    let total = b.scalar_agg(AggFunc::Sum, revenue);
    b.finish(total).expect("plan builds")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 4;
    let rows = 2_000_000;
    let mut catalog = Catalog::new();
    catalog.register(
        TableBuilder::new("sales")
            .i64_column("amount", datagen::prices_decimal2(rows, 1.0, 500.0, 1))
            .i64_column("discount", datagen::uniform_i64(rows, 0, 11, 2))
            .i64_column("region", datagen::uniform_i64(rows, 0, 25, 3))
            .build()?,
    );

    // One long-lived service instance is the whole setup: engine, admission,
    // controller and caches behind a cloneable handle.
    let service = QueryService::new(
        ServiceConfig::with_engine(
            EngineConfig::with_workers(workers)
                .with_execution_mode(ExecutionMode::MorselDriven)
                .with_morsel_rows(64 * 1024)
                .with_controller(
                    ControllerConfig::default()
                        .with_tick(Duration::from_micros(500))
                        .with_morsel_bounds(8 * 1024, 512 * 1024),
                ),
        ),
        Arc::new(catalog),
    );

    let short_plan = Arc::new(revenue_plan(&service.catalog(), 2));
    let long_plan = Arc::new(revenue_plan(&service.catalog(), 23));

    println!("client churn on {workers} workers (2 short clients, 2 long survivors):");
    let mut clients = Vec::new();
    for (name, plan) in [
        ("long-0", &long_plan),
        ("long-1", &long_plan),
        ("short-0", &short_plan),
        ("short-1", &short_plan),
    ] {
        let service = service.clone();
        let plan = Arc::clone(plan);
        clients.push(std::thread::spawn(move || {
            let session = service.connect();
            let response = session.submit(&plan).expect("query executes");
            // Sessions close on drop; explicit close releases the census
            // slot the moment this client is done.
            session.close();
            (name, response)
        }));
    }

    let mut results = Vec::new();
    for client in clients {
        results.push(client.join().expect("client thread"));
    }
    results.sort_by_key(|(name, _)| *name);
    for (name, response) in &results {
        println!();
        println!("  {name}: result {}", response.output.summary());
        if let Some(profile) = &response.profile {
            let timeline: Vec<String> = profile
                .dop_timeline
                .iter()
                .map(|e| format!("{:?}:{}@{}us", e.phase, e.dop, e.at_us))
                .collect();
            println!(
                "  {:<12} dop timeline [{}]{}",
                "",
                timeline.join(" -> "),
                if profile.dop_was_regranted() { "  << re-granted mid-flight" } else { "" },
            );
            // Every submission lived as a census-visible reservation before
            // it executed: the unified-admission invariant.
            assert_eq!(profile.dop_timeline[0].phase, DopPhase::Reserve);
        } else {
            println!("  {:<12} answered from the shared result cache", "");
        }
    }

    // Repeat submissions hit the shared result cache (any session).
    let session = service.connect();
    let warm = session.submit(&long_plan)?;
    let stats = service.stats();
    println!();
    println!(
        "warm repeat: cache_hit={}, service totals: {} queries, {} result-cache hits, \
         {} plan-cache hits across {} sessions",
        warm.result_cache_hit,
        stats.queries,
        stats.result_cache_hits,
        stats.plan_cache_hits,
        stats.sessions_opened,
    );
    Ok(())
}
