//! Elastic concurrency: a client-churn workload in which the engine's
//! resource controller re-grants degrees of parallelism mid-flight.
//!
//! Four clients hit one engine through a Vectorwise-style admission
//! controller. Two run short queries and leave early; two run long queries
//! and survive the churn. Every client is admitted with a fixed share of
//! the pool (the classic one-shot scheme under which later clients stay
//! throttled forever) — but the engine's elastic controller keeps watching
//! `Engine::active_queries()` and, as the short clients finish, re-grants
//! the survivors' admitted DOP up to their new equal share. The survivors'
//! `QueryProfile::dop_timeline` prints the whole story; with morsel-driven
//! execution the controller also adapts each query's morsel size from live
//! queue-wait feedback (`QueryProfile::morsel_sizes`).
//!
//! ```text
//! cargo run --release --example elastic_concurrency
//! ```

use std::sync::Arc;
use std::time::Duration;

use adaptive_parallelization::baselines::{heuristic_parallelize, AdmissionController};
use adaptive_parallelization::columnar::{datagen, Catalog, TableBuilder};
use adaptive_parallelization::engine::{
    ControllerConfig, Engine, EngineConfig, ExecutionMode, QueryOptions, QueryProfile,
};
use adaptive_parallelization::operators::{AggFunc, BinaryOp, CmpOp, Predicate};
use adaptive_parallelization::workloads::PlanBuilder;

/// sum(amount * (100 - discount) / 100) over `rows` rows with region < cut.
fn revenue_plan(
    catalog: &Catalog,
    table: &str,
    cut: i64,
) -> adaptive_parallelization::engine::Plan {
    let mut b = PlanBuilder::new(catalog);
    let region = b.scan(table, "region").expect("column exists");
    let selected = b.select(region, Predicate::cmp(CmpOp::Lt, cut));
    let amount = b.scan(table, "amount").expect("column exists");
    let discount = b.scan(table, "discount").expect("column exists");
    let amount_f = b.fetch(selected, amount);
    let discount_f = b.fetch(selected, discount);
    let one_minus = b.scalar_calc(BinaryOp::Sub, 100i64, discount_f);
    let revenue = b.calc(BinaryOp::Mul, amount_f, one_minus);
    let revenue = b.calc_scalar(BinaryOp::Div, revenue, 100i64);
    let total = b.scalar_agg(AggFunc::Sum, revenue);
    b.finish(total).expect("plan builds")
}

fn describe(label: &str, profile: &QueryProfile) {
    let timeline: Vec<String> =
        profile.dop_timeline.iter().map(|e| format!("{}@{}us", e.dop, e.at_us)).collect();
    println!(
        "  {label:<12} dop timeline [{}]{}",
        timeline.join(" -> "),
        if profile.dop_was_regranted() { "  << re-granted mid-flight" } else { "" },
    );
    if !profile.pipelines.is_empty() {
        println!("  {:<12} morsel sizes {:?}", "", profile.morsel_sizes());
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 4;

    // One table, two row populations: "short" clients touch a small slice
    // of the workload, "long" clients a large one.
    let rows = 2_000_000;
    let mut catalog = Catalog::new();
    catalog.register(
        TableBuilder::new("sales")
            .i64_column("amount", datagen::prices_decimal2(rows, 1.0, 500.0, 1))
            .i64_column("discount", datagen::uniform_i64(rows, 0, 11, 2))
            .i64_column("region", datagen::uniform_i64(rows, 0, 25, 3))
            .build()?,
    );
    let catalog = Arc::new(catalog);

    // The engine runs morsel-driven with the elastic controller ticking in
    // the background: DOP re-grants as clients leave, morsel sizes adapted
    // from live queue-wait feedback.
    let engine = Arc::new(Engine::new(
        EngineConfig::with_workers(workers)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(64 * 1024)
            .with_controller(
                ControllerConfig::default()
                    .with_tick(Duration::from_micros(500))
                    .with_morsel_bounds(8 * 1024, 512 * 1024),
            ),
    ));

    // Fully parallel plans; throttling is purely the scheduler's job.
    let short_serial = revenue_plan(&catalog, "sales", 2);
    let long_serial = revenue_plan(&catalog, "sales", 23);
    let short_plan = Arc::new(heuristic_parallelize(&short_serial, &catalog, workers)?);
    let long_plan = Arc::new(heuristic_parallelize(&long_serial, &catalog, workers)?);

    // Admission: every client gets a fixed entry grant from the current
    // census; the engine controller owns the grant afterwards.
    let admission = Arc::new(AdmissionController::new(workers));

    println!("client churn on {workers} workers (2 short clients, 2 long survivors):");
    let mut clients = Vec::new();
    for (name, plan) in [
        ("long-0", &long_plan),
        ("long-1", &long_plan),
        ("short-0", &short_plan),
        ("short-1", &short_plan),
    ] {
        let engine = Arc::clone(&engine);
        let catalog = Arc::clone(&catalog);
        let plan = Arc::clone(plan);
        let admission = Arc::clone(&admission);
        clients.push(std::thread::spawn(move || {
            let ticket = admission.admit();
            let handle = engine.register_query(QueryOptions::with_admitted_dop(ticket.dop()));
            let exec = engine.execute_with_handle(&plan, &catalog, handle).expect("query executes");
            (name, ticket.dop(), exec)
        }));
    }

    let mut results = Vec::new();
    for client in clients {
        results.push(client.join().expect("client thread"));
    }
    results.sort_by_key(|(name, ..)| *name);
    for (name, admitted, exec) in &results {
        println!();
        println!("  {name}: admitted at DOP {admitted}, result {}", exec.output.summary());
        describe(name, &exec.profile);
    }

    let regrants = results.iter().filter(|(.., e)| e.profile.dop_was_regranted()).count();
    println!();
    println!(
        "{regrants} of {} queries were re-granted DOP mid-flight \
         (expect the long survivors on a multi-core machine; short queries \
         may finish before the controller's first tick).",
        results.len()
    );
    Ok(())
}
