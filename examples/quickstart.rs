//! Quickstart: build a small columnar database, write a query plan, and let
//! adaptive parallelization find a faster parallel plan from execution
//! feedback.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::columnar::{datagen, Catalog, TableBuilder};
use adaptive_parallelization::engine::{
    Engine, EngineConfig, ExecutionMode, SchedulerPolicy, SharingConfig,
};
use adaptive_parallelization::operators::{AggFunc, BinaryOp, CmpOp, Predicate};
use adaptive_parallelization::workloads::PlanBuilder;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build a small database: one "sales" table with a million rows.
    let rows = 1_000_000;
    let mut catalog = Catalog::new();
    catalog.register(
        TableBuilder::new("sales")
            .i64_column("amount", datagen::prices_decimal2(rows, 1.0, 500.0, 1))
            .i64_column("discount", datagen::uniform_i64(rows, 0, 11, 2))
            .i64_column("region", datagen::uniform_i64(rows, 0, 25, 3))
            .build()?,
    );
    let catalog = Arc::new(catalog);

    // 2. Write the serial plan for
    //    SELECT sum(amount * (100 - discount) / 100) FROM sales WHERE region < 5;
    let mut builder = PlanBuilder::new(&catalog);
    let region = builder.scan("sales", "region")?;
    let selected = builder.select(region, Predicate::cmp(CmpOp::Lt, 5i64));
    let amount = builder.scan("sales", "amount")?;
    let discount = builder.scan("sales", "discount")?;
    let amount_f = builder.fetch(selected, amount);
    let discount_f = builder.fetch(selected, discount);
    let one_minus = builder.scalar_calc(BinaryOp::Sub, 100i64, discount_f);
    let revenue = builder.calc(BinaryOp::Mul, amount_f, one_minus);
    let revenue = builder.calc_scalar(BinaryOp::Div, revenue, 100i64);
    let total = builder.scalar_agg(AggFunc::Sum, revenue);
    let serial_plan = builder.finish(total)?;

    // 3. Execute it serially once. The engine's task scheduler is pluggable:
    //    `SchedulerPolicy::GlobalQueue` (one shared FIFO, the default) or
    //    `SchedulerPolicy::WorkStealing` (per-worker deques, local-first pop,
    //    stealing) — results are identical, the dispatch behavior differs.
    let engine =
        Engine::new(EngineConfig::with_workers(8).with_scheduler(SchedulerPolicy::WorkStealing));
    let serial = engine.execute(&serial_plan, &catalog)?;
    println!("serial result : {}", serial.output.summary());
    println!("serial time   : {:.3} ms", serial.profile.wall_us() as f64 / 1000.0);

    // 4. Let adaptive parallelization morph the plan run by run.
    let config = AdaptiveConfig::for_cores(engine.n_workers()).with_verification();
    let optimizer = AdaptiveOptimizer::new(config);
    let report = optimizer.optimize(&engine, &catalog, &serial_plan)?;

    println!();
    println!("adaptive parallelization:");
    for record in &report.records {
        println!(
            "  run {:>2}: {:>8.3} ms   {:<8} {:>3} operators   balance {:>6.2}",
            record.run,
            record.exec_us as f64 / 1000.0,
            record.mutation.map(|m| m.to_string()).unwrap_or_else(|| "serial".into()),
            record.plan_nodes,
            record.balance,
        );
    }
    println!();
    print!("{}", report.summary());
    println!("result unchanged: {}", report.final_output == serial.output);

    // 5. The scheduler's per-worker dispatch counters: how much work stayed
    //    local vs. was stolen or injected, and how long tasks sat queued.
    let stats = engine.scheduler_stats();
    println!();
    println!(
        "scheduler {}: {} tasks, {:.0}% local, {} steals, {:.3} ms total queue wait",
        stats.policy,
        stats.total_executed(),
        stats.locality() * 100.0,
        stats.total_steals(),
        stats.total_queue_wait_us() as f64 / 1000.0,
    );

    // 6. The same query in morsel-driven execution mode: compatible operator
    //    chains fuse into pipelines, the input is cut into fixed-size
    //    morsels, and each morsel flows through all fused stages as one
    //    scheduler task. Results are byte-identical; the dispatch
    //    granularity (and the work-stealing locality) changes.
    let morsel_engine = Engine::new(
        EngineConfig::with_workers(8)
            .with_scheduler(SchedulerPolicy::WorkStealing)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(64 * 1024),
    );
    let morsel = morsel_engine.execute(&serial_plan, &catalog)?;
    println!();
    println!("morsel-driven  : {}", morsel.output.summary());
    println!("identical      : {}", morsel.output == serial.output);
    for pipeline in &morsel.profile.pipelines {
        println!(
            "  pipeline over nodes {:?}: {} rows in {} morsels, per-worker {:?}",
            pipeline.nodes, pipeline.source_rows, pipeline.n_morsels, pipeline.morsels_by_worker,
        );
    }

    // 7. Work sharing: with `with_sharing` (or, at the service layer,
    //    `ServiceConfig::enable_shared_scans`), overlapping queries
    //    cooperate — each scan morsel is produced once and fanned to every
    //    concurrent reader, and repeated aggregate shapes resume from
    //    cached partials. Results stay byte-identical; only who executes
    //    the scan work changes.
    let sharing_engine = Engine::new(
        EngineConfig::with_workers(8)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(64 * 1024)
            .with_sharing(SharingConfig::default()),
    );
    sharing_engine.execute(&serial_plan, &catalog)?; // cold: scans privately
    let shared = sharing_engine.execute(&serial_plan, &catalog)?; // warm: reuses
    let stats = sharing_engine.sharing_stats();
    println!();
    println!("work sharing   : {}", shared.output.summary());
    println!("identical      : {}", shared.output == serial.output);
    println!(
        "  {} scan groups, {} morsels shared / {} private, {} partials reused",
        stats.scan_groups, stats.morsels_shared, stats.morsels_private, stats.partials_reused,
    );

    // Where to next: `EngineConfig::with_controller` adds the elastic
    // resource controller — mid-flight DOP re-grants as clients come and go
    // and adaptive morsel sizing from live queue-wait feedback. See the
    // `elastic_concurrency` example for a client-churn workload where the
    // re-grants kick in:
    //
    //     cargo run --release --example elastic_concurrency
    Ok(())
}
