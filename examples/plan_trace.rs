//! Plan evolution and tomograph-style execution traces (paper Figs. 19/20).
//!
//! Shows TPC-H Q14's serial plan, the plan adaptive parallelization converges
//! to, and the statically parallelized plan — then executes the latter two
//! and renders per-worker timelines so the multi-core-utilization difference
//! is visible in the terminal.
//!
//! ```text
//! cargo run --release --example plan_trace
//! ```

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::Engine;
use adaptive_parallelization::workloads::tpch::{self, queries::q14, TpchScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 8;
    let catalog = tpch::generate(TpchScale::new(0.01), 42);
    let engine = Engine::with_workers(workers);
    let serial = q14(&catalog)?;

    println!("--- serial Q14 plan ({} operators) ---", serial.node_count());
    println!("{}", serial.pretty());

    let optimizer = AdaptiveOptimizer::new(AdaptiveConfig::for_cores(workers).with_max_runs(24));
    let report = optimizer.optimize(&engine, &catalog, &serial)?;
    println!(
        "--- adaptive Q14 plan after {} runs ({} operators, speedup {:.2}x) ---",
        report.total_runs,
        report.best_plan.node_count(),
        report.speedup()
    );
    println!("{}", report.best_plan.pretty());

    let hp = heuristic_parallelize(&serial, &catalog, workers)?;
    println!("--- heuristic Q14 plan ({} operators) ---", hp.node_count());

    let ap_exec = engine.execute(&report.best_plan, &catalog)?;
    let hp_exec = engine.execute(&hp, &catalog)?;
    println!("--- adaptive execution trace (paper Fig. 19) ---");
    println!("{}", ap_exec.profile.timeline(100));
    println!("--- heuristic execution trace (paper Fig. 20) ---");
    println!("{}", hp_exec.profile.timeline(100));
    println!(
        "multi-core utilization: adaptive {:.1}% vs heuristic {:.1}%  |  parallelism usage: adaptive {:.1}% vs heuristic {:.1}%",
        ap_exec.profile.multi_core_utilization() * 100.0,
        hp_exec.profile.multi_core_utilization() * 100.0,
        ap_exec.profile.parallelism_usage() * 100.0,
        hp_exec.profile.parallelism_usage() * 100.0,
    );
    Ok(())
}
