//! Concurrent workload: why the adaptive plans' lower degree of parallelism
//! pays off when the machine is busy.
//!
//! A pool of background clients keeps firing heuristically parallelized
//! TPC-H queries; the example then measures the response time of Q6 and Q14
//! executed (a) as heuristic plans and (b) as the plans found by adaptive
//! parallelization, mirroring the paper's Figure 16 concurrent bars.
//!
//! ```text
//! cargo run --release --example concurrent_workload
//! ```

use std::sync::Arc;

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::Engine;
use adaptive_parallelization::workloads::concurrent::{measure_under_load, BackgroundLoad};
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workers = 8;
    let clients = 16;
    let catalog = tpch::generate(TpchScale::new(0.01), 42);
    let engine = Arc::new(Engine::with_workers(workers));
    let optimizer = AdaptiveOptimizer::new(AdaptiveConfig::for_cores(workers).with_max_runs(24));

    // Prepare plans while the system is idle.
    let mut prepared = Vec::new();
    let mut background = Vec::new();
    for query in TpchQuery::all() {
        let serial = query.build(&catalog)?;
        let hp = heuristic_parallelize(&serial, &catalog, workers)?;
        background.push(hp.clone());
        if matches!(query, TpchQuery::Q6 | TpchQuery::Q14 | TpchQuery::Q8) {
            let report = optimizer.optimize(&engine, &catalog, &serial)?;
            prepared.push((query, hp, report.best_plan.clone()));
        }
    }

    println!("starting {clients} background clients on {workers} workers...");
    let load =
        BackgroundLoad::start(Arc::clone(&engine), Arc::clone(&catalog), background, clients, 7);

    println!("{:<5} {:>16} {:>16} {:>12}", "query", "heuristic_ms", "adaptive_ms", "improvement");
    for (query, hp, ap) in &prepared {
        let hp_m = measure_under_load(&engine, &catalog, hp, 5)?;
        let ap_m = measure_under_load(&engine, &catalog, ap, 5)?;
        println!(
            "{:<5} {:>16.3} {:>16.3} {:>11.1}%",
            query.to_string(),
            hp_m.mean_ms(),
            ap_m.mean_ms(),
            (1.0 - ap_m.mean_ms() / hp_m.mean_ms()) * 100.0,
        );
    }
    let executed = load.stop();
    println!("background clients completed {executed} queries during the measurement");
    Ok(())
}
