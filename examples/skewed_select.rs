//! Skew handling: static vs dynamic (adaptive) partitioning of a select over
//! the skewed column of the paper's Figure 13.
//!
//! Static equi-range partitioning assigns every worker the same number of
//! rows, but all the matching rows live in one region of the column, so one
//! partition does all the output work. Adaptive parallelization notices that
//! the operator on the skewed partition stays the most expensive one and
//! keeps splitting exactly that partition until the work is balanced.
//!
//! ```text
//! cargo run --release --example skewed_select
//! ```

use std::time::Instant;

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::baselines::{heuristic_parallelize, work_stealing_plan};
use adaptive_parallelization::engine::Engine;
use adaptive_parallelization::workloads::micro::skewed;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = 2_000_000;
    let workers = 8;
    println!("skewed column with {rows} rows, {workers} workers");
    let catalog = skewed::catalog(rows, 7);
    let engine = Engine::with_workers(workers);
    let optimizer = AdaptiveOptimizer::new(AdaptiveConfig::for_cores(workers).with_max_runs(32));

    println!(
        "{:>7} {:>16} {:>18} {:>14} {:>14}",
        "skew_%", "static_8_ms", "static_128_ms", "adaptive_ms", "AP_partitions"
    );
    for clusters in 1..=5usize {
        let serial = skewed::plan(&catalog, clusters)?;
        let static_plan = heuristic_parallelize(&serial, &catalog, workers)?;
        let stealing_plan = work_stealing_plan(&serial, &catalog, 128)?;
        let report = optimizer.optimize(&engine, &catalog, &serial)?;

        let static_ms = best_ms(&engine, &catalog, &static_plan);
        let stealing_ms = best_ms(&engine, &catalog, &stealing_plan);
        let adaptive_ms = best_ms(&engine, &catalog, &report.best_plan);
        println!(
            "{:>7} {:>16.3} {:>18.3} {:>14.3} {:>14}",
            clusters * 10,
            static_ms,
            stealing_ms,
            adaptive_ms,
            report.best_plan.count_of("select"),
        );
    }
    Ok(())
}

fn best_ms(
    engine: &Engine,
    catalog: &std::sync::Arc<adaptive_parallelization::columnar::Catalog>,
    plan: &adaptive_parallelization::engine::Plan,
) -> f64 {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            engine.execute(plan, catalog).expect("execution succeeds");
            start.elapsed().as_secs_f64() * 1000.0
        })
        .fold(f64::INFINITY, f64::min)
}
