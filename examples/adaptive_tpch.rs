//! Adaptive vs heuristic parallelization on the TPC-H-like workload.
//!
//! Builds a scale-factor-0.01 database, then runs every evaluated query
//! (Q4, Q6, Q8, Q9, Q14, Q19, Q22) three ways: the serial plan, the
//! statically parallelized (heuristic) plan, and the plan found by adaptive
//! parallelization.
//!
//! ```text
//! cargo run --release --example adaptive_tpch
//! ```

use std::time::Instant;

use adaptive_parallelization::adaptive::{AdaptiveConfig, AdaptiveOptimizer};
use adaptive_parallelization::baselines::heuristic_parallelize;
use adaptive_parallelization::engine::Engine;
use adaptive_parallelization::workloads::tpch::{self, TpchQuery, TpchScale};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale = TpchScale::new(0.01);
    println!(
        "generating TPC-H-like data (scale factor {}, {} lineitem rows)...",
        scale.sf,
        scale.lineitem_rows()
    );
    let catalog = tpch::generate(scale, 42);
    let engine = Engine::with_workers(8);
    let optimizer =
        AdaptiveOptimizer::new(AdaptiveConfig::for_cores(engine.n_workers()).with_max_runs(24));

    println!(
        "{:<5} {:>12} {:>12} {:>12} {:>8} {:>10}",
        "query", "serial_ms", "heuristic_ms", "adaptive_ms", "AP_runs", "AP_selects"
    );
    for query in TpchQuery::all() {
        let serial_plan = query.build(&catalog)?;
        let serial_ms = time_ms(|| {
            engine.execute(&serial_plan, &catalog).expect("serial execution");
        });

        let hp_plan = heuristic_parallelize(&serial_plan, &catalog, engine.n_workers())?;
        let hp_ms = time_ms(|| {
            engine.execute(&hp_plan, &catalog).expect("heuristic execution");
        });

        let report = optimizer.optimize(&engine, &catalog, &serial_plan)?;
        let ap_ms = time_ms(|| {
            engine.execute(&report.best_plan, &catalog).expect("adaptive execution");
        });

        println!(
            "{:<5} {:>12.3} {:>12.3} {:>12.3} {:>8} {:>10}",
            query.to_string(),
            serial_ms,
            hp_ms,
            ap_ms,
            report.total_runs,
            report.best_plan.count_of("select"),
        );
    }
    Ok(())
}

fn time_ms(mut f: impl FnMut()) -> f64 {
    // Best of three, like the experiment harness.
    (0..3)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1000.0
        })
        .fold(f64::INFINITY, f64::min)
}
