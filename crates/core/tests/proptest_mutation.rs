//! Property-based tests for the adaptive parallelizer's core invariants:
//!
//! * any sequence of plan mutations keeps the plan structurally valid;
//! * every mutated plan produces exactly the serial plan's result;
//! * the convergence algorithm always terminates within the paper's bounds.

use std::sync::Arc;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue, TableBuilder};
use apq_core::{mutate_most_expensive, AdaptiveConfig, ConvergenceState};
use apq_engine::plan::OperatorSpec;
use apq_engine::{Engine, Plan};
use apq_operators::{AggFunc, BinaryOp, CmpOp, Predicate};
use proptest::prelude::*;

fn catalog(rows: usize, seed: u64) -> Arc<Catalog> {
    let mut c = Catalog::new();
    let values = apq_columnar::datagen::uniform_i64(rows, 0, 1000, seed);
    let payload = apq_columnar::datagen::uniform_i64(rows, 0, 97, seed.wrapping_add(1));
    let keys = apq_columnar::datagen::uniform_i64(rows, 0, 8, seed.wrapping_add(2));
    c.register(
        TableBuilder::new("t")
            .i64_column("a", values)
            .i64_column("b", payload)
            .i64_column("g", keys)
            .build()
            .unwrap(),
    );
    Arc::new(c)
}

fn scan(column: &str, rows: usize) -> OperatorSpec {
    OperatorSpec::ScanColumn {
        table: "t".into(),
        column: column.into(),
        range: RowRange::new(0, rows),
    }
}

/// Serial plan: sum(b * 2) over rows where a < threshold.
fn scalar_query(rows: usize, threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(scan("a", rows), vec![]);
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let b = p.add(scan("b", rows), vec![]);
    let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let calc = p.add(
        OperatorSpec::Calc {
            op: BinaryOp::Mul,
            left_scalar: None,
            right_scalar: Some(ScalarValue::I64(2)),
        },
        vec![fetch],
    );
    let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![calc]);
    let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    p.set_root(fin);
    p
}

/// Serial plan: select g, sum(b) from t where a < threshold group by g.
fn grouped_query(rows: usize, threshold: i64) -> Plan {
    let mut p = Plan::new();
    let a = p.add(scan("a", rows), vec![]);
    let sel =
        p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
    let g = p.add(scan("g", rows), vec![]);
    let b = p.add(scan("b", rows), vec![]);
    let fetch_g = p.add(OperatorSpec::Fetch, vec![sel, g]);
    let fetch_b = p.add(OperatorSpec::Fetch, vec![sel, b]);
    let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![fetch_g, fetch_b]);
    let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
    p.set_root(merge);
    p
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Repeated mutation never changes the query result and never produces a
    /// structurally invalid plan (scalar aggregate query).
    #[test]
    fn mutations_preserve_scalar_results(seed in 0u64..1000,
                                         threshold in 50i64..950,
                                         steps in 1usize..8) {
        let rows = 6_000;
        let cat = catalog(rows, seed);
        let engine = Engine::with_workers(3);
        let config = AdaptiveConfig::for_cores(3).with_min_partition_rows(64);
        let mut plan = scalar_query(rows, threshold);
        let baseline = engine.execute(&plan, &cat).unwrap();
        let expected = baseline.output.clone();
        let mut profile = baseline.profile;
        for _ in 0..steps {
            match mutate_most_expensive(&mut plan, &profile, &config).unwrap() {
                Some(_) => {
                    plan.validate().unwrap();
                    let exec = engine.execute(&plan, &cat).unwrap();
                    prop_assert_eq!(&exec.output, &expected);
                    profile = exec.profile;
                }
                None => break,
            }
        }
    }

    /// Same invariant for the grouped-aggregation (advanced mutation) path.
    #[test]
    fn mutations_preserve_grouped_results(seed in 0u64..1000,
                                          threshold in 100i64..900,
                                          steps in 1usize..6) {
        let rows = 5_000;
        let cat = catalog(rows, seed);
        let engine = Engine::with_workers(3);
        let config = AdaptiveConfig::for_cores(3).with_min_partition_rows(64);
        let mut plan = grouped_query(rows, threshold);
        let baseline = engine.execute(&plan, &cat).unwrap();
        let expected = baseline.output.clone();
        let mut profile = baseline.profile;
        for _ in 0..steps {
            match mutate_most_expensive(&mut plan, &profile, &config).unwrap() {
                Some(_) => {
                    plan.validate().unwrap();
                    let exec = engine.execute(&plan, &cat).unwrap();
                    prop_assert_eq!(&exec.output, &expected);
                    profile = exec.profile;
                }
                None => break,
            }
        }
    }

    /// The convergence algorithm terminates for an arbitrary (bounded)
    /// sequence of execution times: adversarial noise can stretch the search
    /// up to the hard run cap, but never beyond it, and the reported GME /
    /// best times never exceed the serial time (outliers are filtered).
    #[test]
    fn convergence_always_terminates(cores in 2usize..16,
                                     serial in 10_000u64..1_000_000,
                                     times in prop::collection::vec(1_000u64..2_000_000, 1..300)) {
        let cfg = AdaptiveConfig::for_cores(cores);
        let cap = cfg.max_runs;
        let mut state = ConvergenceState::new(cfg);
        state.record_serial(serial);
        let mut runs = 0usize;
        let mut i = 0usize;
        while state.should_continue() {
            let t = times[i % times.len()];
            state.record_run(t);
            runs += 1;
            i += 1;
            prop_assert!(runs <= cap, "no convergence after {runs} runs (cap {cap})");
        }
        // The recorded GME never exceeds the serial time (outliers are filtered).
        if let Some(gme) = state.gme_us() {
            prop_assert!(gme <= serial);
        }
        prop_assert!(state.best_us().unwrap() <= serial);
    }

    /// On a well-behaved system — improvements followed by a stable plateau —
    /// the algorithm converges within a small multiple of the paper's
    /// *approximate* upper bound (`Number_Of_Cores + 1 + Extra_Runs ·
    /// Number_Of_Cores`, §3.3.4). The paper itself notes the bound is
    /// approximate and that extra credit accumulated after the threshold run
    /// prolongs the search (the Fig. 18D discussion of a "too low"
    /// Leaking_Debit), so the assertion allows that slack.
    #[test]
    fn convergence_within_paper_bound_on_stable_curves(cores in 2usize..16,
                                                       serial in 50_000u64..1_000_000,
                                                       improving in 2usize..12,
                                                       jitter in 0u64..200) {
        let cfg = AdaptiveConfig::for_cores(cores);
        let upper = cfg.upper_bound_runs();
        let mut state = ConvergenceState::new(cfg.clone());
        state.record_serial(serial);
        // Geometric improvement for `improving` runs, then a flat plateau.
        // Improvements flatten out once the degree of parallelism reaches the
        // core count (the paper's premise of near-linear speedup up to the
        // number of physical cores), so the improving phase is capped there —
        // longer improving phases legitimately extend the search beyond the
        // approximate bound because the leaking debit is sized too early.
        let improving = improving.min(cores);
        let mut exec = serial;
        let mut runs = 0usize;
        while state.should_continue() {
            if runs < improving {
                exec = (exec as f64 * 0.6) as u64 + 1;
            }
            let t = exec + (runs as u64 * 37 + jitter) % (exec / 50 + 1);
            state.record_run(t);
            runs += 1;
            prop_assert!(runs <= 2 * upper + 2 * cores + 16,
                "stable curve did not converge within the expected bound: {runs} > {}",
                2 * upper + 2 * cores + 16);
        }
        prop_assert!(runs >= 1);
    }
}
