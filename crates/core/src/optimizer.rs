//! The adaptive optimizer: the run loop tying mutation, execution feedback
//! and convergence together (paper Fig. 2 workflow).
//!
//! Starting from an optimal *serial* plan, every invocation executes the
//! current plan, profiles it, and derives the next plan by parallelizing the
//! most expensive operator. The convergence algorithm decides when to stop;
//! the plan-history policy picks the fastest plan as the final one.

use std::sync::Arc;

use apq_columnar::Catalog;
use apq_engine::{Engine, Plan, QueryExecution};

use crate::config::AdaptiveConfig;
use crate::convergence::ConvergenceState;
use crate::error::{CoreError, Result};
use crate::history::PlanHistory;
use crate::mutation::{mutate_most_expensive, MutationKind};
use crate::report::{AdaptiveReport, AdaptiveRunRecord};

/// Drives adaptive parallelization of one query.
#[derive(Debug, Clone)]
pub struct AdaptiveOptimizer {
    config: AdaptiveConfig,
}

impl AdaptiveOptimizer {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: AdaptiveConfig) -> Self {
        AdaptiveOptimizer { config }
    }

    /// Optimizer configured for the engine's worker count.
    pub fn for_engine(engine: &Engine) -> Self {
        AdaptiveOptimizer::new(AdaptiveConfig::for_cores(engine.n_workers()))
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.config
    }

    /// Runs the full adaptive parallelization loop for `serial_plan`.
    ///
    /// Every run executes the current plan on `engine`; the returned report
    /// contains the per-run records, convergence statistics and the fastest
    /// plan found.
    pub fn optimize(
        &self,
        engine: &Engine,
        catalog: &Arc<Catalog>,
        serial_plan: &Plan,
    ) -> Result<AdaptiveReport> {
        self.optimize_with_observer(engine, catalog, serial_plan, |_| {})
    }

    /// Like [`AdaptiveOptimizer::optimize`], invoking `observer` after every
    /// run (used by experiments that plot live convergence curves).
    pub fn optimize_with_observer<F>(
        &self,
        engine: &Engine,
        catalog: &Arc<Catalog>,
        serial_plan: &Plan,
        mut observer: F,
    ) -> Result<AdaptiveReport>
    where
        F: FnMut(&AdaptiveRunRecord),
    {
        self.config.validate()?;
        serial_plan.validate().map_err(CoreError::from)?;

        let mut plan = serial_plan.clone();
        let mut convergence = ConvergenceState::new(self.config.clone());
        let mut history = PlanHistory::new();
        let mut records: Vec<AdaptiveRunRecord> = Vec::new();

        // Run 0: the serial plan.
        let serial_exec = engine.execute(&plan, catalog).map_err(CoreError::from)?;
        let serial_output = serial_exec.output.clone();
        let serial_us = serial_exec.profile.wall_us().max(1);
        convergence.record_serial(serial_us);
        history.record(0, &plan, serial_us);
        let record = run_record(0, &plan, &serial_exec, None, false, convergence.balance());
        observer(&record);
        records.push(record);

        let mut last_profile = serial_exec.profile;
        let mut converged_by_balance = true;

        while convergence.should_continue() {
            // Morph the plan by parallelizing the most expensive operator of
            // the previous run.
            let mutation = mutate_most_expensive(&mut plan, &last_profile, &self.config)?;
            let Some(mutation) = mutation else {
                // Nothing left to parallelize: the plan reached its maximal
                // useful degree of parallelism.
                converged_by_balance = false;
                break;
            };

            let exec = engine.execute(&plan, catalog).map_err(CoreError::from)?;
            let run = convergence.runs() + 1;
            if self.config.verify_results && exec.output != serial_output {
                return Err(CoreError::ResultMismatch { run });
            }
            let exec_us = exec.profile.wall_us().max(1);
            // Feed the profiler's queue-wait share into the balance: runs
            // slowed down by scheduler interference (concurrent queries on
            // the shared pool) are debited less than runs whose operators
            // were genuinely slow. With no concurrent peers, all queue wait
            // is self-inflicted (the mutation created more ready tasks than
            // workers) and must keep its full debit weight — discounting it
            // would reward exactly the over-partitioned plans the algorithm
            // is trying to abandon.
            let wait_share = if exec.profile.concurrent_peers > 0 {
                exec.profile.queue_wait_share()
            } else {
                0.0
            };
            let obs = convergence.record_run_contended(exec_us, wait_share);
            history.record(obs.run, &plan, exec_us);
            let record =
                run_record(obs.run, &plan, &exec, Some(mutation.kind), obs.is_outlier, obs.balance);
            observer(&record);
            records.push(record);
            last_profile = exec.profile;
        }

        let best = history.best().expect("at least the serial run is recorded");
        Ok(AdaptiveReport {
            serial_us,
            best_run: best.run,
            best_us: best.exec_us,
            gme_run: convergence.gme_run(),
            gme_us: convergence.gme_us().unwrap_or(serial_us),
            total_runs: convergence.runs(),
            converged_by_balance,
            best_plan: best.plan.clone(),
            final_output: serial_output,
            records,
        })
    }
}

fn run_record(
    run: usize,
    plan: &Plan,
    exec: &QueryExecution,
    mutation: Option<MutationKind>,
    is_outlier: bool,
    balance: f64,
) -> AdaptiveRunRecord {
    AdaptiveRunRecord {
        run,
        exec_us: exec.profile.wall_us().max(1),
        mutation,
        plan_nodes: plan.node_count(),
        select_ops: plan.count_of("select"),
        join_ops: plan.count_of("join"),
        multi_core_utilization: exec.profile.multi_core_utilization(),
        parallelism_usage: exec.profile.parallelism_usage(),
        queue_wait_us: exec.profile.total_queue_wait_us(),
        is_outlier,
        balance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::{ScalarValue, TableBuilder};
    use apq_engine::plan::OperatorSpec;
    use apq_engine::QueryOutput;
    use apq_operators::{AggFunc, BinaryOp, CmpOp, Predicate};

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        let values: Vec<i64> = (0..rows as i64).map(|v| (v * 7919) % 1000).collect();
        let payload: Vec<i64> = (0..rows as i64).map(|v| v % 97).collect();
        c.register(
            TableBuilder::new("t")
                .i64_column("a", values)
                .i64_column("b", payload)
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn scan(column: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: column.into(),
            range: RowRange::new(0, rows),
        }
    }

    /// Serial plan: sum(b * 2) over rows where a < 300.
    fn serial_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 300i64) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let calc = p.add(
            OperatorSpec::Calc {
                op: BinaryOp::Mul,
                left_scalar: None,
                right_scalar: Some(ScalarValue::I64(2)),
            },
            vec![fetch],
        );
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![calc]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    fn expected_sum(catalog: &Catalog, rows: usize) -> i64 {
        let t = catalog.table("t").unwrap();
        let a = t.column("a").unwrap().i64_values().unwrap();
        let b = t.column("b").unwrap().i64_values().unwrap();
        (0..rows).filter(|&i| a[i] < 300).map(|i| b[i] * 2).sum()
    }

    #[test]
    fn adaptive_optimization_preserves_results_and_increases_parallelism() {
        let rows = 40_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let config = AdaptiveConfig::for_cores(4)
            .with_min_partition_rows(256)
            .with_max_runs(12)
            .with_verification();
        let optimizer = AdaptiveOptimizer::new(config);
        let plan = serial_plan(rows);
        let report = optimizer.optimize(&engine, &cat, &plan).unwrap();

        assert_eq!(
            report.final_output,
            QueryOutput::Scalar(ScalarValue::I64(expected_sum(&cat, rows)))
        );
        assert!(report.total_runs >= 1, "at least one adaptive run must happen");
        assert_eq!(report.records.len(), report.total_runs + 1);
        assert_eq!(report.records[0].run, 0);
        assert!(report.records[0].mutation.is_none());
        assert!(report.records[1].mutation.is_some());
        // The plan got more parallel over the runs.
        let last = report.records.last().unwrap();
        assert!(last.plan_nodes > report.records[0].plan_nodes);
        assert!(last.select_ops >= report.records[0].select_ops);
        // The best plan is at least as fast as the serial plan.
        assert!(report.best_us <= report.serial_us);
        assert!(report.speedup() >= 1.0);
        report.best_plan.validate().unwrap();
        // The best plan re-executes to the same answer.
        let again = engine.execute(&report.best_plan, &cat).unwrap();
        assert_eq!(again.output, report.final_output);
    }

    #[test]
    fn observer_sees_every_run() {
        let rows = 20_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(2);
        let config = AdaptiveConfig::for_cores(2).with_min_partition_rows(256).with_max_runs(6);
        let optimizer = AdaptiveOptimizer::new(config);
        let mut seen = Vec::new();
        let report = optimizer
            .optimize_with_observer(&engine, &cat, &serial_plan(rows), |r| seen.push(r.run))
            .unwrap();
        assert_eq!(seen.len(), report.records.len());
        assert_eq!(seen[0], 0);
    }

    #[test]
    fn stops_when_no_mutation_is_possible() {
        let rows = 4_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(2);
        // Minimum partition size so large that nothing can ever be split.
        let config =
            AdaptiveConfig::for_cores(2).with_min_partition_rows(1_000_000).with_max_runs(10);
        let optimizer = AdaptiveOptimizer::new(config);
        let report = optimizer.optimize(&engine, &cat, &serial_plan(rows)).unwrap();
        assert_eq!(report.total_runs, 0);
        assert!(!report.converged_by_balance);
        assert_eq!(report.best_run, 0);
        assert_eq!(report.best_plan.node_count(), serial_plan(rows).node_count());
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let cat = catalog(100);
        let engine = Engine::with_workers(2);
        let mut bad_config = AdaptiveConfig::for_cores(2);
        bad_config.extra_runs = 0;
        let optimizer = AdaptiveOptimizer::new(bad_config);
        assert!(matches!(
            optimizer.optimize(&engine, &cat, &serial_plan(100)),
            Err(CoreError::InvalidConfig(_))
        ));

        let optimizer = AdaptiveOptimizer::for_engine(&engine);
        assert_eq!(optimizer.config().n_cores, 2);
        let empty = Plan::new();
        assert!(optimizer.optimize(&engine, &cat, &empty).is_err());
    }

    #[test]
    fn respects_the_hard_run_cap() {
        let rows = 60_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let config = AdaptiveConfig::for_cores(4).with_min_partition_rows(16).with_max_runs(3);
        let optimizer = AdaptiveOptimizer::new(config);
        let report = optimizer.optimize(&engine, &cat, &serial_plan(rows)).unwrap();
        assert!(report.total_runs <= 3);
    }
}
