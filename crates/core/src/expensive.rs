//! Expensive-operator identification.
//!
//! "An operator is considered expensive if its execution time is the highest
//! amongst all operators" (paper §2.1). The adaptive parallelizer does not
//! blindly take the single most expensive operator though: the chosen
//! operator must also be *mutable* (parallelizable and still splittable, or a
//! removable exchange union), so the candidates are ranked by execution time
//! and the first applicable one wins.

use apq_engine::plan::{NodeId, OperatorSpec, Plan};
use apq_engine::QueryProfile;

use crate::config::AdaptiveConfig;
use crate::mutation::split::can_split;

/// What kind of mutation a candidate operator calls for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TargetAction {
    /// Basic / advanced mutation: clone the operator over two partitions.
    CloneOverPartitions,
    /// Medium mutation: remove the exchange union by propagating its inputs.
    PropagateUnion,
}

/// One mutation candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// The plan node to mutate.
    pub node: NodeId,
    /// Its execution time in the profiled run (microseconds).
    pub duration_us: u64,
    /// Which mutation applies.
    pub action: TargetAction,
}

/// Ranks the mutable operators of the profiled run by execution time
/// (descending). The head of the list is "the most expensive operator".
pub fn ranked_candidates(
    plan: &Plan,
    profile: &QueryProfile,
    config: &AdaptiveConfig,
) -> Vec<Candidate> {
    let mut ops: Vec<_> = profile.operators.iter().collect();
    ops.sort_by(|a, b| b.duration_us.cmp(&a.duration_us).then(a.node.cmp(&b.node)));

    let mut out = Vec::new();
    for op in ops {
        if !plan.contains(op.node) {
            continue;
        }
        let spec = &plan.node(op.node).expect("live node").spec;
        match spec {
            OperatorSpec::ExchangeUnion => {
                let n_inputs = plan.node(op.node).expect("live node").inputs.len();
                if n_inputs <= config.union_input_threshold {
                    out.push(Candidate {
                        node: op.node,
                        duration_us: op.duration_us,
                        action: TargetAction::PropagateUnion,
                    });
                }
            }
            spec if spec.is_parallelizable()
                && can_split(plan, profile, op.node, config.min_partition_rows) =>
            {
                out.push(Candidate {
                    node: op.node,
                    duration_us: op.duration_us,
                    action: TargetAction::CloneOverPartitions,
                });
            }
            _ => {}
        }
    }
    out
}

/// The single most expensive mutable operator, if any.
pub fn most_expensive(
    plan: &Plan,
    profile: &QueryProfile,
    config: &AdaptiveConfig,
) -> Option<Candidate> {
    ranked_candidates(plan, profile, config).into_iter().next()
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_engine::profiler::OperatorProfile;
    use apq_operators::{AggFunc, CmpOp, Predicate};
    use std::time::Duration;

    fn scan(rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, rows),
        }
    }

    fn profile(plan: &Plan, costs: &[(NodeId, u64, usize)]) -> QueryProfile {
        QueryProfile {
            wall_time: Duration::from_micros(1000),
            n_workers: 4,
            concurrent_peers: 0,
            pipelines: vec![],
            dop_timeline: vec![],
            operators: costs
                .iter()
                .map(|&(node, duration_us, rows_out)| OperatorProfile {
                    node,
                    name: plan.node(node).map(|n| n.spec.name()).unwrap_or("dead"),
                    start_us: 0,
                    duration_us,
                    queue_wait_us: 0,
                    worker: 0,
                    rows_out,
                    bytes_out: rows_out * 8,
                })
                .collect(),
        }
    }

    #[test]
    fn ranks_by_execution_time_and_filters_unmutable_operators() {
        let mut p = Plan::new();
        let a = p.add(scan(100_000), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        let b = p.add(scan(100_000), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        let cfg = AdaptiveConfig::for_cores(4);
        // The scan is the most expensive but not parallelizable; the finalize
        // is not parallelizable either; select > fetch among the rest.
        let prof = profile(
            &p,
            &[
                (a, 5_000, 100_000),
                (sel, 3_000, 40_000),
                (fetch, 2_000, 40_000),
                (agg, 100, 1),
                (fin, 5_000, 1),
            ],
        );
        let ranked = ranked_candidates(&p, &prof, &cfg);
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked[0].node, sel);
        assert_eq!(ranked[0].action, TargetAction::CloneOverPartitions);
        assert_eq!(ranked[1].node, fetch);
        assert_eq!(ranked[2].node, agg);
        assert_eq!(most_expensive(&p, &prof, &cfg).unwrap().node, sel);
    }

    #[test]
    fn small_partitions_drop_out_of_the_ranking() {
        let mut p = Plan::new();
        let a = p.add(scan(100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        p.set_root(sel);
        let prof = profile(&p, &[(sel, 1_000, 50)]);
        let cfg = AdaptiveConfig::for_cores(4); // min_partition_rows = 1024 > 100/2
        assert!(ranked_candidates(&p, &prof, &cfg).is_empty());
        assert!(most_expensive(&p, &prof, &cfg).is_none());
        let cfg_small = cfg.with_min_partition_rows(10);
        assert_eq!(ranked_candidates(&p, &prof, &cfg_small).len(), 1);
    }

    #[test]
    fn unions_are_medium_candidates_unless_too_wide() {
        let mut p = Plan::new();
        let a = p.add(scan(10_000), vec![]);
        let pred = Predicate::cmp(CmpOp::Lt, 5i64);
        let selects: Vec<NodeId> = (0..4)
            .map(|_| p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a]))
            .collect();
        let union = p.add(OperatorSpec::ExchangeUnion, selects);
        p.set_root(union);
        let prof = profile(&p, &[(union, 9_000, 100), (0, 100, 10_000)]);
        let cfg = AdaptiveConfig::for_cores(4);
        let ranked = ranked_candidates(&p, &prof, &cfg);
        assert_eq!(ranked[0].node, union);
        assert_eq!(ranked[0].action, TargetAction::PropagateUnion);

        let mut narrow = cfg.clone();
        narrow.union_input_threshold = 3;
        assert!(ranked_candidates(&p, &prof, &narrow).iter().all(|c| c.node != union));
    }

    #[test]
    fn dead_nodes_are_ignored() {
        let mut p = Plan::new();
        let a = p.add(scan(10_000), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        p.set_root(sel);
        let prof = profile(&p, &[(sel, 1_000, 5_000), (77, 9_999, 5_000)]);
        let cfg = AdaptiveConfig::for_cores(4).with_min_partition_rows(10);
        let ranked = ranked_candidates(&p, &prof, &cfg);
        assert_eq!(ranked.len(), 1);
        assert_eq!(ranked[0].node, sel);
    }
}
