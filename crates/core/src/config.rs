//! Configuration of the adaptive parallelizer.

use crate::error::{CoreError, Result};

/// Tunables of adaptive parallelization and its convergence algorithm.
///
/// Field names follow the paper's formulas (§3): `n_cores` is
/// `Number_Of_Cores`, `extra_runs` is `Extra_Runs`, `gme_threshold` is the
/// GME replacement threshold, and `union_input_threshold` is the
/// plan-explosion guard of §2.3 ("The threshold in the current implementation
/// is 15 parameters").
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// `Number_Of_Cores`: drives credit/debit accumulation, the leaking-debit
    /// threshold run, and the convergence bounds. Usually set to the engine's
    /// worker count.
    pub n_cores: usize,
    /// GME replacement threshold (fraction of the serial execution time by
    /// which a run must beat the current GME's improvement). Paper example: 5%.
    pub gme_threshold: f64,
    /// `Extra_Runs`: multiplier on `n_cores` that bounds the remaining runs
    /// used to compute the leaking debit. Paper: 8.
    pub extra_runs: usize,
    /// Maximum number of exchange-union inputs before the medium mutation is
    /// suppressed (plan-explosion guard). Paper: 15.
    pub union_input_threshold: usize,
    /// Partitions smaller than this are never split further; keeps the
    /// mutation from creating degenerate single-row partitions.
    pub min_partition_rows: usize,
    /// Hard safety cap on the number of adaptive runs (the convergence
    /// algorithm normally terminates long before this).
    pub max_runs: usize,
    /// A run whose execution time exceeds `outlier_factor × serial time` is
    /// treated as a noise peak (§3.3.3) and ignored by the credit/debit
    /// bookkeeping.
    pub outlier_factor: f64,
    /// How strongly the profiler's queue-wait share discounts a worsening
    /// run's debit (`0.0` = ignore contention, the paper's exact algorithm;
    /// `1.0` = a run that was pure queue wait contributes no debit at all).
    /// See `ConvergenceState::record_run_contended`.
    pub contention_discount: f64,
    /// Re-execute the result comparison against the serial plan after every
    /// run (used by tests; disabled in benchmarks).
    pub verify_results: bool,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            n_cores: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            gme_threshold: 0.05,
            extra_runs: 8,
            union_input_threshold: 15,
            min_partition_rows: 1024,
            max_runs: 256,
            outlier_factor: 1.0,
            contention_discount: 0.5,
            verify_results: false,
        }
    }
}

impl AdaptiveConfig {
    /// Configuration for a machine (or engine) with `n_cores` workers.
    pub fn for_cores(n_cores: usize) -> Self {
        AdaptiveConfig { n_cores: n_cores.max(1), ..AdaptiveConfig::default() }
    }

    /// Enables per-run result verification against the serial plan.
    pub fn with_verification(mut self) -> Self {
        self.verify_results = true;
        self
    }

    /// Sets the minimum partition size (rows).
    pub fn with_min_partition_rows(mut self, rows: usize) -> Self {
        self.min_partition_rows = rows.max(1);
        self
    }

    /// Sets the hard cap on adaptive runs.
    pub fn with_max_runs(mut self, runs: usize) -> Self {
        self.max_runs = runs.max(1);
        self
    }

    /// Sets `Extra_Runs`.
    pub fn with_extra_runs(mut self, extra_runs: usize) -> Self {
        self.extra_runs = extra_runs.max(1);
        self
    }

    /// Sets the contention discount (clamped to `[0, 1]`).
    pub fn with_contention_discount(mut self, discount: f64) -> Self {
        self.contention_discount = discount.clamp(0.0, 1.0);
        self
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.n_cores == 0 {
            return Err(CoreError::InvalidConfig("n_cores must be at least 1".into()));
        }
        if !(0.0..=1.0).contains(&self.gme_threshold) {
            return Err(CoreError::InvalidConfig(format!(
                "gme_threshold {} must lie in [0, 1]",
                self.gme_threshold
            )));
        }
        if self.extra_runs == 0 {
            return Err(CoreError::InvalidConfig("extra_runs must be at least 1".into()));
        }
        if self.union_input_threshold < 2 {
            return Err(CoreError::InvalidConfig(
                "union_input_threshold must be at least 2".into(),
            ));
        }
        if self.max_runs == 0 {
            return Err(CoreError::InvalidConfig("max_runs must be at least 1".into()));
        }
        if self.outlier_factor < 1.0 {
            return Err(CoreError::InvalidConfig(
                "outlier_factor below 1.0 would flag improving runs as outliers".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.contention_discount) {
            return Err(CoreError::InvalidConfig(format!(
                "contention_discount {} must lie in [0, 1]",
                self.contention_discount
            )));
        }
        Ok(())
    }

    /// Lower bound on the convergence runs (`Number_Of_Cores + 1`, paper §3.3.4).
    pub fn lower_bound_runs(&self) -> usize {
        self.n_cores + 1
    }

    /// Approximate upper bound on the convergence runs
    /// (`Number_Of_Cores + 1 + Remaining_Runs`, paper §3.3.4).
    pub fn upper_bound_runs(&self) -> usize {
        self.n_cores + 1 + self.extra_runs * self.n_cores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_follow_the_paper() {
        let c = AdaptiveConfig::default();
        assert_eq!(c.extra_runs, 8);
        assert_eq!(c.union_input_threshold, 15);
        assert!((c.gme_threshold - 0.05).abs() < 1e-12);
        assert!(c.n_cores >= 1);
        c.validate().unwrap();
    }

    #[test]
    fn builders() {
        let c = AdaptiveConfig::for_cores(8)
            .with_verification()
            .with_min_partition_rows(10)
            .with_max_runs(50)
            .with_extra_runs(4);
        assert_eq!(c.n_cores, 8);
        assert!(c.verify_results);
        assert_eq!(c.min_partition_rows, 10);
        assert_eq!(c.max_runs, 50);
        assert_eq!(c.extra_runs, 4);
        assert_eq!(c.lower_bound_runs(), 9);
        assert_eq!(c.upper_bound_runs(), 8 + 1 + 4 * 8);
        c.validate().unwrap();
    }

    #[test]
    fn validation_rejects_nonsense() {
        let mut c = AdaptiveConfig::for_cores(4);
        c.n_cores = 0;
        assert!(c.validate().is_err());
        let mut c = AdaptiveConfig::for_cores(4);
        c.gme_threshold = 1.5;
        assert!(c.validate().is_err());
        let mut c = AdaptiveConfig::for_cores(4);
        c.extra_runs = 0;
        assert!(c.validate().is_err());
        let mut c = AdaptiveConfig::for_cores(4);
        c.union_input_threshold = 1;
        assert!(c.validate().is_err());
        let mut c = AdaptiveConfig::for_cores(4);
        c.max_runs = 0;
        assert!(c.validate().is_err());
        let mut c = AdaptiveConfig::for_cores(4);
        c.outlier_factor = 0.5;
        assert!(c.validate().is_err());
        let mut c = AdaptiveConfig::for_cores(4);
        c.contention_discount = 1.5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn contention_discount_builder_clamps() {
        assert_eq!(
            AdaptiveConfig::for_cores(2).with_contention_discount(2.0).contention_discount,
            1.0
        );
        assert_eq!(
            AdaptiveConfig::for_cores(2).with_contention_discount(-1.0).contention_discount,
            0.0
        );
        assert!((AdaptiveConfig::default().contention_discount - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_core_builder_clamps() {
        assert_eq!(AdaptiveConfig::for_cores(0).n_cores, 1);
        assert_eq!(AdaptiveConfig::default().with_min_partition_rows(0).min_partition_rows, 1);
    }
}
