//! Reporting structures produced by the adaptive optimizer.

use std::fmt::Write as _;

use apq_engine::{Plan, QueryOutput};

use crate::mutation::MutationKind;

/// Everything recorded about one adaptive run.
#[derive(Debug, Clone)]
pub struct AdaptiveRunRecord {
    /// Run index (0 = serial plan).
    pub run: usize,
    /// Wall-clock execution time of the run, microseconds.
    pub exec_us: u64,
    /// The mutation that produced this run's plan (none for the serial run).
    pub mutation: Option<MutationKind>,
    /// Number of live operators in the executed plan.
    pub plan_nodes: usize,
    /// Number of select-family operators in the executed plan.
    pub select_ops: usize,
    /// Number of join-family operators in the executed plan.
    pub join_ops: usize,
    /// Multi-core utilization of the run (fraction of workers used).
    pub multi_core_utilization: f64,
    /// Parallelism usage of the run (busy time / (wall × workers)).
    pub parallelism_usage: f64,
    /// Total time the run's operators spent queued before execution,
    /// microseconds (scheduler-interference signal).
    pub queue_wait_us: u64,
    /// True when the convergence algorithm classified the run as a noise peak.
    pub is_outlier: bool,
    /// Convergence balance (credit − debit) after the run.
    pub balance: f64,
}

/// Result of one adaptive optimization (a full convergence episode).
#[derive(Debug, Clone)]
pub struct AdaptiveReport {
    /// Per-run records, starting with the serial run.
    pub records: Vec<AdaptiveRunRecord>,
    /// Serial (run 0) execution time, microseconds.
    pub serial_us: u64,
    /// Run index with the minimal observed execution time.
    pub best_run: usize,
    /// Minimal observed execution time, microseconds.
    pub best_us: u64,
    /// Run index of the global minimum execution per the GME rule.
    pub gme_run: usize,
    /// GME execution time, microseconds.
    pub gme_us: u64,
    /// Total number of adaptive runs performed (excluding the serial run).
    pub total_runs: usize,
    /// True when the run loop stopped because the credit/debit balance was
    /// exhausted (as opposed to running out of mutations or hitting the cap).
    pub converged_by_balance: bool,
    /// The fastest plan found (the plan-history policy's choice).
    pub best_plan: Plan,
    /// Query result of the best plan (identical to the serial result).
    pub final_output: QueryOutput,
}

impl AdaptiveReport {
    /// Speedup of the best adaptive plan over the serial plan.
    pub fn speedup(&self) -> f64 {
        self.serial_us as f64 / self.best_us.max(1) as f64
    }

    /// `(run, milliseconds)` series of all runs — the convergence curves of
    /// paper Figs. 11, 14 and 15.
    pub fn convergence_curve(&self) -> Vec<(usize, f64)> {
        self.records.iter().map(|r| (r.run, r.exec_us as f64 / 1000.0)).collect()
    }

    /// Execution time of a given run, if it happened.
    pub fn exec_us_at(&self, run: usize) -> Option<u64> {
        self.records.iter().find(|r| r.run == run).map(|r| r.exec_us)
    }

    /// Number of operators of the best plan, per family (`select`, `join`, ...).
    pub fn best_plan_operator_count(&self, family: &str) -> usize {
        self.best_plan.count_of(family)
    }

    /// Multi-line human-readable summary.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "adaptive parallelization: {} runs, serial {:.3} ms, best {:.3} ms (run {}), GME {:.3} ms (run {}), speedup {:.2}x{}",
            self.total_runs,
            self.serial_us as f64 / 1000.0,
            self.best_us as f64 / 1000.0,
            self.best_run,
            self.gme_us as f64 / 1000.0,
            self.gme_run,
            self.speedup(),
            if self.converged_by_balance { "" } else { " (stopped: no further mutation)" },
        );
        let _ = writeln!(
            out,
            "best plan: {} operators ({} select, {} join, {} union)",
            self.best_plan.node_count(),
            self.best_plan.count_of("select"),
            self.best_plan.count_of("join"),
            self.best_plan.count_of("union"),
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::ScalarValue;
    use apq_engine::plan::OperatorSpec;

    fn tiny_plan() -> Plan {
        let mut p = Plan::new();
        let s = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(0, 10),
            },
            vec![],
        );
        p.set_root(s);
        p
    }

    fn record(run: usize, exec_us: u64) -> AdaptiveRunRecord {
        AdaptiveRunRecord {
            run,
            exec_us,
            mutation: if run == 0 { None } else { Some(MutationKind::Basic) },
            plan_nodes: run + 1,
            select_ops: run,
            join_ops: 0,
            multi_core_utilization: 0.5,
            parallelism_usage: 0.3,
            queue_wait_us: 40,
            is_outlier: false,
            balance: 1.0,
        }
    }

    fn report() -> AdaptiveReport {
        AdaptiveReport {
            records: vec![record(0, 10_000), record(1, 6_000), record(2, 2_500)],
            serial_us: 10_000,
            best_run: 2,
            best_us: 2_500,
            gme_run: 2,
            gme_us: 2_500,
            total_runs: 2,
            converged_by_balance: true,
            best_plan: tiny_plan(),
            final_output: QueryOutput::Scalar(ScalarValue::I64(1)),
        }
    }

    #[test]
    fn speedup_and_curve() {
        let r = report();
        assert!((r.speedup() - 4.0).abs() < 1e-9);
        let curve = r.convergence_curve();
        assert_eq!(curve.len(), 3);
        assert_eq!(curve[0], (0, 10.0));
        assert_eq!(curve[2], (2, 2.5));
        assert_eq!(r.exec_us_at(1), Some(6_000));
        assert_eq!(r.exec_us_at(9), None);
        assert_eq!(r.best_plan_operator_count("scan"), 1);
        assert_eq!(r.best_plan_operator_count("join"), 0);
    }

    #[test]
    fn summary_is_readable() {
        let s = report().summary();
        assert!(s.contains("speedup 4.00x"));
        assert!(s.contains("GME"));
        assert!(s.contains("best plan"));
        let mut r = report();
        r.converged_by_balance = false;
        assert!(r.summary().contains("no further mutation"));
    }
}
