//! Plan mutation: morphing a plan into a faster one by parallelizing its
//! most expensive operator (paper §2.1).
//!
//! Three mutation schemes cover all cases:
//!
//! * **Basic** ([`basic::clone_over_partitions`]) — the expensive operator is
//!   a filtering / pipeline operator; it is replaced by two clones over the
//!   split partition and an exchange union.
//! * **Advanced** (same entry point) — the expensive operator does not filter
//!   (grouped or scalar aggregation); the clones feed a *merging* combiner.
//! * **Medium** ([`medium::propagate_union`]) — the expensive operator is an
//!   exchange union; its inputs are propagated onto its consumer, which is
//!   cloned per input.
//!
//! [`mutate_most_expensive`] is the driver used by the optimizer: it walks
//! the operators of the previous run in descending execution-time order
//! (the "most expensive operator" heuristic) and applies the first mutation
//! that is structurally possible.

pub mod basic;
pub mod medium;
pub mod split;

use apq_engine::plan::{NodeId, Plan};
use apq_engine::QueryProfile;

use crate::config::AdaptiveConfig;
use crate::error::Result;
use crate::expensive::{ranked_candidates, TargetAction};

pub use basic::clone_over_partitions;
pub use medium::propagate_union;

/// Which mutation scheme was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Cloning of a filtering operator, combined by an exchange union.
    Basic,
    /// Removal of an expensive exchange union by propagating its inputs.
    Medium,
    /// Cloning of a non-filtering operator (aggregation), combined by a merge.
    Advanced,
}

impl std::fmt::Display for MutationKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            MutationKind::Basic => "basic",
            MutationKind::Medium => "medium",
            MutationKind::Advanced => "advanced",
        };
        f.write_str(s)
    }
}

/// Description of one applied mutation.
#[derive(Debug, Clone, PartialEq)]
pub struct MutationOutcome {
    /// Which scheme was applied.
    pub kind: MutationKind,
    /// The node that was parallelized (it no longer exists afterwards).
    pub target: NodeId,
    /// The cloned operator nodes introduced by the mutation.
    pub clones: Vec<NodeId>,
    /// The node combining the clones (an existing or new union / merger).
    pub combiner: NodeId,
}

/// Mutates `plan` by parallelizing the most expensive operator observed in
/// `profile`. Returns `Ok(None)` when no operator can be parallelized any
/// further — the plan has reached its maximal useful degree of parallelism.
pub fn mutate_most_expensive(
    plan: &mut Plan,
    profile: &QueryProfile,
    config: &AdaptiveConfig,
) -> Result<Option<MutationOutcome>> {
    for candidate in ranked_candidates(plan, profile, config) {
        let attempt = match candidate.action {
            TargetAction::CloneOverPartitions => {
                // A failure here is a structural impossibility: try the next
                // most expensive candidate.
                clone_over_partitions(plan, profile, candidate.node).ok()
            }
            TargetAction::PropagateUnion => propagate_union(plan, profile, candidate.node, config)?,
        };
        if let Some(outcome) = attempt {
            return Ok(Some(outcome));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_engine::plan::OperatorSpec;
    use apq_engine::profiler::OperatorProfile;
    use apq_operators::{AggFunc, CmpOp, Predicate};
    use std::time::Duration;

    fn scan(column: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: column.into(),
            range: RowRange::new(0, rows),
        }
    }

    fn plan_filter_sum(rows: usize) -> (Plan, NodeId, NodeId) {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        (p, sel, fetch)
    }

    fn profile(plan: &Plan, costs: &[(NodeId, u64, usize)]) -> QueryProfile {
        QueryProfile {
            wall_time: Duration::from_micros(1000),
            n_workers: 4,
            concurrent_peers: 0,
            pipelines: vec![],
            dop_timeline: vec![],
            operators: costs
                .iter()
                .map(|&(node, duration_us, rows_out)| OperatorProfile {
                    node,
                    name: plan.node(node).unwrap().spec.name(),
                    start_us: 0,
                    duration_us,
                    queue_wait_us: 0,
                    worker: 0,
                    rows_out,
                    bytes_out: rows_out * 8,
                })
                .collect(),
        }
    }

    #[test]
    fn mutates_the_most_expensive_operator_first() {
        let (mut p, sel, fetch) = plan_filter_sum(10_000);
        let prof =
            profile(&p, &[(0, 1, 10_000), (sel, 900, 5_000), (fetch, 100, 5_000), (4, 10, 1)]);
        let cfg = AdaptiveConfig::for_cores(4).with_min_partition_rows(16);
        let outcome = mutate_most_expensive(&mut p, &prof, &cfg).unwrap().unwrap();
        assert_eq!(outcome.kind, MutationKind::Basic);
        assert_eq!(outcome.target, sel);
        p.validate().unwrap();
        assert_eq!(p.count_of("select"), 2);
    }

    #[test]
    fn falls_back_to_the_next_candidate_when_the_first_cannot_split() {
        let (mut p, sel, fetch) = plan_filter_sum(10_000);
        // The select is the most expensive but its scan input is "too small"
        // given an absurd minimum partition size — actually make fetch's
        // candidate list large enough while the scan is not splittable by
        // reporting tiny rows for the select's scan via min_partition_rows.
        let prof = profile(&p, &[(sel, 900, 50_000), (fetch, 800, 50_000)]);
        let mut cfg = AdaptiveConfig::for_cores(4);
        cfg.min_partition_rows = 6_000; // scan of 10k rows < 2*6000 -> select not splittable
        let outcome = mutate_most_expensive(&mut p, &prof, &cfg).unwrap().unwrap();
        // The fetch's aligned input (the select output, 50k rows) is splittable.
        assert_eq!(outcome.target, fetch);
        p.validate().unwrap();
    }

    #[test]
    fn returns_none_when_nothing_can_be_parallelized() {
        let (mut p, sel, fetch) = plan_filter_sum(100);
        let prof = profile(&p, &[(sel, 900, 50), (fetch, 100, 50)]);
        let mut cfg = AdaptiveConfig::for_cores(4);
        cfg.min_partition_rows = 1_000_000;
        assert!(mutate_most_expensive(&mut p, &prof, &cfg).unwrap().is_none());
        // The plan is untouched.
        assert_eq!(p.count_of("select"), 1);
    }

    #[test]
    fn kind_display() {
        assert_eq!(MutationKind::Basic.to_string(), "basic");
        assert_eq!(MutationKind::Medium.to_string(), "medium");
        assert_eq!(MutationKind::Advanced.to_string(), "advanced");
    }
}
