//! Medium mutation: removing an expensive exchange-union operator by
//! propagating its inputs onto its data-flow dependent operator.
//!
//! Paper §2.1: "Medium mutation handles plan parallelization when the
//! exchange union operator (U) itself turns out to be expensive, as a result
//! of intermediate data copying due to low selectivity input. ... The
//! mutation process involves propagating the inputs to the exchange union
//! operator, to its data flow dependent operators. The data flow dependent
//! operators are cloned to match the exchange union operator's input. Finally
//! a newly introduced exchange union operator combines the result of the
//! cloned operator's output."
//!
//! §2.3 adds the plan-explosion guard: "The growth of large plans is
//! suppressed by not removing the exchange union operator if its input
//! parameters cross a certain threshold" (15 in the paper, configurable
//! here).

use std::collections::HashMap;

use apq_engine::plan::{NodeId, OperatorSpec, Plan};
use apq_engine::QueryProfile;

use crate::config::AdaptiveConfig;
use crate::error::{CoreError, Result};
use crate::mutation::basic::is_combiner;
use crate::mutation::split::output_len;
use crate::mutation::{MutationKind, MutationOutcome};

/// Attempts the medium mutation on the exchange-union node `union_id`.
///
/// Returns `Ok(None)` when the mutation is not applicable (too many union
/// inputs, multiple consumers, the consumer cannot be cloned, or the
/// intermediate sizes needed for re-slicing are unknown); the caller then
/// falls back to the next most expensive operator.
pub fn propagate_union(
    plan: &mut Plan,
    profile: &QueryProfile,
    union_id: NodeId,
    config: &AdaptiveConfig,
) -> Result<Option<MutationOutcome>> {
    let union_node = plan.node(union_id).map_err(CoreError::from)?.clone();
    if !matches!(union_node.spec, OperatorSpec::ExchangeUnion) {
        return Err(CoreError::Mutation(format!("node {union_id} is not an exchange union")));
    }
    // Plan-explosion guard.
    if union_node.inputs.len() > config.union_input_threshold {
        return Ok(None);
    }
    let consumers = plan.consumers(union_id);
    if consumers.len() != 1 {
        return Ok(None);
    }
    let consumer_id = consumers[0];
    let consumer = plan.node(consumer_id).map_err(CoreError::from)?.clone();

    // Union feeding another combiner: simply inline the inputs ("the
    // exchange union operator is removed" without cloning anything).
    if is_combiner(&consumer.spec) {
        plan.splice_input(consumer_id, union_id, &union_node.inputs).map_err(CoreError::from)?;
        plan.remove(union_id).map_err(CoreError::from)?;
        return Ok(Some(MutationOutcome {
            kind: MutationKind::Medium,
            target: union_id,
            clones: Vec::new(),
            combiner: consumer_id,
        }));
    }

    if !consumer.spec.is_parallelizable() {
        return Ok(None);
    }

    // The union must feed an aligned (range-partitionable) input position of
    // the consumer, otherwise propagating partitions makes no sense.
    let aligned_flags = consumer.spec.aligned_inputs(consumer.inputs.len());
    let feeds_aligned = consumer
        .inputs
        .iter()
        .zip(&aligned_flags)
        .any(|(&input, &aligned)| input == union_id && aligned);
    if !feeds_aligned {
        return Ok(None);
    }

    // Row counts of every union input (needed both for slicing the consumer's
    // other aligned inputs and for sanity-checking alignment).
    let mut part_lens = Vec::with_capacity(union_node.inputs.len());
    for &input in &union_node.inputs {
        match output_len(plan, profile, input) {
            Some(len) => part_lens.push(len),
            None => return Ok(None),
        }
    }
    let total: usize = part_lens.iter().sum();

    // Any other aligned input of the consumer must be positionally aligned
    // with the union's packed output, i.e. have the same total length.
    let other_aligned: Vec<NodeId> = consumer
        .inputs
        .iter()
        .zip(&aligned_flags)
        .filter(|&(&input, &aligned)| aligned && input != union_id)
        .map(|(&input, _)| input)
        .collect();
    for &other in &other_aligned {
        match output_len(plan, profile, other) {
            Some(len) if len == total => {}
            _ => return Ok(None),
        }
    }

    // Clone the consumer once per union input. Other aligned inputs are
    // re-sliced with the partition offsets; broadcast inputs are shared.
    let mut offsets = Vec::with_capacity(part_lens.len());
    let mut acc = 0usize;
    for &len in &part_lens {
        offsets.push(acc);
        acc += len;
    }
    let mut slices: HashMap<(NodeId, usize), NodeId> = HashMap::new();
    let mut clones = Vec::with_capacity(union_node.inputs.len());
    for (i, &part) in union_node.inputs.iter().enumerate() {
        let mut inputs = Vec::with_capacity(consumer.inputs.len());
        for (&input, &aligned) in consumer.inputs.iter().zip(&aligned_flags) {
            if input == union_id {
                inputs.push(part);
            } else if aligned {
                let slice = *slices.entry((input, i)).or_insert_with(|| {
                    plan.add(
                        OperatorSpec::SlicePart { start: offsets[i], len: part_lens[i] },
                        vec![input],
                    )
                });
                inputs.push(slice);
            } else {
                inputs.push(input);
            }
        }
        clones.push(plan.add(consumer.spec.clone(), inputs));
    }

    // Combine the clones and rewire the consumer's consumers.
    let grand_consumers = plan.consumers(consumer_id);
    let combiner = if grand_consumers.len() == 1
        && is_combiner(&plan.node(grand_consumers[0]).map_err(CoreError::from)?.spec)
    {
        let existing = grand_consumers[0];
        plan.splice_input(existing, consumer_id, &clones).map_err(CoreError::from)?;
        existing
    } else {
        let new_union = plan.add(OperatorSpec::ExchangeUnion, clones.clone());
        for gc in grand_consumers {
            plan.replace_input(gc, consumer_id, new_union).map_err(CoreError::from)?;
        }
        if plan.root() == Some(consumer_id) {
            plan.set_root(new_union);
        }
        new_union
    };

    plan.remove(consumer_id).map_err(CoreError::from)?;
    plan.remove(union_id).map_err(CoreError::from)?;

    Ok(Some(MutationOutcome { kind: MutationKind::Medium, target: union_id, clones, combiner }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_engine::profiler::OperatorProfile;
    use apq_operators::{AggFunc, CmpOp, Predicate};
    use std::time::Duration;

    fn scan(column: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: column.into(),
            range: RowRange::new(0, rows),
        }
    }

    fn profile_with(rows: &[(NodeId, usize)]) -> QueryProfile {
        QueryProfile {
            wall_time: Duration::from_micros(1000),
            n_workers: 4,
            concurrent_peers: 0,
            pipelines: vec![],
            dop_timeline: vec![],
            operators: rows
                .iter()
                .map(|&(node, rows_out)| OperatorProfile {
                    node,
                    name: "x",
                    start_us: 0,
                    duration_us: 10,
                    queue_wait_us: 0,
                    worker: 0,
                    rows_out,
                    bytes_out: rows_out * 8,
                })
                .collect(),
        }
    }

    /// Plan shaped like the paper's Fig. 5: two selects packed by a union,
    /// whose output is fetched into and then aggregated.
    ///   select(a[0,500)) ─┐
    ///                     union ── fetch(b) ── sum ── finalize
    ///   select(a[500,1000))┘
    fn union_plan() -> (Plan, NodeId, NodeId, NodeId, NodeId) {
        let mut p = Plan::new();
        let a0 = p.add(scan("a", 500), vec![]);
        let a1 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(500, 1000),
            },
            vec![],
        );
        let pred = Predicate::cmp(CmpOp::Lt, 100i64);
        let s0 = p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a0]);
        let s1 = p.add(OperatorSpec::Select { predicate: pred }, vec![a1]);
        let union = p.add(OperatorSpec::ExchangeUnion, vec![s0, s1]);
        let b = p.add(scan("b", 1000), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![union, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        (p, s0, s1, union, fetch)
    }

    #[test]
    fn medium_mutation_clones_the_consumer_per_union_input() {
        let (mut p, s0, s1, union, fetch) = union_plan();
        let prof = profile_with(&[(s0, 60), (s1, 40), (union, 100), (fetch, 100)]);
        let cfg = AdaptiveConfig::for_cores(4);
        let outcome = propagate_union(&mut p, &prof, union, &cfg).unwrap().unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.kind, MutationKind::Medium);
        assert_eq!(outcome.clones.len(), 2);
        // Union and the original fetch are gone; two fetch clones read the
        // selects directly; their partial results feed a new union... no —
        // the fetch clones' outputs are columns packed by a fresh union whose
        // only consumer is the aggregate.
        assert!(!p.contains(union));
        assert!(!p.contains(fetch));
        assert_eq!(p.count_of("fetch"), 2);
        assert_eq!(p.count_of("union"), 1);
        for &clone in &outcome.clones {
            let inputs = &p.node(clone).unwrap().inputs;
            assert!(inputs.contains(&s0) || inputs.contains(&s1));
        }
    }

    #[test]
    fn union_feeding_an_aggregate_is_propagated_without_new_union() {
        // select0/select1 -> union -> sum -> finalize: cloning the sum per
        // union input reuses the finalizer as the combiner.
        let mut p = Plan::new();
        let a0 = p.add(scan("a", 500), vec![]);
        let a1 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(500, 1000),
            },
            vec![],
        );
        let f0 = p.add(OperatorSpec::Fetch, vec![a0, a0]); // placeholder value columns
        let f1 = p.add(OperatorSpec::Fetch, vec![a1, a1]);
        let union = p.add(OperatorSpec::ExchangeUnion, vec![f0, f1]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![union]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        let prof = profile_with(&[(f0, 500), (f1, 500), (union, 1000), (agg, 1)]);
        let cfg = AdaptiveConfig::for_cores(4);
        let outcome = propagate_union(&mut p, &prof, union, &cfg).unwrap().unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.combiner, fin);
        assert_eq!(p.count_of("aggregate"), 2);
        assert_eq!(p.count_of("union"), 0);
        assert_eq!(p.node(fin).unwrap().inputs.len(), 2);
    }

    #[test]
    fn guard_suppresses_removal_of_wide_unions() {
        let (mut p, s0, s1, union, fetch) = union_plan();
        let prof = profile_with(&[(s0, 60), (s1, 40), (union, 100), (fetch, 100)]);
        let mut cfg = AdaptiveConfig::for_cores(4);
        cfg.union_input_threshold = 1; // pretend the union is already too wide
                                       // Validation would reject threshold 1, but propagate_union only reads it.
        assert!(propagate_union(&mut p, &prof, union, &cfg).unwrap().is_none());
        assert!(p.contains(union));
    }

    #[test]
    fn multiple_consumers_or_missing_profile_disable_the_mutation() {
        let cfg = AdaptiveConfig::for_cores(4);
        // Two consumers of the union.
        let (mut p, _, _, union, _) = union_plan();
        let b = p.add(scan("b", 1000), vec![]);
        let extra = p.add(OperatorSpec::Fetch, vec![union, b]);
        let _keep_alive = p.add(OperatorSpec::ExchangeUnion, vec![extra]);
        let prof = profile_with(&[(union, 100)]);
        assert!(propagate_union(&mut p, &prof, union, &cfg).unwrap().is_none());

        // Missing row counts for the union inputs.
        let (mut p, _, _, union, _) = union_plan();
        let empty = profile_with(&[]);
        assert!(propagate_union(&mut p, &empty, union, &cfg).unwrap().is_none());

        // Wrong target kind is a hard error.
        let (mut p, s0, _, _, _) = union_plan();
        let prof = profile_with(&[(s0, 10)]);
        assert!(propagate_union(&mut p, &prof, s0, &cfg).is_err());
    }

    #[test]
    fn union_into_union_is_collapsed() {
        let mut p = Plan::new();
        let a0 = p.add(scan("a", 500), vec![]);
        let a1 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(500, 1000),
            },
            vec![],
        );
        let pred = Predicate::cmp(CmpOp::Lt, 100i64);
        let s0 = p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a0]);
        let s1 = p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a1]);
        let inner = p.add(OperatorSpec::ExchangeUnion, vec![s0, s1]);
        let s2 = p.add(OperatorSpec::Select { predicate: pred }, vec![a0]);
        let outer = p.add(OperatorSpec::ExchangeUnion, vec![inner, s2]);
        p.set_root(outer);
        let prof = profile_with(&[(s0, 10), (s1, 10), (s2, 10), (inner, 20)]);
        let cfg = AdaptiveConfig::for_cores(4);
        let outcome = propagate_union(&mut p, &prof, inner, &cfg).unwrap().unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.combiner, outer);
        assert!(!p.contains(inner));
        assert_eq!(p.node(outer).unwrap().inputs, vec![s0, s1, s2]);
    }

    #[test]
    fn consumer_with_second_aligned_input_is_resliced() {
        // union (of two fetched halves) and another full-length column feed a
        // calc; the medium mutation must slice the other column per partition.
        let mut p = Plan::new();
        let a0 = p.add(scan("a", 600), vec![]);
        let a1 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(600, 1000),
            },
            vec![],
        );
        let union = p.add(OperatorSpec::ExchangeUnion, vec![a0, a1]);
        let other = p.add(scan("b", 1000), vec![]);
        let calc = p.add(
            OperatorSpec::Calc {
                op: apq_operators::BinaryOp::Mul,
                left_scalar: None,
                right_scalar: None,
            },
            vec![union, other],
        );
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![calc]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        let prof = profile_with(&[(a0, 600), (a1, 400), (union, 1000), (calc, 1000)]);
        let cfg = AdaptiveConfig::for_cores(4);
        let outcome = propagate_union(&mut p, &prof, union, &cfg).unwrap().unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.clones.len(), 2);
        assert_eq!(p.count_of("slice"), 2);
        // The slices over `other` cover [0,600) and [600,1000).
        let mut windows = Vec::new();
        for id in p.node_ids() {
            if let OperatorSpec::SlicePart { start, len } = p.node(id).unwrap().spec {
                windows.push((start, len));
            }
        }
        windows.sort_unstable();
        assert_eq!(windows, vec![(0, 600), (600, 400)]);
    }
}
