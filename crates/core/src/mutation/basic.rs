//! Basic and advanced mutation: clone the expensive operator over two
//! partitions of its input and combine the clones.
//!
//! Paper §2.1: "Basic mutation involves parallelization of an expensive
//! operator by introducing two new operators of the same type ... The cloned
//! operators work on the expensive operator's partitioned data ... An
//! exchange union operator (either a newly introduced or an existing one)
//! combines the result of the cloned operators."
//!
//! The *advanced* mutation is the same cloning step applied to non-filtering
//! operators (grouped aggregation, scalar aggregation); their clones are
//! combined by a merging combiner instead of a plain pack, which in this
//! implementation is the already-present `FinalizeAgg` / `MergeGrouped`
//! node (or an exchange union, which also merges partial aggregate chunks).

use std::collections::HashMap;

use apq_engine::plan::{CombinerKind, NodeId, OperatorSpec, Plan};
use apq_engine::QueryProfile;

use crate::error::{CoreError, Result};
use crate::mutation::split::{aligned_inputs, output_len, remove_if_orphan, split_input};
use crate::mutation::{MutationKind, MutationOutcome};

/// True when `spec` is one of the combiner operators that can absorb
/// additional cloned inputs directly (the "existing" exchange union of the
/// paper, or the merging combiners used by the advanced mutation).
pub(crate) fn is_combiner(spec: &OperatorSpec) -> bool {
    matches!(
        spec,
        OperatorSpec::ExchangeUnion | OperatorSpec::FinalizeAgg { .. } | OperatorSpec::MergeGrouped
    )
}

/// Applies the basic / advanced mutation to `target`.
pub fn clone_over_partitions(
    plan: &mut Plan,
    profile: &QueryProfile,
    target: NodeId,
) -> Result<MutationOutcome> {
    let node = plan.node(target).map_err(CoreError::from)?.clone();
    let combiner_kind = node.spec.combiner();
    if combiner_kind == CombinerKind::NotParallelizable {
        return Err(CoreError::Mutation(format!(
            "operator {} (node {target}) cannot be cloned over partitions",
            node.spec.name()
        )));
    }

    // All aligned inputs must be splittable and equally long, otherwise the
    // clones would mis-align (paper Fig. 9 hazards).
    let aligned = aligned_inputs(plan, target)?;
    if aligned.is_empty() {
        return Err(CoreError::Mutation(format!("node {target} has no partitionable input")));
    }
    let mut lengths = Vec::with_capacity(aligned.len());
    for &input in &aligned {
        let len = output_len(plan, profile, input).ok_or_else(|| {
            CoreError::Mutation(format!("input {input} of node {target} has unknown length"))
        })?;
        lengths.push(len);
    }
    if lengths.windows(2).any(|w| w[0] != w[1]) {
        return Err(CoreError::Mutation(format!(
            "aligned inputs of node {target} have differing lengths {lengths:?}"
        )));
    }

    // Split every aligned input once (memoized: the same input may appear at
    // several aligned positions).
    let mut splits: HashMap<NodeId, (NodeId, NodeId)> = HashMap::new();
    for &input in &aligned {
        let halves = split_input(plan, profile, input)?;
        splits.insert(input, halves);
    }

    // Clone the target over the two halves.
    let flags = node.spec.aligned_inputs(node.inputs.len());
    let mut inputs_first = Vec::with_capacity(node.inputs.len());
    let mut inputs_second = Vec::with_capacity(node.inputs.len());
    for (&input, &is_aligned) in node.inputs.iter().zip(&flags) {
        if is_aligned {
            let (a, b) = splits[&input];
            inputs_first.push(a);
            inputs_second.push(b);
        } else {
            inputs_first.push(input);
            inputs_second.push(input);
        }
    }
    let clone_first = plan.add(node.spec.clone(), inputs_first);
    let clone_second = plan.add(node.spec.clone(), inputs_second);

    // Combine the clones: reuse an existing combiner consumer if there is
    // exactly one, otherwise introduce a new exchange union.
    let consumers = plan.consumers(target);
    let combiner = if consumers.len() == 1
        && is_combiner(&plan.node(consumers[0]).map_err(CoreError::from)?.spec)
    {
        let existing = consumers[0];
        plan.splice_input(existing, target, &[clone_first, clone_second])
            .map_err(CoreError::from)?;
        existing
    } else {
        let union = plan.add(OperatorSpec::ExchangeUnion, vec![clone_first, clone_second]);
        for consumer in consumers {
            plan.replace_input(consumer, target, union).map_err(CoreError::from)?;
        }
        if plan.root() == Some(target) {
            plan.set_root(union);
        }
        union
    };

    plan.remove(target).map_err(CoreError::from)?;
    for &input in &aligned {
        remove_if_orphan(plan, input);
    }

    let kind = match combiner_kind {
        CombinerKind::ExchangeUnion => MutationKind::Basic,
        CombinerKind::FinalizeAgg | CombinerKind::MergeGrouped => MutationKind::Advanced,
        CombinerKind::NotParallelizable => unreachable!("rejected above"),
    };
    Ok(MutationOutcome { kind, target, clones: vec![clone_first, clone_second], combiner })
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_engine::profiler::OperatorProfile;
    use apq_operators::{AggFunc, CmpOp, Predicate};
    use std::time::Duration;

    fn scan(column: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: column.into(),
            range: RowRange::new(0, rows),
        }
    }

    fn profile_for(plan: &Plan, rows: usize) -> QueryProfile {
        QueryProfile {
            wall_time: Duration::from_micros(1000),
            n_workers: 4,
            concurrent_peers: 0,
            pipelines: vec![],
            dop_timeline: vec![],
            operators: plan
                .node_ids()
                .into_iter()
                .map(|node| OperatorProfile {
                    node,
                    name: plan.node(node).unwrap().spec.name(),
                    start_us: 0,
                    duration_us: 10,
                    queue_wait_us: 0,
                    worker: 0,
                    rows_out: rows,
                    bytes_out: rows * 8,
                })
                .collect(),
        }
    }

    /// sum(b) where a < k — the plan every other test builds on.
    fn filter_sum_plan(rows: usize) -> (Plan, NodeId, NodeId, NodeId) {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        (p, sel, fetch, agg)
    }

    #[test]
    fn basic_mutation_of_a_select_splits_the_scan() {
        let (mut p, sel, fetch, _) = filter_sum_plan(1000);
        let prof = profile_for(&p, 500);
        let before_scans = p.count_of("scan");
        let outcome = clone_over_partitions(&mut p, &prof, sel).unwrap();
        assert_eq!(outcome.kind, MutationKind::Basic);
        assert_eq!(outcome.target, sel);
        assert_eq!(outcome.clones.len(), 2);
        p.validate().unwrap();
        // The original select is gone, two clones exist, a union was added.
        assert!(!p.contains(sel));
        assert_eq!(p.count_of("select"), 2);
        assert_eq!(p.count_of("union"), 1);
        // The original scan of `a` was only used by the select and is removed,
        // replaced by two half-range scans (plus the untouched scan of `b`).
        assert_eq!(p.count_of("scan"), before_scans + 1);
        // The fetch now reads from the union.
        assert!(p.node(fetch).unwrap().inputs.contains(&outcome.combiner));
        // The two clones scan adjacent ranges covering the original domain.
        let mut ranges = Vec::new();
        for id in p.node_ids() {
            if let OperatorSpec::ScanColumn { column, range, .. } = &p.node(id).unwrap().spec {
                if column == "a" {
                    ranges.push((range.start, range.end));
                }
            }
        }
        ranges.sort_unstable();
        assert_eq!(ranges, vec![(0, 500), (500, 1000)]);
    }

    #[test]
    fn repeated_mutation_reuses_the_existing_union() {
        let (mut p, sel, _, _) = filter_sum_plan(1000);
        let prof = profile_for(&p, 500);
        let first = clone_over_partitions(&mut p, &prof, sel).unwrap();
        // Parallelize one of the clones: its consumer is the union created above.
        let prof2 = profile_for(&p, 250);
        let second = clone_over_partitions(&mut p, &prof2, first.clones[0]).unwrap();
        p.validate().unwrap();
        assert_eq!(second.combiner, first.combiner, "existing union must be reused");
        assert_eq!(p.count_of("union"), 1);
        assert_eq!(p.count_of("select"), 3);
        // Union input order preserves the mutation sequence order: the two new
        // clones replaced the first clone in place.
        let union_inputs = &p.node(first.combiner).unwrap().inputs;
        assert_eq!(union_inputs.len(), 3);
        assert_eq!(union_inputs[0], second.clones[0]);
        assert_eq!(union_inputs[1], second.clones[1]);
        assert_eq!(union_inputs[2], first.clones[1]);
    }

    #[test]
    fn fetch_mutation_slices_the_candidate_list() {
        let (mut p, sel, fetch, _) = filter_sum_plan(1000);
        let prof = profile_for(&p, 600);
        let outcome = clone_over_partitions(&mut p, &prof, fetch).unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.kind, MutationKind::Basic);
        // The select survives (it feeds the slices), two SlicePart nodes appear.
        assert!(p.contains(sel));
        assert_eq!(p.count_of("slice"), 2);
        assert_eq!(p.count_of("fetch"), 2);
        // Slices cover [0, 300) and [300, 600) of the candidate list.
        let mut windows = Vec::new();
        for id in p.node_ids() {
            if let OperatorSpec::SlicePart { start, len } = p.node(id).unwrap().spec {
                windows.push((start, len));
            }
        }
        windows.sort_unstable();
        assert_eq!(windows, vec![(0, 300), (300, 300)]);
    }

    #[test]
    fn advanced_mutation_of_scalar_agg_feeds_existing_finalizer() {
        let (mut p, _, _, agg) = filter_sum_plan(1000);
        let fin = p.root().unwrap();
        let prof = profile_for(&p, 400);
        let outcome = clone_over_partitions(&mut p, &prof, agg).unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.kind, MutationKind::Advanced);
        assert_eq!(outcome.combiner, fin, "clones must feed the existing FinalizeAgg");
        assert_eq!(p.node(fin).unwrap().inputs.len(), 2);
        assert_eq!(p.count_of("aggregate"), 2);
        assert_eq!(p.count_of("union"), 0);
    }

    #[test]
    fn advanced_mutation_of_group_agg() {
        let mut p = Plan::new();
        let keys = p.add(scan("k", 1000), vec![]);
        let vals = p.add(scan("v", 1000), vec![]);
        let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![keys, vals]);
        let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
        p.set_root(merge);
        let prof = profile_for(&p, 1000);
        let outcome = clone_over_partitions(&mut p, &prof, group).unwrap();
        p.validate().unwrap();
        assert_eq!(outcome.kind, MutationKind::Advanced);
        assert_eq!(outcome.combiner, merge);
        assert_eq!(p.count_of("groupby"), 2);
        // Both scans were split: 2 half scans per original scan.
        assert_eq!(p.count_of("scan"), 4);
        assert!(!p.contains(keys));
        assert!(!p.contains(vals));
    }

    #[test]
    fn mutation_of_root_operator_moves_the_root() {
        let mut p = Plan::new();
        let a = p.add(scan("a", 100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 10i64) }, vec![a]);
        p.set_root(sel);
        let prof = profile_for(&p, 50);
        let outcome = clone_over_partitions(&mut p, &prof, sel).unwrap();
        p.validate().unwrap();
        assert_eq!(p.root(), Some(outcome.combiner));
        assert!(matches!(p.node(outcome.combiner).unwrap().spec, OperatorSpec::ExchangeUnion));
    }

    #[test]
    fn rejects_unsplittable_targets() {
        let (mut p, sel, _, _) = filter_sum_plan(1000);
        // Scan nodes cannot be mutated.
        let prof = profile_for(&p, 500);
        assert!(clone_over_partitions(&mut p, &prof, 0).is_err());
        // A select over a single-row scan cannot be split.
        let (mut tiny, tiny_sel, _, _) = filter_sum_plan(1);
        let tiny_prof = profile_for(&tiny, 1);
        assert!(clone_over_partitions(&mut tiny, &tiny_prof, tiny_sel).is_err());
        // Unknown node.
        assert!(clone_over_partitions(&mut p, &prof, 999).is_err());
        // Fetch whose candidate list was never profiled cannot be split.
        let (mut p2, _, fetch2, _) = filter_sum_plan(1000);
        let empty_prof = QueryProfile {
            wall_time: Duration::from_micros(1),
            n_workers: 1,
            concurrent_peers: 0,
            pipelines: vec![],
            dop_timeline: vec![],
            operators: vec![],
        };
        assert!(clone_over_partitions(&mut p2, &empty_prof, fetch2).is_err());
        let _ = sel;
    }
}
