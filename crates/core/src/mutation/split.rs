//! Helpers shared by the mutation schemes: input splitting, length lookup,
//! orphan cleanup.
//!
//! Adaptive parallelization partitions "the base or the intermediate column"
//! (paper §2.3). Base columns are partitioned by splitting the `ScanColumn`
//! range (keeping the boundaries aligned on the base column, Fig. 8);
//! intermediates are partitioned positionally with `SlicePart` nodes, using
//! the row counts observed by the profiler in the previous run.

use apq_engine::plan::{NodeId, OperatorSpec, Plan};
use apq_engine::QueryProfile;

use crate::error::{CoreError, Result};

/// Number of rows node `id` produces: statically known for scans and slices,
/// otherwise taken from the previous run's profile.
pub fn output_len(plan: &Plan, profile: &QueryProfile, id: NodeId) -> Option<usize> {
    match &plan.node(id).ok()?.spec {
        OperatorSpec::ScanColumn { range, .. } => Some(range.len()),
        OperatorSpec::SlicePart { len, .. } => Some(*len),
        _ => profile.operator(id).map(|p| p.rows_out),
    }
}

/// The aligned (range-partitionable) inputs of a node, deduplicated, in input order.
pub fn aligned_inputs(plan: &Plan, id: NodeId) -> Result<Vec<NodeId>> {
    let node = plan.node(id).map_err(CoreError::from)?;
    let flags = node.spec.aligned_inputs(node.inputs.len());
    let mut out = Vec::new();
    for (input, aligned) in node.inputs.iter().zip(flags) {
        if aligned && !out.contains(input) {
            out.push(*input);
        }
    }
    Ok(out)
}

/// True when every aligned input of `id` covers at least `2 × min_rows` rows,
/// i.e. splitting it would not create partitions below the minimum size.
pub fn can_split(plan: &Plan, profile: &QueryProfile, id: NodeId, min_rows: usize) -> bool {
    match aligned_inputs(plan, id) {
        Ok(inputs) if !inputs.is_empty() => inputs.iter().all(|&input| {
            output_len(plan, profile, input).is_some_and(|len| len >= 2 * min_rows.max(1))
        }),
        _ => false,
    }
}

/// Splits the output of `input` in two halves, returning the node ids that
/// produce the first and second half.
///
/// * `ScanColumn` ranges are split at their midpoint — the new boundaries stay
///   aligned to the base column.
/// * `SlicePart` windows are split into two windows over the same producer.
/// * Any other node is split positionally by inserting two `SlicePart` nodes
///   over it, sized from the profiled row count.
pub fn split_input(
    plan: &mut Plan,
    profile: &QueryProfile,
    input: NodeId,
) -> Result<(NodeId, NodeId)> {
    let spec = plan.node(input).map_err(CoreError::from)?.spec.clone();
    match spec {
        OperatorSpec::ScanColumn { table, column, range } => {
            if range.len() < 2 {
                return Err(CoreError::Mutation(format!(
                    "scan over [{}, {}) is too small to split",
                    range.start, range.end
                )));
            }
            let (a, b) = range.split();
            let first = plan.add(
                OperatorSpec::ScanColumn { table: table.clone(), column: column.clone(), range: a },
                vec![],
            );
            let second = plan.add(OperatorSpec::ScanColumn { table, column, range: b }, vec![]);
            Ok((first, second))
        }
        OperatorSpec::SlicePart { start, len } => {
            if len < 2 {
                return Err(CoreError::Mutation(format!(
                    "slice of {len} rows is too small to split"
                )));
            }
            let producer = plan.node(input).map_err(CoreError::from)?.inputs[0];
            let half = len.div_ceil(2);
            let first = plan.add(OperatorSpec::SlicePart { start, len: half }, vec![producer]);
            let second = plan.add(
                OperatorSpec::SlicePart { start: start + half, len: len - half },
                vec![producer],
            );
            Ok((first, second))
        }
        _ => {
            let len = output_len(plan, profile, input).ok_or_else(|| {
                CoreError::Mutation(format!(
                    "no profiled row count for intermediate node {input}; cannot partition it"
                ))
            })?;
            if len < 2 {
                return Err(CoreError::Mutation(format!(
                    "intermediate of {len} rows is too small to split"
                )));
            }
            let half = len.div_ceil(2);
            let first = plan.add(OperatorSpec::SlicePart { start: 0, len: half }, vec![input]);
            let second =
                plan.add(OperatorSpec::SlicePart { start: half, len: len - half }, vec![input]);
            Ok((first, second))
        }
    }
}

/// Removes `id` if nothing consumes it any more and it is not the plan root.
/// Returns true when the node was removed.
pub fn remove_if_orphan(plan: &mut Plan, id: NodeId) -> bool {
    if plan.contains(id) && plan.root() != Some(id) && plan.consumers(id).is_empty() {
        plan.remove(id).expect("checked live");
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_engine::profiler::OperatorProfile;
    use apq_operators::{AggFunc, CmpOp, Predicate};
    use std::time::Duration;

    fn scan(rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: "a".into(),
            range: RowRange::new(0, rows),
        }
    }

    fn profile_with(rows: &[(NodeId, usize)]) -> QueryProfile {
        QueryProfile {
            wall_time: Duration::from_micros(100),
            n_workers: 2,
            concurrent_peers: 0,
            pipelines: vec![],
            dop_timeline: vec![],
            operators: rows
                .iter()
                .map(|&(node, rows_out)| OperatorProfile {
                    node,
                    name: "select",
                    start_us: 0,
                    duration_us: 10,
                    queue_wait_us: 0,
                    worker: 0,
                    rows_out,
                    bytes_out: rows_out * 8,
                })
                .collect(),
        }
    }

    #[test]
    fn output_len_prefers_static_info() {
        let mut p = Plan::new();
        let s = p.add(scan(100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![s]);
        let slice = p.add(OperatorSpec::SlicePart { start: 10, len: 40 }, vec![sel]);
        p.set_root(slice);
        let prof = profile_with(&[(sel, 37)]);
        assert_eq!(output_len(&p, &prof, s), Some(100));
        assert_eq!(output_len(&p, &prof, sel), Some(37));
        assert_eq!(output_len(&p, &prof, slice), Some(40));
        assert_eq!(output_len(&p, &prof, 99), None);
    }

    #[test]
    fn aligned_inputs_respect_operator_metadata() {
        let mut p = Plan::new();
        let a = p.add(scan(100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        let b = p.add(scan(100), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        p.set_root(agg);
        // Fetch: the oid list is aligned, the fetched column is broadcast.
        assert_eq!(aligned_inputs(&p, fetch).unwrap(), vec![sel]);
        assert_eq!(aligned_inputs(&p, sel).unwrap(), vec![a]);
        assert_eq!(aligned_inputs(&p, agg).unwrap(), vec![fetch]);
        // Calc with the same node on both sides deduplicates.
        let calc = p.add(
            OperatorSpec::Calc {
                op: apq_operators::BinaryOp::Mul,
                left_scalar: None,
                right_scalar: None,
            },
            vec![fetch, fetch],
        );
        assert_eq!(aligned_inputs(&p, calc).unwrap(), vec![fetch]);
    }

    #[test]
    fn can_split_honours_minimum_partition_size() {
        let mut p = Plan::new();
        let a = p.add(scan(100), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        p.set_root(sel);
        let prof = profile_with(&[(sel, 50)]);
        assert!(can_split(&p, &prof, sel, 50));
        assert!(!can_split(&p, &prof, sel, 51));
        // Scans have no aligned inputs at all.
        assert!(!can_split(&p, &prof, a, 1));
    }

    #[test]
    fn splitting_scans_slices_and_intermediates() {
        let mut p = Plan::new();
        let a = p.add(scan(101), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        p.set_root(sel);
        let prof = profile_with(&[(sel, 33)]);

        // Scan split: ranges [0,51) and [51,101).
        let (s1, s2) = split_input(&mut p, &prof, a).unwrap();
        match (&p.node(s1).unwrap().spec, &p.node(s2).unwrap().spec) {
            (
                OperatorSpec::ScanColumn { range: r1, .. },
                OperatorSpec::ScanColumn { range: r2, .. },
            ) => {
                assert_eq!((r1.start, r1.end), (0, 51));
                assert_eq!((r2.start, r2.end), (51, 101));
            }
            other => panic!("unexpected specs {other:?}"),
        }

        // Intermediate split: SlicePart [0,17) and [17,33) over the select.
        let (i1, i2) = split_input(&mut p, &prof, sel).unwrap();
        match (&p.node(i1).unwrap().spec, &p.node(i2).unwrap().spec) {
            (
                OperatorSpec::SlicePart { start: 0, len: 17 },
                OperatorSpec::SlicePart { start: 17, len: 16 },
            ) => {}
            other => panic!("unexpected specs {other:?}"),
        }
        assert_eq!(p.node(i1).unwrap().inputs, vec![sel]);

        // Slice split: halves of an existing window, same producer.
        let (j1, j2) = split_input(&mut p, &prof, i1).unwrap();
        match (&p.node(j1).unwrap().spec, &p.node(j2).unwrap().spec) {
            (
                OperatorSpec::SlicePart { start: 0, len: 9 },
                OperatorSpec::SlicePart { start: 9, len: 8 },
            ) => {}
            other => panic!("unexpected specs {other:?}"),
        }
        assert_eq!(p.node(j1).unwrap().inputs, vec![sel]);
    }

    #[test]
    fn splitting_degenerate_inputs_fails() {
        let mut p = Plan::new();
        let tiny = p.add(scan(1), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![tiny]);
        p.set_root(sel);
        let prof = profile_with(&[(sel, 1)]);
        assert!(split_input(&mut p, &prof, tiny).is_err());
        assert!(split_input(&mut p, &prof, sel).is_err());
        // Unprofiled intermediate cannot be split either.
        let prof_empty = profile_with(&[]);
        assert!(split_input(&mut p, &prof_empty, sel).is_err());
    }

    #[test]
    fn orphan_removal() {
        let mut p = Plan::new();
        let a = p.add(scan(10), vec![]);
        let b = p.add(scan(10), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) }, vec![a]);
        p.set_root(sel);
        assert!(!remove_if_orphan(&mut p, a)); // still consumed
        assert!(!remove_if_orphan(&mut p, sel)); // root
        assert!(remove_if_orphan(&mut p, b)); // dead leaf
        assert!(!p.contains(b));
        assert!(!remove_if_orphan(&mut p, b)); // already gone
    }
}
