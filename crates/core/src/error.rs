//! Error type for the adaptive parallelization layer.

use std::fmt;

use apq_engine::EngineError;

/// Convenience alias used throughout the core crate.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised by the adaptive parallelizer.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// An error bubbled up from the execution engine.
    Engine(EngineError),
    /// A plan mutation could not be applied consistently.
    Mutation(String),
    /// The adaptive and serial plans disagreed on the query result
    /// (only detectable when result verification is enabled).
    ResultMismatch {
        /// Run index at which the divergence was observed.
        run: usize,
    },
    /// The optimizer was configured inconsistently.
    InvalidConfig(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Engine(e) => write!(f, "engine error: {e}"),
            CoreError::Mutation(msg) => write!(f, "plan mutation failed: {msg}"),
            CoreError::ResultMismatch { run } => {
                write!(f, "adaptive plan result diverged from the serial result at run {run}")
            }
            CoreError::InvalidConfig(msg) => write!(f, "invalid adaptive configuration: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Engine(e) => Some(e),
            _ => None,
        }
    }
}

impl From<EngineError> for CoreError {
    fn from(e: EngineError) -> Self {
        CoreError::Engine(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: CoreError = EngineError::InvalidPlan("x".into()).into();
        assert!(matches!(e, CoreError::Engine(_)));
        assert!(e.to_string().contains("engine error"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(CoreError::Mutation("bad".into()).to_string().contains("bad"));
        assert!(CoreError::ResultMismatch { run: 3 }.to_string().contains('3'));
        assert!(CoreError::InvalidConfig("zero cores".into()).to_string().contains("zero cores"));
    }
}
