//! The convergence algorithm (paper §3).
//!
//! Adaptive parallelization keeps re-invoking the query with an increasingly
//! parallel plan; the convergence algorithm decides when to stop and which
//! run holds the *global minimum execution* (GME). It models the remaining
//! budget of runs with a credit/debit pair driven by the rate of improvement
//! (ROI) of consecutive runs:
//!
//! ```text
//! ROI    = (PrevExec − CurExec) / max(CurExec, PrevExec)
//! Credit = Credit + max(ROI, 0) · Number_Of_Cores
//! Debit  = Debit  + max(−ROI, 0) · Number_Of_Cores
//! continue while Credit − Debit > 0
//! ```
//!
//! Three convergence scenarios are handled exactly as in the paper:
//! no premature convergence (the first improving run accumulates a large
//! credit), no extended convergence (a *leaking debit* drains the credit once
//! `Number_Of_Cores` runs have passed), and convergence in a noisy
//! environment (runs slower than the serial execution are treated as outlier
//! peaks and ignored).
//!
//! **Contention awareness.** Beyond the paper's algorithm, the state accepts
//! the profiler's queue-wait share per run
//! ([`ConvergenceState::record_run_contended`]): the fraction of a run's
//! in-system time its operators spent queued behind other work rather than
//! executing. A worsening run's *debit* is scaled by `1 − discount ×
//! wait_share` — a slowdown that coincides with heavy queueing is evidence of
//! scheduler interference (concurrent queries fighting for the worker pool,
//! §4.2.3), not evidence that the mutated plan is worse, so it should not
//! drain the search budget at full weight. Credits are never scaled: genuine
//! improvements keep their full value. [`ConvergenceState::record_run`] is
//! the zero-contention special case and behaves exactly as the paper's
//! formulas.

use crate::config::AdaptiveConfig;

/// Bookkeeping for a single adaptive run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunObservation {
    /// Run index (0 is the serial run).
    pub run: usize,
    /// Execution time of the run, microseconds.
    pub exec_us: u64,
    /// Rate of improvement relative to the previous (non-outlier) run.
    pub roi: f64,
    /// Queue-wait share of the run (`0.0` when recorded without contention
    /// feedback): fraction of in-system operator time spent queued.
    pub wait_share: f64,
    /// True when the run was classified as a noise peak and ignored.
    pub is_outlier: bool,
    /// Credit accumulated so far.
    pub credit: f64,
    /// Debit accumulated so far.
    pub debit: f64,
    /// Remaining balance (`credit − debit`) after this run.
    pub balance: f64,
    /// True when this run became the new GME.
    pub became_gme: bool,
}

/// State of the convergence algorithm across runs of one query.
#[derive(Debug, Clone)]
pub struct ConvergenceState {
    config: AdaptiveConfig,
    serial_us: Option<u64>,
    prev_us: Option<u64>,
    best_us: Option<u64>,
    best_run: usize,
    gme_us: Option<u64>,
    gme_run: usize,
    credit: f64,
    debit: f64,
    leaking_debit: Option<f64>,
    run_index: usize,
    observations: Vec<RunObservation>,
}

impl ConvergenceState {
    /// Fresh state; the paper initializes credit to 1 and debit to 0.
    pub fn new(config: AdaptiveConfig) -> Self {
        ConvergenceState {
            config,
            serial_us: None,
            prev_us: None,
            best_us: None,
            best_run: 0,
            gme_us: None,
            gme_run: 0,
            credit: 1.0,
            debit: 0.0,
            leaking_debit: None,
            run_index: 0,
            observations: Vec::new(),
        }
    }

    /// Records the 0th (serial) run.
    pub fn record_serial(&mut self, exec_us: u64) {
        let exec_us = exec_us.max(1);
        self.serial_us = Some(exec_us);
        self.prev_us = Some(exec_us);
        self.best_us = Some(exec_us);
        self.best_run = 0;
        self.run_index = 0;
        self.observations.push(RunObservation {
            run: 0,
            exec_us,
            roi: 0.0,
            wait_share: 0.0,
            is_outlier: false,
            credit: self.credit,
            debit: self.debit,
            balance: self.balance(),
            became_gme: false,
        });
    }

    /// Records one adaptive (parallel) run and updates credit, debit, GME and
    /// the leaking debit. Equivalent to
    /// [`ConvergenceState::record_run_contended`] with a zero queue-wait
    /// share (the paper's exact formulas).
    pub fn record_run(&mut self, exec_us: u64) -> RunObservation {
        self.record_run_contended(exec_us, 0.0)
    }

    /// Records one adaptive run together with the profiler's queue-wait
    /// share (see [`apq_engine::QueryProfile::queue_wait_share`]): the debit
    /// of a worsening run is scaled by `1 − contention_discount × wait_share`
    /// so that slowdowns caused by scheduler interference do not drain the
    /// search budget at full weight.
    pub fn record_run_contended(&mut self, exec_us: u64, wait_share: f64) -> RunObservation {
        let exec_us = exec_us.max(1);
        let wait_share = wait_share.clamp(0.0, 1.0);
        let serial = self.serial_us.expect("record_serial must be called first");
        self.run_index += 1;
        let run = self.run_index;

        // Outlier peaks (noisy environment, §3.3.3): a run slower than the
        // serial execution is ignored — no credit, no debit, no GME update —
        // which "allows the immediate next run to execute".
        let is_outlier = (exec_us as f64) > self.config.outlier_factor * serial as f64;

        let prev = self.prev_us.unwrap_or(serial);
        let roi = if is_outlier {
            0.0
        } else {
            (prev as f64 - exec_us as f64) / (exec_us.max(prev) as f64)
        };

        let mut became_gme = false;
        if !is_outlier {
            if roi > 0.0 {
                self.credit += roi * self.config.n_cores as f64;
            } else {
                // Contention-aware debit: discount the share of the slowdown
                // attributable to queueing behind concurrent work.
                let contention_scale =
                    1.0 - (self.config.contention_discount * wait_share).clamp(0.0, 1.0);
                self.debit += roi.abs() * self.config.n_cores as f64 * contention_scale;
            }
            self.prev_us = Some(exec_us);

            // Track the true minimum (used to pick the final plan).
            if self.best_us.is_none_or(|b| exec_us < b) {
                self.best_us = Some(exec_us);
                self.best_run = run;
            }

            // GME bookkeeping (§3.1): initialize with the first run after the
            // serial execution, then replace only when the improvement beats
            // the current GME's improvement by more than the threshold.
            match self.gme_us {
                None => {
                    self.gme_us = Some(exec_us);
                    self.gme_run = run;
                    became_gme = true;
                }
                Some(gme) => {
                    let cur_imprv = (serial as f64 - exec_us as f64).abs() / serial as f64;
                    let gme_imprv = (serial as f64 - gme as f64).abs() / serial as f64;
                    if exec_us < gme && cur_imprv - gme_imprv > self.config.gme_threshold {
                        self.gme_us = Some(exec_us);
                        self.gme_run = run;
                        became_gme = true;
                    }
                }
            }
        }

        // Leaking debit (§3.3.2): once the threshold run (Number_Of_Cores) is
        // crossed, a constant debit drains the credit accumulated so far.
        if run == self.config.n_cores {
            let remaining_runs = (self.config.extra_runs * self.config.n_cores).max(1);
            self.leaking_debit = Some(self.credit / remaining_runs as f64);
        }
        if run > self.config.n_cores {
            if let Some(leak) = self.leaking_debit {
                self.debit += leak;
            }
        }

        let obs = RunObservation {
            run,
            exec_us,
            roi,
            wait_share,
            is_outlier,
            credit: self.credit,
            debit: self.debit,
            balance: self.balance(),
            became_gme,
        };
        self.observations.push(obs.clone());
        obs
    }

    /// Current balance of convergence runs (`credit − debit`).
    pub fn balance(&self) -> f64 {
        self.credit - self.debit
    }

    /// True while the algorithm should keep invoking the query
    /// (`credit − debit > 0`, bounded by the hard run cap).
    pub fn should_continue(&self) -> bool {
        self.balance() > 0.0 && self.run_index < self.config.max_runs
    }

    /// Serial (0th run) execution time.
    pub fn serial_us(&self) -> Option<u64> {
        self.serial_us
    }

    /// Global minimum execution time, per the paper's GME rule.
    pub fn gme_us(&self) -> Option<u64> {
        self.gme_us
    }

    /// Run index at which the GME was recorded.
    pub fn gme_run(&self) -> usize {
        self.gme_run
    }

    /// True minimum execution time observed (including the serial run).
    pub fn best_us(&self) -> Option<u64> {
        self.best_us
    }

    /// Run index of the true minimum.
    pub fn best_run(&self) -> usize {
        self.best_run
    }

    /// Number of adaptive runs recorded so far (excluding the serial run).
    pub fn runs(&self) -> usize {
        self.run_index
    }

    /// Per-run observations, including the serial run.
    pub fn observations(&self) -> &[RunObservation] {
        &self.observations
    }

    /// The leaking debit, once activated.
    pub fn leaking_debit(&self) -> Option<f64> {
        self.leaking_debit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(cores: usize) -> AdaptiveConfig {
        AdaptiveConfig::for_cores(cores)
    }

    #[test]
    fn first_improving_run_accumulates_large_credit() {
        // §3.3.1: the credit after the first run approaches Number_Of_Cores + 1.
        let mut c = ConvergenceState::new(config(16));
        c.record_serial(10_000);
        let obs = c.record_run(1_000); // 10x improvement => ROI = 0.9
        assert!(obs.roi > 0.89 && obs.roi < 0.91);
        assert!(c.balance() > 14.0 && c.balance() < 17.0);
        assert!(c.should_continue());
        assert_eq!(c.gme_us(), Some(1_000));
        assert_eq!(c.gme_run(), 1);
        assert!(obs.became_gme);
    }

    #[test]
    fn worsening_runs_drain_the_balance_and_converge() {
        let mut c = ConvergenceState::new(config(4));
        c.record_serial(10_000);
        c.record_run(9_000); // small improvement
        let mut runs = 1;
        while c.should_continue() && runs < 100 {
            c.record_run(9_500); // oscillating, no further improvement
            runs += 1;
        }
        assert!(!c.should_continue(), "algorithm must converge");
        assert!(runs < 100, "must converge well before the safety cap");
        assert_eq!(c.best_us(), Some(9_000));
        assert_eq!(c.best_run(), 1);
    }

    #[test]
    fn leaking_debit_forces_convergence_on_a_stable_system() {
        // §3.3.2: monotonically but ever-more-slowly improving runs on a
        // stable system would otherwise never converge.
        let cores = 8;
        let mut c = ConvergenceState::new(config(cores));
        c.record_serial(100_000);
        let mut exec = 50_000u64;
        let mut runs = 0;
        while c.should_continue() && runs < 500 {
            c.record_run(exec);
            // Tiny improvements forever.
            exec = (exec as f64 * 0.999) as u64;
            runs += 1;
        }
        assert!(!c.should_continue(), "leaking debit must drain the credit");
        assert!(runs >= cores, "at least Number_Of_Cores runs are used");
        assert!(
            runs <= AdaptiveConfig::for_cores(cores).upper_bound_runs() + cores,
            "converged after {runs} runs, beyond the paper's upper bound"
        );
        assert!(c.leaking_debit().is_some());
    }

    #[test]
    fn convergence_respects_the_paper_bounds_for_a_typical_curve() {
        // A curve like Fig. 11: steep improvement, plateau, slight noise.
        let cores = 8;
        let cfg = config(cores);
        let mut c = ConvergenceState::new(cfg.clone());
        c.record_serial(80_000);
        let curve = [40_000u64, 27_000, 20_000, 16_000, 16_500, 15_800, 15_900, 15_850];
        let mut i = 0;
        let mut runs = 0;
        while c.should_continue() && runs < cfg.max_runs {
            let exec = if i < curve.len() { curve[i] } else { 15_850 + (runs as u64 % 7) * 10 };
            c.record_run(exec);
            i += 1;
            runs += 1;
        }
        assert!(!c.should_continue());
        assert!(runs >= cfg.lower_bound_runs() - 1);
        assert!(runs <= cfg.upper_bound_runs() + cores);
        // GME close to the true minimum.
        let best = c.best_us().unwrap();
        let gme = c.gme_us().unwrap();
        assert!(gme as f64 <= best as f64 * 1.10, "gme {gme} far from best {best}");
    }

    #[test]
    fn outlier_peaks_do_not_stop_the_search() {
        // §3.3.3: a run much slower than the serial execution is a noise peak.
        let mut c = ConvergenceState::new(config(8));
        c.record_serial(10_000);
        c.record_run(5_000);
        let balance_before = c.balance();
        let obs = c.record_run(50_000); // peak, 5x the serial time
        assert!(obs.is_outlier);
        assert_eq!(obs.roi, 0.0);
        // The peak neither adds credit nor debit (leak may still apply later).
        assert!((c.balance() - balance_before).abs() < 1e-9);
        assert!(c.should_continue());
        // The next normal run is measured against the pre-peak run.
        let next = c.record_run(4_000);
        assert!(!next.is_outlier);
        assert!(next.roi > 0.0);
        assert_eq!(c.best_us(), Some(4_000));
    }

    #[test]
    fn gme_threshold_discards_marginal_improvements() {
        let mut cfg = config(8);
        cfg.gme_threshold = 0.05;
        let mut c = ConvergenceState::new(cfg);
        c.record_serial(100_000);
        c.record_run(50_000); // GME = 50_000 (improvement 50%)
        assert_eq!(c.gme_us(), Some(50_000));
        // 2% better: below the 5% threshold, GME unchanged.
        let obs = c.record_run(48_000);
        assert!(!obs.became_gme);
        assert_eq!(c.gme_us(), Some(50_000));
        // 10% better than serial relative improvement: becomes the new GME.
        let obs = c.record_run(40_000);
        assert!(obs.became_gme);
        assert_eq!(c.gme_us(), Some(40_000));
        assert_eq!(c.gme_run(), 3);
        // The true best still tracks the actual minimum.
        assert_eq!(c.best_us(), Some(40_000));
        c.record_run(39_000);
        assert_eq!(c.best_us(), Some(39_000));
        assert_eq!(c.gme_us(), Some(40_000));
    }

    #[test]
    fn observations_are_recorded_in_order() {
        let mut c = ConvergenceState::new(config(2));
        c.record_serial(1_000);
        c.record_run(800);
        c.record_run(700);
        let obs = c.observations();
        assert_eq!(obs.len(), 3);
        assert_eq!(obs[0].run, 0);
        assert_eq!(obs[2].run, 2);
        assert_eq!(c.runs(), 2);
        assert_eq!(c.serial_us(), Some(1_000));
    }

    #[test]
    fn contended_slowdowns_debit_less_than_quiet_slowdowns() {
        // Two identical histories; in one, the worsening run is reported as
        // 80% queue wait. With the default 0.5 discount its debit must be
        // scaled by 1 − 0.5·0.8 = 0.6.
        let mut quiet = ConvergenceState::new(config(8));
        let mut contended = ConvergenceState::new(config(8));
        for c in [&mut quiet, &mut contended] {
            c.record_serial(10_000);
            c.record_run(5_000);
        }
        let q = quiet.record_run(8_000);
        let c = contended.record_run_contended(8_000, 0.8);
        assert_eq!(q.roi, c.roi, "ROI itself is contention-independent");
        assert!(c.debit < q.debit, "contended debit {} not below quiet debit {}", c.debit, q.debit);
        let quiet_debit = q.debit;
        let contended_debit = c.debit;
        assert!(
            (contended_debit - quiet_debit * 0.6).abs() < 1e-9,
            "expected debit scale 0.6: quiet {quiet_debit}, contended {contended_debit}"
        );
        assert!(contended.balance() > quiet.balance());
        assert_eq!(c.wait_share, 0.8);
        assert_eq!(q.wait_share, 0.0);
    }

    #[test]
    fn contention_never_scales_credits_and_clamps_inputs() {
        let mut c = ConvergenceState::new(config(4));
        c.record_serial(10_000);
        // Improving run with (nonsense) wait share: credit must be the full
        // ROI × cores regardless.
        let obs = c.record_run_contended(5_000, 7.5);
        assert!(obs.roi > 0.0);
        assert_eq!(obs.wait_share, 1.0, "wait share is clamped to [0, 1]");
        let mut reference = ConvergenceState::new(config(4));
        reference.record_serial(10_000);
        let ref_obs = reference.record_run(5_000);
        assert_eq!(obs.credit, ref_obs.credit);
        // With discount 1 and wait share 1, a worsening run adds no debit.
        let mut cfg = config(4);
        cfg.contention_discount = 1.0;
        let mut full = ConvergenceState::new(cfg);
        full.record_serial(10_000);
        full.record_run(5_000);
        let b = full.balance();
        let obs = full.record_run_contended(9_000, 1.0);
        assert!(!obs.is_outlier);
        assert_eq!(full.balance(), b, "fully-contended slowdown must not debit");
    }

    #[test]
    fn zero_times_are_clamped() {
        let mut c = ConvergenceState::new(config(2));
        c.record_serial(0);
        assert_eq!(c.serial_us(), Some(1));
        let obs = c.record_run(0);
        assert_eq!(obs.exec_us, 1);
    }

    #[test]
    #[should_panic(expected = "record_serial")]
    fn recording_a_run_before_the_serial_run_panics() {
        let mut c = ConvergenceState::new(config(2));
        c.record_run(100);
    }
}
