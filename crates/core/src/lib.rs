//! Adaptive query parallelization — the paper's primary contribution.
//!
//! "We introduce adaptive parallelization, which exploits execution feedback
//! to gradually increase the level of parallelism until we reach a
//! sweet-spot. After each query has been executed, we replace an expensive
//! operator (or a sequence) by a faster parallel version, i.e. the query plan
//! is morphed into a faster one. A convergence algorithm is designed to reach
//! the optimum as quick as possible." (Gawade & Kersten, EDBT 2016)
//!
//! The crate is organized along the paper's architecture (§2, §3):
//!
//! * [`expensive`] — identification of the most expensive (and still
//!   mutable) operator from the previous run's profile;
//! * [`mutation`] — the basic, medium and advanced plan mutations, the
//!   dynamic-partition splitting helpers, and the plan-explosion guard;
//! * [`convergence`] — the credit/debit convergence algorithm with leaking
//!   debit, outlier handling and GME tracking;
//! * [`history`] — plan administration (choosing the fastest plan from the
//!   plan history);
//! * [`optimizer`] — the run loop (paper Fig. 2) driving it all;
//! * [`config`] / [`report`] — tunables and result structures.

#![warn(missing_docs)]

pub mod config;
pub mod convergence;
pub mod error;
pub mod expensive;
pub mod history;
pub mod mutation;
pub mod optimizer;
pub mod report;

pub use config::AdaptiveConfig;
pub use convergence::{ConvergenceState, RunObservation};
pub use error::{CoreError, Result};
pub use expensive::{most_expensive, ranked_candidates, Candidate, TargetAction};
pub use history::{PlanHistory, PlanVersion};
pub use mutation::{mutate_most_expensive, MutationKind, MutationOutcome};
pub use optimizer::AdaptiveOptimizer;
pub use report::{AdaptiveReport, AdaptiveRunRecord};
