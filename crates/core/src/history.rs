//! Plan administration: the history of plans produced by adaptive runs.
//!
//! One of the paper's three infrastructure components is "the plan
//! administration policies to choose a suitable plan from the plan history"
//! (§2). The history stores every plan version together with its measured
//! execution time; the policy implemented here (and used by the paper's
//! evaluation) picks the plan with the minimal execution time.

use apq_engine::Plan;

/// One entry of the plan history.
#[derive(Debug, Clone)]
pub struct PlanVersion {
    /// Run index that executed this plan (0 is the serial plan).
    pub run: usize,
    /// The plan as it was executed in that run.
    pub plan: Plan,
    /// Measured wall-clock execution time, microseconds.
    pub exec_us: u64,
    /// Number of live operators in the plan.
    pub node_count: usize,
}

/// History of all plan versions produced during one adaptive optimization.
#[derive(Debug, Clone, Default)]
pub struct PlanHistory {
    versions: Vec<PlanVersion>,
}

impl PlanHistory {
    /// Empty history.
    pub fn new() -> Self {
        PlanHistory::default()
    }

    /// Records the plan executed at `run` with its measured time.
    pub fn record(&mut self, run: usize, plan: &Plan, exec_us: u64) {
        self.versions.push(PlanVersion {
            run,
            plan: plan.clone(),
            exec_us,
            node_count: plan.node_count(),
        });
    }

    /// Number of recorded versions.
    pub fn len(&self) -> usize {
        self.versions.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.versions.is_empty()
    }

    /// The version executed at a specific run index.
    pub fn at_run(&self, run: usize) -> Option<&PlanVersion> {
        self.versions.iter().find(|v| v.run == run)
    }

    /// All versions in recording order.
    pub fn versions(&self) -> &[PlanVersion] {
        &self.versions
    }

    /// The fastest version seen so far (the plan administration policy).
    pub fn best(&self) -> Option<&PlanVersion> {
        self.versions.iter().min_by_key(|v| v.exec_us)
    }

    /// The most recent version.
    pub fn latest(&self) -> Option<&PlanVersion> {
        self.versions.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_engine::plan::OperatorSpec;

    fn plan_with_nodes(n: usize) -> Plan {
        let mut p = Plan::new();
        let mut last = None;
        for _ in 0..n {
            let id = p.add(
                OperatorSpec::ScanColumn {
                    table: "t".into(),
                    column: "a".into(),
                    range: RowRange::new(0, 10),
                },
                vec![],
            );
            last = Some(id);
        }
        p.set_root(last.expect("at least one node"));
        p
    }

    #[test]
    fn records_and_selects_best() {
        let mut h = PlanHistory::new();
        assert!(h.is_empty());
        assert!(h.best().is_none());
        h.record(0, &plan_with_nodes(1), 1000);
        h.record(1, &plan_with_nodes(3), 600);
        h.record(2, &plan_with_nodes(5), 800);
        assert_eq!(h.len(), 3);
        assert!(!h.is_empty());
        assert_eq!(h.best().unwrap().run, 1);
        assert_eq!(h.best().unwrap().exec_us, 600);
        assert_eq!(h.latest().unwrap().run, 2);
        assert_eq!(h.at_run(0).unwrap().node_count, 1);
        assert_eq!(h.at_run(2).unwrap().node_count, 5);
        assert!(h.at_run(7).is_none());
        assert_eq!(h.versions().len(), 3);
    }

    #[test]
    fn ties_resolve_to_the_earliest_version() {
        let mut h = PlanHistory::new();
        h.record(0, &plan_with_nodes(1), 500);
        h.record(1, &plan_with_nodes(2), 500);
        assert_eq!(h.best().unwrap().run, 0);
    }
}
