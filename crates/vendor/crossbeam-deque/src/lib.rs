//! Offline shim for the `crossbeam-deque` crate.
//!
//! Implements the `Worker` / `Stealer` / `Injector` API surface used by the
//! engine's work-stealing scheduler. The build environment has no network
//! access, so instead of the Chase–Lev lock-free deque this shim uses a
//! `Mutex<VecDeque>` per queue — the same operational semantics (owner pushes
//! and pops one end without contention in the common case, thieves steal from
//! the other end, the injector is a shared FIFO), with lock-based rather than
//! lock-free progress. At the worker counts this engine runs (≤ a few dozen)
//! the mutex is uncontended nearly always; swap the path dependency for the
//! real crates.io `crossbeam-deque` on a networked machine for the lock-free
//! version — no call-site changes are needed.
//!
//! Semantic notes mirrored from the real crate:
//! * a FIFO `Worker` pops from the front (cooperative, queue-like), a LIFO
//!   `Worker` pops from the back (stack-like, better cache locality);
//! * `Stealer::steal` always takes from the *front* (the end furthest from a
//!   LIFO owner's hot end);
//! * `Injector` is a shared FIFO for tasks submitted from outside the pool.

use std::collections::VecDeque;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Result of a steal attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Steal<T> {
    /// The queue was empty.
    Empty,
    /// One task was stolen.
    Success(T),
    /// The operation lost a race and should be retried.
    Retry,
}

impl<T> Steal<T> {
    /// True when the steal produced a task.
    pub fn is_success(&self) -> bool {
        matches!(self, Steal::Success(_))
    }

    /// True when the queue was observed empty.
    pub fn is_empty(&self) -> bool {
        matches!(self, Steal::Empty)
    }

    /// True when the caller should retry.
    pub fn is_retry(&self) -> bool {
        matches!(self, Steal::Retry)
    }

    /// Extracts the stolen task, if any.
    pub fn success(self) -> Option<T> {
        match self {
            Steal::Success(t) => Some(t),
            _ => None,
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Flavor {
    Fifo,
    Lifo,
}

struct Buffer<T> {
    deque: Mutex<VecDeque<T>>,
}

impl<T> Buffer<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.deque.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// The owner side of a work-stealing deque. Not `Sync`: only the owning
/// worker thread pushes and pops; other threads steal through [`Stealer`]s.
pub struct Worker<T> {
    buffer: Arc<Buffer<T>>,
    flavor: Flavor,
    // Mirrors the real crate: the Worker is Send but not Sync.
    _not_sync: std::marker::PhantomData<std::cell::Cell<()>>,
}

/// The thief side of a work-stealing deque; clonable and shareable.
pub struct Stealer<T> {
    buffer: Arc<Buffer<T>>,
}

impl<T> Worker<T> {
    /// Creates a FIFO deque (owner pops the oldest task first).
    pub fn new_fifo() -> Self {
        Worker {
            buffer: Arc::new(Buffer { deque: Mutex::new(VecDeque::new()) }),
            flavor: Flavor::Fifo,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// Creates a LIFO deque (owner pops the most recently pushed task first).
    pub fn new_lifo() -> Self {
        Worker {
            buffer: Arc::new(Buffer { deque: Mutex::new(VecDeque::new()) }),
            flavor: Flavor::Lifo,
            _not_sync: std::marker::PhantomData,
        }
    }

    /// Creates a [`Stealer`] for this deque.
    pub fn stealer(&self) -> Stealer<T> {
        Stealer { buffer: Arc::clone(&self.buffer) }
    }

    /// Pushes a task onto the owner's end.
    pub fn push(&self, task: T) {
        self.buffer.lock().push_back(task);
    }

    /// Pops a task from the owner's end.
    pub fn pop(&self) -> Option<T> {
        let mut deque = self.buffer.lock();
        match self.flavor {
            Flavor::Fifo => deque.pop_front(),
            Flavor::Lifo => deque.pop_back(),
        }
    }

    /// True when the deque holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }
}

impl<T> fmt::Debug for Worker<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Worker { .. }")
    }
}

impl<T> Stealer<T> {
    /// Steals one task from the front of the deque.
    pub fn steal(&self) -> Steal<T> {
        match self.buffer.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks (about half the deque), pushing them onto
    /// `dest` and returning one of them.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut src = self.buffer.lock();
        let n = src.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = n.div_ceil(2);
        let first = src.pop_front().expect("n > 0");
        if take > 1 {
            let mut dst = dest.buffer.lock();
            for _ in 1..take {
                if let Some(t) = src.pop_front() {
                    dst.push_back(t);
                }
            }
        }
        Steal::Success(first)
    }

    /// True when the deque holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }
}

impl<T> Clone for Stealer<T> {
    fn clone(&self) -> Self {
        Stealer { buffer: Arc::clone(&self.buffer) }
    }
}

impl<T> fmt::Debug for Stealer<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Stealer { .. }")
    }
}

/// A shared FIFO into which tasks can be injected from any thread.
pub struct Injector<T> {
    buffer: Buffer<T>,
}

impl<T> Injector<T> {
    /// Creates an empty injector queue.
    pub fn new() -> Self {
        Injector { buffer: Buffer { deque: Mutex::new(VecDeque::new()) } }
    }

    /// Enqueues a task.
    pub fn push(&self, task: T) {
        self.buffer.lock().push_back(task);
    }

    /// Steals one task from the front of the queue.
    pub fn steal(&self) -> Steal<T> {
        match self.buffer.lock().pop_front() {
            Some(task) => Steal::Success(task),
            None => Steal::Empty,
        }
    }

    /// Steals a batch of tasks, moving them to `dest` and returning one.
    pub fn steal_batch_and_pop(&self, dest: &Worker<T>) -> Steal<T> {
        let mut src = self.buffer.lock();
        let n = src.len();
        if n == 0 {
            return Steal::Empty;
        }
        let take = n.div_ceil(2);
        let first = src.pop_front().expect("n > 0");
        if take > 1 {
            let mut dst = dest.buffer.lock();
            for _ in 1..take {
                if let Some(t) = src.pop_front() {
                    dst.push_back(t);
                }
            }
        }
        Steal::Success(first)
    }

    /// True when the queue holds no tasks.
    pub fn is_empty(&self) -> bool {
        self.buffer.lock().is_empty()
    }

    /// Number of queued tasks.
    pub fn len(&self) -> usize {
        self.buffer.lock().len()
    }
}

impl<T> Default for Injector<T> {
    fn default() -> Self {
        Injector::new()
    }
}

impl<T> fmt::Debug for Injector<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Injector { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_worker_pops_oldest_first() {
        let w = Worker::new_fifo();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.len(), 3);
        assert_eq!(w.pop(), Some(1));
        assert_eq!(w.pop(), Some(2));
        assert_eq!(w.pop(), Some(3));
        assert_eq!(w.pop(), None);
        assert!(w.is_empty());
    }

    #[test]
    fn lifo_worker_pops_newest_first_but_thieves_steal_oldest() {
        let w = Worker::new_lifo();
        let s = w.stealer();
        w.push(1);
        w.push(2);
        w.push(3);
        assert_eq!(w.pop(), Some(3));
        assert_eq!(s.steal(), Steal::Success(1));
        assert_eq!(w.pop(), Some(2));
        assert!(s.steal().is_empty());
    }

    #[test]
    fn steal_batch_moves_about_half() {
        let w = Worker::new_fifo();
        for i in 0..8 {
            w.push(i);
        }
        let thief = Worker::new_fifo();
        let got = w.stealer().steal_batch_and_pop(&thief);
        assert_eq!(got, Steal::Success(0));
        assert_eq!(thief.len(), 3); // half of 8 is 4: 1 returned + 3 moved
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn injector_is_fifo_across_threads() {
        let inj = std::sync::Arc::new(Injector::new());
        for i in 0..100 {
            inj.push(i);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let inj = std::sync::Arc::clone(&inj);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    loop {
                        match inj.steal() {
                            Steal::Success(v) => got.push(v),
                            Steal::Empty => break,
                            Steal::Retry => continue,
                        }
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i32> = handles.into_iter().flat_map(|h| h.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn steal_helpers() {
        let s: Steal<i32> = Steal::Empty;
        assert!(s.is_empty() && !s.is_success() && !s.is_retry());
        assert_eq!(Steal::Success(5).success(), Some(5));
        assert_eq!(Steal::<i32>::Retry.success(), None);
        assert!(Steal::<i32>::Retry.is_retry());
    }
}
