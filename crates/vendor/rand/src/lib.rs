//! Offline shim for the `rand` crate (0.8-style API subset).
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of `rand` it uses: the [`Rng`] extension trait with `gen_range` /
//! `gen_bool` / `gen`, [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`].
//! The generator core is xoshiro256** seeded through SplitMix64 — not
//! cryptographic (neither is this workspace's use of it), statistically solid
//! for data generation and noise injection, and fully deterministic per seed,
//! which is all the experiments require. Integer range sampling uses Lemire's
//! widening-multiply method (no modulo bias at the widths used here).
//!
//! Swap this path dependency for the real crates.io `rand` on a networked
//! machine; call sites are source-compatible. Note the *streams* differ from
//! the real `StdRng` (ChaCha12), so regenerated datasets will contain
//! different values — fine for this workspace, where only determinism per
//! seed matters, not any specific stream.

pub mod rngs;

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;

    /// Next uniform 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing extension methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from a range (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let p = p.clamp(0.0, 1.0);
        // Compare against a uniform f64 in [0, 1).
        self.sample_f64() < p
    }

    /// Samples a value of a supported type uniformly over its full domain
    /// (`f64` is uniform in `[0, 1)`, matching `rand`'s `Standard`).
    fn gen<T: SampleUniformFull>(&mut self) -> T {
        T::sample_full(self)
    }

    /// Uniform f64 in `[0, 1)`.
    #[doc(hidden)]
    fn sample_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types samplable over their full domain via [`Rng::gen`].
pub trait SampleUniformFull {
    /// Samples one value.
    fn sample_full<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl SampleUniformFull for f64 {
    fn sample_full<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.sample_f64()
    }
}

impl SampleUniformFull for u64 {
    fn sample_full<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleUniformFull for bool {
    fn sample_full<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform u64 in `[0, n)` without modulo bias (Lemire's method, with the
/// rejection loop).
fn uniform_below(rng: &mut (impl RngCore + ?Sized), n: u64) -> u64 {
    debug_assert!(n > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(n as u128);
        let lo = m as u64;
        if lo < n {
            // Rejection zone: only `n % 2^64 / n` fraction of draws loop.
            let threshold = n.wrapping_neg() % n;
            if lo < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_int_range {
    ($($t:ty => $u:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                let offset = uniform_below(rng, span as u64) as $u;
                (self.start as $u).wrapping_add(offset) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as $u).wrapping_sub(start as $u);
                if span == <$u>::MAX {
                    return rng.next_u64() as $t;
                }
                let offset = uniform_below(rng, (span as u64) + 1) as $u;
                (start as $u).wrapping_add(offset) as $t
            }
        }
    )*};
}

impl_int_range!(
    i8 => u8, i16 => u16, i32 => u32, i64 => u64,
    u8 => u8, u16 => u16, u32 => u32, u64 => u64,
    isize => usize, usize => usize,
);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange<f32> for Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        let u = (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32);
        self.start + u * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = r.gen_range(-50i64..50);
            assert!((-50..50).contains(&v));
            let u = r.gen_range(0usize..17);
            assert!(u < 17);
            let w = r.gen_range(3u64..=9);
            assert!((3..=9).contains(&w));
            let f = r.gen_range(2.0f64..4.0);
            assert!((2.0..4.0).contains(&f));
            let i = r.gen_range(1i32..6);
            assert!((1..6).contains(&i));
        }
    }

    #[test]
    fn range_sampling_covers_the_domain() {
        let mut r = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s), "some bucket never sampled: {seen:?}");
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 produced {hits}/10000 hits");
    }

    #[test]
    fn mean_of_uniform_is_centered() {
        let mut r = StdRng::seed_from_u64(99);
        let n = 20_000;
        let sum: i64 = (0..n).map(|_| r.gen_range(0i64..1000)).sum();
        let mean = sum as f64 / n as f64;
        assert!((480.0..520.0).contains(&mean), "mean {mean} far from 499.5");
    }

    #[test]
    fn gen_full_domain() {
        let mut r = StdRng::seed_from_u64(5);
        let f: f64 = r.gen();
        assert!((0.0..1.0).contains(&f));
        let _: u64 = r.gen();
        let _: bool = r.gen();
    }
}
