//! Generator implementations.

use crate::{RngCore, SeedableRng};

/// The workspace's standard RNG: xoshiro256** seeded via SplitMix64.
///
/// Deterministic per seed (the only property the experiments rely on); the
/// stream differs from the real `rand::rngs::StdRng` (ChaCha12).
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        StdRng { s }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        // xoshiro256** by Blackman & Vigna (public domain reference algorithm).
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nonzero_state_from_any_seed() {
        // A xoshiro state of all zeros would be a fixed point; SplitMix64
        // seeding never produces it, even for seed 0.
        for seed in [0u64, 1, u64::MAX] {
            let r = StdRng::seed_from_u64(seed);
            assert!(r.s.iter().any(|&w| w != 0));
        }
    }

    #[test]
    fn successive_words_differ() {
        let mut r = StdRng::seed_from_u64(0);
        let a = r.next_u64();
        let b = r.next_u64();
        let c = r.next_u64();
        assert!(a != b && b != c);
        assert_ne!(r.next_u32(), 0u32.wrapping_sub(1));
    }
}
