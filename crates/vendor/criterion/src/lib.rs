//! Offline shim for the `criterion` benchmarking crate.
//!
//! Implements the API surface the workspace's benches use — `Criterion`,
//! benchmark groups with `sample_size` / `measurement_time` / `warm_up_time`,
//! `bench_function` / `bench_with_input`, `Bencher::iter`, `BenchmarkId`, and
//! the `criterion_group!` / `criterion_main!` macros — with a deliberately
//! simple measurement loop: each benchmark runs `sample_size` samples (or
//! until the measurement-time budget is spent, whichever comes first) and
//! prints min / median / mean wall-clock times. No statistical regression
//! analysis, plots, or HTML reports; swap the path dependency for the real
//! crates.io `criterion` on a networked machine for those.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id with a function name and a parameter rendered via `Display`.
    pub fn new(function_id: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function_id.into(), parameter) }
    }

    /// Id carrying only a parameter.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measured routine.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measurement_time: Duration,
}

impl Bencher {
    /// Measures `routine`: one warm-up call, then up to `sample_size` timed
    /// samples bounded by the measurement-time budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        let budget_start = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("bench {group}/{id}: no samples");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort_unstable();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "bench {group}/{id}: min {:.3} ms, median {:.3} ms, mean {:.3} ms ({} samples)",
        min.as_secs_f64() * 1e3,
        median.as_secs_f64() * 1e3,
        mean.as_secs_f64() * 1e3,
        sorted.len(),
    );
}

/// Benchmark registry and entry point (mirrors `criterion::Criterion`).
pub struct Criterion {
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { default_sample_size: 10, default_measurement_time: Duration::from_secs(3) }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
            measurement_time: self.default_measurement_time,
        };
        f(&mut b);
        report("", id, &b.samples);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        let measurement_time = self.default_measurement_time;
        BenchmarkGroup { _parent: self, name: name.into(), sample_size, measurement_time }
    }

    /// Sets the default sample count (builder style, like real criterion).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.default_sample_size = n.max(1);
        self
    }

    /// Sets the default measurement-time budget.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.default_measurement_time = t;
        self
    }

    /// Accepted for compatibility; warm-up is a single untimed call in
    /// [`Bencher::iter`].
    pub fn warm_up_time(self, _t: Duration) -> Self {
        self
    }

    /// Accepted for CLI compatibility; this shim has no argument parsing.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Hook real criterion calls after all groups ran; no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of related benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the measurement-time budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Accepted for compatibility; warm-up is a single untimed call in
    /// [`Bencher::iter`].
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
        };
        f(&mut b, input);
        report(&self.name, &id.id, &b.samples);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, as in real criterion. Supports both
/// the positional form and the `name = ..; config = ..; targets = ..` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, as in real criterion.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 5,
            measurement_time: Duration::from_secs(1),
        };
        let mut count = 0u64;
        b.iter(|| {
            count += 1;
            black_box(count)
        });
        assert_eq!(b.samples.len(), 5);
        assert_eq!(count, 6); // 1 warm-up + 5 samples
    }

    #[test]
    fn measurement_budget_caps_samples() {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: 1_000_000,
            measurement_time: Duration::from_millis(20),
        };
        b.iter(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(b.samples.len() < 1_000_000);
        assert!(!b.samples.is_empty());
    }

    #[test]
    fn ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("q6").to_string(), "q6");
        let id: BenchmarkId = "plain".into();
        assert_eq!(id.to_string(), "plain");
    }

    #[test]
    fn groups_and_functions_run() {
        let mut c = Criterion::default().sample_size(2).measurement_time(Duration::from_millis(50));
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
        let mut g = c.benchmark_group("g");
        g.sample_size(2).measurement_time(Duration::from_millis(10)).warm_up_time(Duration::ZERO);
        g.bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("with", 1), &7u64, |b, &x| b.iter(|| black_box(x * 2)));
        g.finish();
    }
}
