//! Runner configuration.

/// Configuration of a `proptest!` block (subset of the real crate's knobs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
    /// Accepted for source compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
    /// Accepted for source compatibility; this shim keeps no failure file.
    pub failure_persistence: Option<()>,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256 cases; the properties in this
        // workspace execute whole query plans per case, so the default is
        // kept deliberately lower. Tests that need a specific count set it
        // via `#![proptest_config(..)]`.
        ProptestConfig { cases: 32, max_shrink_iters: 0, failure_persistence: None }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_update_syntax() {
        let d = ProptestConfig::default();
        assert_eq!(d.cases, 32);
        let c = ProptestConfig { cases: 12, ..ProptestConfig::default() };
        assert_eq!(c.cases, 12);
        assert_eq!(c.max_shrink_iters, d.max_shrink_iters);
    }
}
