//! Offline shim for the `proptest` crate.
//!
//! The build environment has no network access, so the workspace vendors the
//! slice of proptest's API its property tests use:
//!
//! * the [`proptest!`] macro (with optional `#![proptest_config(..)]` inner
//!   attribute) generating one `#[test]` per property;
//! * [`strategy::Strategy`] implementations for integer/float ranges, tuples of
//!   strategies, and [`collection::vec`];
//! * [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig`] with the `cases` knob.
//!
//! Differences from real proptest, deliberately accepted for an offline
//! build: failing cases are **not shrunk** (the panic message prints the
//! generated inputs via `Debug` instead), there is no failure persistence
//! file, and generation is plain uniform sampling. Every property still runs
//! `cases` times with deterministic per-test seeding (derived from the test
//! name), so failures reproduce exactly across runs and machines.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The conventional glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace alias so `prop::collection::vec(..)` works after a glob
    /// import of the prelude, as with real proptest.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Deterministic seed for a named property test: FNV-1a over the identifying
/// string, so every `(file, test, case)` triple reproduces the same inputs on
/// every run and machine.
#[doc(hidden)]
pub fn seed_for(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// Runs one property `cases` times. Kept as a function (rather than inlined
/// in the macro) so panics carry a uniform message and the macro body stays
/// small.
#[doc(hidden)]
pub fn run_property<F: FnMut(u64)>(name: &str, cases: u32, mut body: F) {
    for case in 0..cases as u64 {
        body(seed_for(name, case));
    }
}

/// Asserts a condition inside a property, reporting the failing expression.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond, "property assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_ne!($left, $right, $($fmt)*)
    };
}

/// Defines property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    // Leading `#![proptest_config(expr)]` sets the config for every property
    // in the block.
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let ident = concat!(module_path!(), "::", stringify!($name));
            $crate::run_property(ident, config.cases, |seed| {
                let mut rng = $crate::strategy::new_rng(seed);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                // Rendered eagerly: the body may move the inputs, and on a
                // panic there is no shrinking — the printed inputs are the
                // reproduction recipe.
                let mut inputs = ::std::string::String::new();
                $(inputs.push_str(&format!("  {} = {:?}\n", stringify!($arg), &$arg));)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(move || $body));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case failed for {} (seed {}) with inputs:\n{}",
                        ident, seed, inputs
                    );
                    ::std::panic::resume_unwind(panic);
                }
            });
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        /// Sampled integers stay inside the requested ranges.
        #[test]
        fn ranges_in_bounds(a in -100i64..100, b in 0usize..50, c in 1u64..=9) {
            prop_assert!((-100..100).contains(&a));
            prop_assert!(b < 50);
            prop_assert!((1..=9).contains(&c));
        }

        /// Vec strategies honour both the length range and element range.
        #[test]
        fn vec_lengths_and_elements(v in prop::collection::vec(-5i64..5, 2..10)) {
            prop_assert!((2..10).contains(&v.len()));
            for x in &v {
                prop_assert!((-5..5).contains(x));
            }
        }

        /// Tuple strategies sample element-wise.
        #[test]
        fn tuples_sample_elementwise(pairs in prop::collection::vec((0i64..10, -3i64..3), 1..20)) {
            for (a, b) in &pairs {
                prop_assert!((0..10).contains(a), "a out of range: {}", a);
                prop_assert!((-3..3).contains(b));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 3, ..ProptestConfig::default() })]

        #[test]
        fn config_cases_is_honoured(x in 0u64..1000) {
            // Three cases run; just touch the input.
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_seeding() {
        assert_eq!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 0));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::b", 1));
        assert_ne!(crate::seed_for("a::b", 0), crate::seed_for("a::c", 0));
    }

    #[test]
    fn just_yields_its_value() {
        let mut rng = crate::strategy::new_rng(1);
        assert_eq!(Strategy::sample(&Just(41), &mut rng), 41);
    }
}
