//! Value-generation strategies (sampling only; no shrinking).

use std::ops::{Range, RangeInclusive};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The RNG driving generation; one per test case, deterministically seeded.
pub type TestRng = StdRng;

/// Creates the per-case RNG (used by the generated test body).
#[doc(hidden)]
pub fn new_rng(seed: u64) -> TestRng {
    StdRng::seed_from_u64(seed)
}

/// A source of generated values. Unlike real proptest this is sampling-only:
/// `sample` draws one value; failing inputs are reported, not shrunk.
pub trait Strategy {
    /// Type of the generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Strategy producing a single fixed value.
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!((A, B), (A, B, C), (A, B, C, D), (A, B, C, D, E));

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_strategies_sample_in_bounds() {
        let mut rng = new_rng(5);
        for _ in 0..500 {
            let v = (10i64..20).sample(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.0f64..1.0).sample(&mut rng);
            assert!((0.0..1.0).contains(&f));
            let u = (0u64..=3).sample(&mut rng);
            assert!(u <= 3);
        }
    }

    #[test]
    fn tuple_strategy_samples_elementwise() {
        let mut rng = new_rng(9);
        for _ in 0..100 {
            let (a, b, c) = ((0i64..4), (10usize..12), (0u32..2)).sample(&mut rng);
            assert!(a < 4 && (10..12).contains(&b) && c < 2);
        }
    }
}
