//! Collection strategies.

use std::ops::Range;

use rand::Rng;

use crate::strategy::{Strategy, TestRng};

/// Strategy generating `Vec`s with a length drawn from `len` and elements
/// drawn from `element`.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// Creates a [`VecStrategy`]: `vec(element_strategy, min_len..max_len)`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "vec strategy needs a non-empty length range");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.gen_range(self.len.clone());
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::new_rng;

    #[test]
    fn vec_strategy_honours_bounds() {
        let strat = vec(0i64..5, 1..9);
        let mut rng = new_rng(3);
        let mut lens = std::collections::HashSet::new();
        for _ in 0..300 {
            let v = strat.sample(&mut rng);
            assert!((1..9).contains(&v.len()));
            assert!(v.iter().all(|x| (0..5).contains(x)));
            lens.insert(v.len());
        }
        assert!(lens.len() > 3, "length range under-sampled: {lens:?}");
    }

    #[test]
    fn nested_vec_of_tuples() {
        let strat = vec((0i64..3, 0i64..3), 2..4);
        let mut rng = new_rng(4);
        let v = strat.sample(&mut rng);
        assert!((2..4).contains(&v.len()));
    }

    #[test]
    #[should_panic(expected = "non-empty length range")]
    fn empty_length_range_is_rejected() {
        let _ = vec(0i64..3, 5..5);
    }
}
