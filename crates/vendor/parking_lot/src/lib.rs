//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no network access and no registry cache, so the
//! workspace vendors the tiny subset of the `parking_lot` API it actually
//! uses — [`Mutex`], [`MutexGuard`], [`RwLock`] and [`Condvar`] — implemented
//! on top of `std::sync`. Semantics match `parking_lot` where they matter to
//! this codebase: `lock()` returns the guard directly (no `Result`), and a
//! poisoned lock is recovered rather than propagated (a panicking worker
//! already tears the query down through its own error path).
//!
//! Swap this path dependency for the real crates.io `parking_lot` on a
//! networked machine; no call site changes are needed.

use std::fmt;
use std::time::Duration;

/// Mutual exclusion primitive; `lock` returns the guard directly.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex { inner: std::sync::Mutex::new(value) }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => MutexGuard { inner: g },
            Err(poisoned) => MutexGuard { inner: poisoned.into_inner() },
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard { inner: p.into_inner() }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<T: ?Sized> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Condition variable compatible with [`Mutex`]/[`MutexGuard`].
pub struct Condvar {
    inner: std::sync::Condvar,
}

/// Result of a timed wait: reports whether the wait timed out.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar { inner: std::sync::Condvar::new() }
    }

    /// Blocks the current thread until the condvar is notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(&mut guard.inner, |g| match self.inner.wait(g) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        });
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let mut timed_out = false;
        take_guard(&mut guard.inner, |g| match self.inner.wait_timeout(g, timeout) {
            Ok((g, result)) => {
                timed_out = result.timed_out();
                g
            }
            Err(poisoned) => {
                let (g, result) = poisoned.into_inner();
                timed_out = result.timed_out();
                g
            }
        });
        WaitTimeoutResult { timed_out }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) -> bool {
        self.inner.notify_one();
        true
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) -> usize {
        self.inner.notify_all();
        0
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// Temporarily moves a `std::sync::MutexGuard` out of a mutable slot so the
/// std condvar APIs (which take the guard by value) can be used behind
/// parking_lot's by-reference signature.
fn take_guard<'a, T: ?Sized>(
    slot: &mut std::sync::MutexGuard<'a, T>,
    f: impl FnOnce(std::sync::MutexGuard<'a, T>) -> std::sync::MutexGuard<'a, T>,
) {
    /// Turns an unwind out of `f` into an abort: after `ptr::read` the guard
    /// exists in two places, and unwinding would drop both (double unlock,
    /// UB). `std::sync::Condvar::wait` panics only when one condvar is used
    /// with two different mutexes — API misuse — so aborting is acceptable
    /// for this shim and keeps the move sound.
    struct AbortOnUnwind;
    impl Drop for AbortOnUnwind {
        fn drop(&mut self) {
            std::process::abort();
        }
    }
    // SAFETY: `slot` is duplicated via `ptr::read` and re-filled with the
    // guard returned by `f` via `ptr::write` before the function returns.
    // The only way `write` could be skipped is `f` unwinding, which the
    // bomb converts into an abort, so no double-drop or uninitialized read
    // is reachable.
    unsafe {
        let guard = std::ptr::read(slot);
        let bomb = AbortOnUnwind;
        let new_guard = f(guard);
        std::mem::forget(bomb);
        std::ptr::write(slot, new_guard);
    }
}

/// Reader-writer lock; `read`/`write` return guards directly.
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared read guard.
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive write guard.
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock { inner: std::sync::RwLock::new(value) }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => RwLockReadGuard { inner: g },
            Err(poisoned) => RwLockReadGuard { inner: poisoned.into_inner() },
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => RwLockWriteGuard { inner: g },
            Err(poisoned) => RwLockWriteGuard { inner: poisoned.into_inner() },
        }
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_lock_and_try_lock() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        let g = m.lock();
        // try_lock from the same thread would deadlock with std mutexes on
        // some platforms; exercise it from another thread instead.
        std::thread::scope(|s| {
            s.spawn(|| assert!(m.try_lock().is_none()));
        });
        drop(g);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiters() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let handle = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            *started = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut started = lock.lock();
        while !*started {
            cv.wait(&mut started);
        }
        assert!(*started);
        handle.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(5));
        assert!(res.timed_out());
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(1);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1 + *r2, 2);
        }
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn poisoned_mutex_recovers() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 1);
    }
}
