//! Multi-producer multi-consumer FIFO channel (subset of `crossbeam-channel`).

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Error returned by [`Sender::send`] when all receivers are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`] when the channel is empty and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty (but senders remain).
    Empty,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// The timeout elapsed before a message arrived.
    Timeout,
    /// The channel is empty and all senders are gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    available: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half of the channel; clonable across threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of the channel; clonable across threads.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded MPMC FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
}

impl<T> Sender<T> {
    /// Enqueues a message, waking one blocked receiver.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(value));
        }
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        queue.push_back(value);
        drop(queue);
        self.shared.available.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender gone: wake all receivers so they observe the
            // disconnect instead of sleeping forever. Taking the queue lock
            // first serializes this notify with a receiver's check-then-wait
            // (the condvar releases the lock atomically), so the wakeup can
            // never fall between a receiver's sender-count load and its wait.
            drop(self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()));
            self.shared.available.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Dequeues a message, blocking while the channel is empty; errors once
    /// the channel is empty and every sender has been dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            queue = self.shared.available.wait(queue).unwrap_or_else(|e| e.into_inner());
        }
    }

    /// Non-blocking dequeue.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(value) = queue.pop_front() {
            return Ok(value);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Dequeues with a timeout.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut queue = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(value) = queue.pop_front() {
                return Ok(value);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _) = self
                .shared
                .available
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            queue = guard;
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver { shared: Arc::clone(&self.shared) }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (tx, rx) = unbounded();
        for i in 0..10 {
            tx.send(i).unwrap();
        }
        for i in 0..10 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn disconnect_on_last_sender_drop() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        tx.send(1).unwrap();
        drop(tx);
        drop(tx2);
        assert_eq!(rx.recv().unwrap(), 1);
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_all_receivers_drop() {
        let (tx, rx) = unbounded::<u32>();
        drop(rx);
        assert_eq!(tx.send(7), Err(SendError(7)));
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<u32>();
        let handle = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(Duration::from_millis(20));
        tx.send(99).unwrap();
        assert_eq!(handle.join().unwrap(), 99);
    }

    #[test]
    fn many_producers_many_consumers_deliver_everything() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers.into_iter().flat_map(|c| c.join().unwrap()).collect();
        all.sort_unstable();
        assert_eq!(all.len(), 1000);
        all.dedup();
        assert_eq!(all.len(), 1000, "duplicated or lost messages");
    }

    #[test]
    fn recv_timeout_behaviour() {
        let (tx, rx) = unbounded::<u32>();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Timeout));
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        drop(tx);
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Err(RecvTimeoutError::Disconnected));
    }
}
