//! Offline shim for the `crossbeam` facade crate.
//!
//! Provides the subset of the `crossbeam` API this workspace uses — the MPMC
//! [`channel`] module and the [`deque`] re-export — implemented over
//! `std::sync` primitives. The build environment has no network access and no
//! registry cache; on a networked machine this path dependency can be swapped
//! for the real crates.io `crossbeam` without call-site changes.
//!
//! The channel is a straightforward `Mutex<VecDeque>` + `Condvar` MPMC queue:
//! correct and contention-adequate at the worker counts this engine runs
//! (the real lock-free implementation only matters at much higher
//! core counts, and the work-stealing scheduler bypasses the channel
//! entirely).

pub mod channel;

/// Work-stealing deques (re-exported from the vendored `crossbeam-deque`).
pub mod deque {
    pub use crossbeam_deque::{Injector, Steal, Stealer, Worker};
}
