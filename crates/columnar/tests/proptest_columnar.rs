//! Property-based tests for the storage layer invariants the adaptive
//! parallelizer relies on: slicing never loses or duplicates data, dynamic
//! partition sets always cover the base column exactly once, and boundary
//! alignment always yields valid accesses.

use apq_columnar::partition::{align_ranges, clamp_oids, AlignmentScenario};
use apq_columnar::{Column, PartitionSet, RowRange};
use proptest::prelude::*;

proptest! {
    /// Slicing a column and concatenating the slices reproduces the column.
    #[test]
    fn slice_then_concat_roundtrip(values in prop::collection::vec(-1000i64..1000, 1..200),
                                   cuts in prop::collection::vec(0usize..200, 0..6)) {
        let col = Column::from_i64(values.clone());
        let n = values.len();
        let mut points: Vec<usize> = cuts.into_iter().map(|c| c % (n + 1)).collect();
        points.push(0);
        points.push(n);
        points.sort_unstable();
        points.dedup();
        let mut parts = Vec::new();
        for w in points.windows(2) {
            if w[1] > w[0] {
                parts.push(col.slice(w[0], w[1] - w[0]).unwrap());
            }
        }
        let packed = Column::concat(&parts).unwrap();
        prop_assert_eq!(packed.i64_values().unwrap(), &values[..]);
    }

    /// Any sequence of dynamic splits keeps the partition set valid and
    /// keeps the total row coverage constant (no repetition, no omission).
    #[test]
    fn dynamic_splits_preserve_coverage(total in 2usize..10_000,
                                        picks in prop::collection::vec(0usize..64, 0..40)) {
        let mut set = PartitionSet::single(total);
        for pick in picks {
            let idx = pick % set.len();
            // Splitting may legitimately fail when the partition has 1 row.
            let _ = set.split(idx);
            set.validate().unwrap();
            let covered: usize = set.ranges().iter().map(RowRange::len).sum();
            prop_assert_eq!(covered, total);
        }
    }

    /// Static equal partitioning covers the domain for any n.
    #[test]
    fn equal_partitioning_covers(total in 1usize..50_000, n in 1usize..128) {
        let set = PartitionSet::equal(total, n);
        set.validate().unwrap();
        let covered: usize = set.ranges().iter().map(RowRange::len).sum();
        prop_assert_eq!(covered, total);
        // Partition sizes differ by at most one row.
        prop_assert!(set.max_partition_rows() - set.min_partition_rows() <= 1);
    }

    /// The alignment clamp always produces a sub-range of both inputs, and
    /// clamped oids always index validly into the right range.
    #[test]
    fn alignment_clamp_is_sound(ls in 0usize..1000, ll in 0usize..1000,
                                rs in 0usize..1000, rl in 0usize..1000) {
        let left = RowRange::new(ls, ls + ll);
        let right = RowRange::new(rs, rs + rl);
        let (scenario, clamped) = align_ranges(&left, &right);
        prop_assert!(clamped.len() <= left.len());
        prop_assert!(clamped.len() <= right.len());
        if !clamped.is_empty() {
            prop_assert!(left.contains(clamped.start) && right.contains(clamped.start));
            prop_assert!(left.contains(clamped.end - 1) && right.contains(clamped.end - 1));
        }
        if scenario == AlignmentScenario::Exact {
            prop_assert_eq!(clamped, left);
        }
        // Every oid inside `left`, once clamped, is a valid index of `right`.
        let oids: Vec<u64> = (left.start..left.end).map(|v| v as u64).collect();
        let clamped_oids = clamp_oids(&oids, &right);
        for o in clamped_oids {
            prop_assert!(right.contains(o as usize));
        }
    }

    /// gather_oids round-trips values for oids drawn inside the slice.
    #[test]
    fn gather_oids_roundtrip(values in prop::collection::vec(-500i64..500, 10..300),
                             start_frac in 0usize..10, picks in prop::collection::vec(0usize..1000, 1..50)) {
        let col = Column::from_i64(values.clone());
        let n = values.len();
        let start = (n / 10) * start_frac.min(5);
        let len = n - start;
        let slice = col.slice(start, len).unwrap();
        let oids: Vec<u64> = picks.iter().map(|&p| (start + p % len) as u64).collect();
        let gathered = slice.gather_oids(&oids).unwrap();
        let got = gathered.i64_values().unwrap();
        for (i, &oid) in oids.iter().enumerate() {
            prop_assert_eq!(got[i], values[oid as usize]);
        }
    }
}
