//! Tables: named collections of equally long columns.

use std::collections::HashMap;
use std::sync::Arc;

use crate::column::Column;
use crate::error::{ColumnarError, Result};
use crate::value::DataType;

/// An immutable table: ordered, named columns of identical length.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<(String, Column)>,
    index: HashMap<String, usize>,
    row_count: usize,
}

impl Table {
    /// Name of the table.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.row_count
    }

    /// Number of columns.
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Column names in declaration order.
    pub fn column_names(&self) -> impl Iterator<Item = &str> {
        self.columns.iter().map(|(n, _)| n.as_str())
    }

    /// Looks up a column by name.
    pub fn column(&self, name: &str) -> Result<&Column> {
        self.index
            .get(name)
            .map(|&i| &self.columns[i].1)
            .ok_or_else(|| ColumnarError::UnknownColumn(format!("{}.{}", self.name, name)))
    }

    /// Looks up a column by name, returning an owned (cheap, `Arc`-backed) clone.
    pub fn column_cloned(&self, name: &str) -> Result<Column> {
        self.column(name).cloned()
    }

    /// True when the table has a column of the given name.
    pub fn has_column(&self, name: &str) -> bool {
        self.index.contains_key(name)
    }

    /// Logical type of a column.
    pub fn column_type(&self, name: &str) -> Result<DataType> {
        Ok(self.column(name)?.data_type())
    }

    /// Approximate in-memory size of the table in bytes.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|(_, c)| c.byte_size()).sum()
    }

    /// All columns as `(name, column)` pairs.
    pub fn columns(&self) -> &[(String, Column)] {
        &self.columns
    }
}

/// Builder used by the data generators to assemble a [`Table`].
#[derive(Debug, Default)]
pub struct TableBuilder {
    name: String,
    columns: Vec<(String, Column)>,
}

impl TableBuilder {
    /// Starts a builder for a table with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        TableBuilder { name: name.into(), columns: Vec::new() }
    }

    /// Adds a column. Columns must all have the same length; this is checked
    /// when [`TableBuilder::build`] is called.
    pub fn column(mut self, name: impl Into<String>, column: Column) -> Self {
        self.columns.push((name.into(), column));
        self
    }

    /// Convenience: add an `Int64` column from values.
    pub fn i64_column(self, name: impl Into<String>, values: Vec<i64>) -> Self {
        self.column(name, Column::from_i64(values))
    }

    /// Convenience: add an `Int32` column from values.
    pub fn i32_column(self, name: impl Into<String>, values: Vec<i32>) -> Self {
        self.column(name, Column::from_i32(values))
    }

    /// Convenience: add a `Float64` column from values.
    pub fn f64_column(self, name: impl Into<String>, values: Vec<f64>) -> Self {
        self.column(name, Column::from_f64(values))
    }

    /// Convenience: add a string column from values.
    pub fn str_column<S: AsRef<str>>(self, name: impl Into<String>, values: Vec<S>) -> Self {
        self.column(name, Column::from_strings(values))
    }

    /// Finalizes the table, validating that all columns are equally long.
    pub fn build(self) -> Result<Arc<Table>> {
        let row_count = self.columns.first().map(|(_, c)| c.len()).unwrap_or(0);
        for (name, col) in &self.columns {
            if col.len() != row_count {
                return Err(ColumnarError::RaggedTable {
                    column: name.clone(),
                    len: col.len(),
                    expected: row_count,
                });
            }
        }
        let index = self.columns.iter().enumerate().map(|(i, (n, _))| (n.clone(), i)).collect();
        Ok(Arc::new(Table { name: self.name, columns: self.columns, index, row_count }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Arc<Table> {
        TableBuilder::new("lineitem")
            .i64_column("l_quantity", vec![1, 2, 3])
            .f64_column("l_discount", vec![0.1, 0.2, 0.3])
            .str_column("l_shipmode", vec!["AIR", "RAIL", "AIR"])
            .build()
            .unwrap()
    }

    #[test]
    fn builds_and_reads_columns() {
        let t = sample();
        assert_eq!(t.name(), "lineitem");
        assert_eq!(t.row_count(), 3);
        assert_eq!(t.column_count(), 3);
        assert!(t.has_column("l_quantity"));
        assert!(!t.has_column("missing"));
        assert_eq!(t.column("l_quantity").unwrap().i64_values().unwrap(), &[1, 2, 3]);
        assert_eq!(t.column_type("l_discount").unwrap(), DataType::Float64);
        assert_eq!(
            t.column_names().collect::<Vec<_>>(),
            vec!["l_quantity", "l_discount", "l_shipmode"]
        );
        assert!(t.byte_size() > 0);
    }

    #[test]
    fn unknown_column_is_an_error() {
        let t = sample();
        let err = t.column("nope").unwrap_err();
        assert!(matches!(err, ColumnarError::UnknownColumn(_)));
        assert!(err.to_string().contains("lineitem.nope"));
    }

    #[test]
    fn ragged_tables_rejected() {
        let err = TableBuilder::new("bad")
            .i64_column("a", vec![1, 2, 3])
            .i64_column("b", vec![1])
            .build()
            .unwrap_err();
        assert!(matches!(err, ColumnarError::RaggedTable { .. }));
    }

    #[test]
    fn empty_table_is_fine() {
        let t = TableBuilder::new("empty").build().unwrap();
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    #[test]
    fn column_cloned_shares_storage() {
        let t = sample();
        let c1 = t.column_cloned("l_quantity").unwrap();
        let c2 = t.column("l_quantity").unwrap();
        assert!(c1.shares_storage_with(c2));
    }
}
