//! Error type shared by the storage layer.

use std::fmt;

/// Convenience alias used throughout the columnar crate.
pub type Result<T> = std::result::Result<T, ColumnarError>;

/// Errors raised by the storage layer.
///
/// The higher layers (operators, engine) wrap these into their own error
/// types; none of them should ever surface during a correctly constructed
/// query plan, but the adaptive mutation machinery relies on them to detect
/// mis-aligned partitions early (paper §2.3 discusses how misalignment causes
/// "repetition of data" or "omission of data").
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnarError {
    /// A column was addressed with a position outside its view.
    OutOfBounds {
        /// Offending position.
        index: usize,
        /// Length of the addressed view.
        len: usize,
    },
    /// Two columns that must be equally long are not.
    LengthMismatch {
        /// Length of the left operand.
        left: usize,
        /// Length of the right operand.
        right: usize,
    },
    /// An operation expected a different physical type.
    TypeMismatch {
        /// Type that was expected.
        expected: &'static str,
        /// Type that was found.
        found: &'static str,
    },
    /// A requested column does not exist in the table.
    UnknownColumn(String),
    /// A requested table does not exist in the catalog.
    UnknownTable(String),
    /// A slice request exceeded the bounds of the underlying column.
    InvalidSlice {
        /// Requested start of the slice.
        start: usize,
        /// Requested length of the slice.
        len: usize,
        /// Length of the column being sliced.
        column_len: usize,
    },
    /// A partition set does not cover its domain exactly once.
    InvalidPartitioning(String),
    /// An oid used for tuple reconstruction falls outside the target slice.
    MisalignedOid {
        /// The offending oid.
        oid: u64,
        /// First valid oid of the target slice.
        lo: u64,
        /// One past the last valid oid of the target slice.
        hi: u64,
    },
    /// A table was built from columns of differing lengths.
    RaggedTable {
        /// Name of the offending column.
        column: String,
        /// Its length.
        len: usize,
        /// The length of the first column.
        expected: usize,
    },
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::OutOfBounds { index, len } => {
                write!(f, "position {index} out of bounds for view of length {len}")
            }
            ColumnarError::LengthMismatch { left, right } => {
                write!(f, "column length mismatch: {left} vs {right}")
            }
            ColumnarError::TypeMismatch { expected, found } => {
                write!(f, "type mismatch: expected {expected}, found {found}")
            }
            ColumnarError::UnknownColumn(name) => write!(f, "unknown column '{name}'"),
            ColumnarError::UnknownTable(name) => write!(f, "unknown table '{name}'"),
            ColumnarError::InvalidSlice { start, len, column_len } => write!(
                f,
                "invalid slice [{start}, {}) of column with {column_len} rows",
                start + len
            ),
            ColumnarError::InvalidPartitioning(msg) => write!(f, "invalid partitioning: {msg}"),
            ColumnarError::MisalignedOid { oid, lo, hi } => {
                write!(f, "oid {oid} outside aligned slice [{lo}, {hi})")
            }
            ColumnarError::RaggedTable { column, len, expected } => {
                write!(f, "column '{column}' has {len} rows but the table has {expected}")
            }
        }
    }
}

impl std::error::Error for ColumnarError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ColumnarError::OutOfBounds { index: 10, len: 4 };
        assert!(e.to_string().contains("10"));
        assert!(e.to_string().contains('4'));

        let e = ColumnarError::UnknownColumn("l_extendedprice".into());
        assert!(e.to_string().contains("l_extendedprice"));

        let e = ColumnarError::MisalignedOid { oid: 9, lo: 0, hi: 8 };
        assert!(e.to_string().contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ColumnarError>();
    }
}
