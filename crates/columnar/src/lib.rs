//! Columnar storage substrate for the adaptive-parallelization reproduction.
//!
//! The paper's evaluation system (MonetDB) stores every attribute as a
//! *Binary Association Table* (BAT): a head column of densely increasing
//! object identifiers (oids) and a tail column holding the values. Because
//! the head is dense it is kept *virtual* and a column is effectively a typed
//! array whose position encodes the oid. Range partitioning then amounts to
//! creating read-only *slices* of the array — no data is copied (paper §2.3).
//!
//! This crate provides exactly that model:
//!
//! * [`Column`] — an `Arc`-backed typed vector plus an `(offset, len)` view,
//!   so slicing is O(1) and zero-copy. The offset doubles as the *base oid*
//!   of the first element, which is what keeps dynamically sized partitions
//!   aligned with the base column (paper Fig. 8).
//! * [`StringColumn`] — dictionary-encoded strings (codes + shared dictionary).
//! * [`Table`] / [`Catalog`] — named collections of equally long columns.
//! * [`partition`] — range-partition descriptors, the dynamic partition set
//!   used by adaptive parallelization, and the boundary-alignment scenarios
//!   of paper Fig. 9/10.
//! * [`datagen`] — synthetic data generators: uniform, sequential, Zipf and
//!   the skewed distribution of paper Fig. 13, plus TPC-style helpers.

pub mod catalog;
pub mod column;
pub mod datagen;
pub mod error;
pub mod partition;
pub mod strings;
pub mod table;
pub mod value;

pub use catalog::Catalog;
pub use column::{typed_cache_hits, typed_cache_validations, Column, ColumnData};
pub use error::{ColumnarError, Result};
pub use partition::{AlignmentScenario, PartitionSet, RowRange};
pub use strings::StringColumn;
pub use table::{Table, TableBuilder};
pub use value::{DataType, ScalarValue};

/// Object identifier type (row id). MonetDB calls these *oids*.
pub type Oid = u64;
