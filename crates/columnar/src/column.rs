//! Typed columns with zero-copy range views.
//!
//! A [`Column`] is an `Arc`-shared typed vector ([`ColumnData`]) plus a
//! `(offset, len)` window. Slicing a column adjusts the window only, so the
//! dynamically sized partitions created by adaptive parallelization
//! (paper §2.3 "creating slices involves marking the boundary ranges ... and
//! is cheap, as there is no data copying involved") share the same backing
//! storage. For *base* columns the window offset is also the oid of the first
//! visible row, which is what keeps partition boundaries aligned with the
//! base column (paper Fig. 8).
//!
//! # Typed-access caches
//!
//! Typed accessors ([`Column::i64_values`] and friends) used to re-match the
//! [`ColumnData`] tag on every call. On the morsel hot path the same backing
//! is accessed thousands of times through different windows, so every
//! backing now carries a lazily published typed cache: the *first*
//! successful typed access validates the tag and publishes a raw pointer to
//! the typed storage into a per-type `OnceLock` cell; every later access on
//! *any* clone or zero-copy window of the same backing is a lock-free
//! pointer read plus window arithmetic — no tag match, no allocation.
//!
//! Publication rules (also documented in `docs/architecture.md` §2.2):
//!
//! * A cache cell is shared by exactly the views holding the same
//!   `Arc<ColumnData>`; [`Column::slice`] clones the cache alongside the
//!   data, [`Column::new`] mints a fresh (cold) one.
//! * Only a *successful* publication counts as a validation; racing cold
//!   readers that lose the `OnceLock` race are not counted, so the
//!   per-backing validation count is bounded by the number of distinct
//!   types successfully accessed (at most one for well-typed plans).
//! * Mismatched-type accesses never publish and keep failing through the
//!   (cold) tag match.
//!
//! The crate-level counters [`typed_cache_validations`] /
//! [`typed_cache_hits`] let tests *prove* re-validation stops: the
//! zero-alloc harness asserts a warm access performs zero allocations and
//! moves the validation counter by zero.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::error::{ColumnarError, Result};
use crate::strings::StringColumn;
use crate::value::{DataType, ScalarValue};
use crate::Oid;

/// Process-wide count of typed-cache validations (cold publications).
static TYPED_VALIDATIONS: AtomicU64 = AtomicU64::new(0);
/// Process-wide count of typed-cache hits (warm, match-free accesses).
static TYPED_HITS: AtomicU64 = AtomicU64::new(0);

/// Total number of typed-cache validations performed by this process.
///
/// A validation is a *cold* typed access: the accessor matched the
/// [`ColumnData`] tag and published the typed pointer for its backing. Once
/// every live backing is warm this counter stops moving — the property the
/// counting test harness pins.
pub fn typed_cache_validations() -> u64 {
    TYPED_VALIDATIONS.load(Ordering::Relaxed)
}

/// Total number of warm typed-cache hits served by this process.
///
/// A hit is a typed access answered from a published cache cell: a lock-free
/// pointer read, no tag match. The engine profiler samples this counter
/// around pipeline execution to report per-pipeline hit deltas.
pub fn typed_cache_hits() -> u64 {
    TYPED_HITS.load(Ordering::Relaxed)
}

/// Lazily published typed views of one backing allocation.
///
/// One `TypedCache` is shared (via `Arc`) by every clone and zero-copy
/// window of the same `ColumnData`. Cells hold raw pointers *into* that
/// `ColumnData`, which is sound because:
///
/// * a cache is only ever reachable from a [`Column`] holding the matching
///   `Arc<ColumnData>`, so the pointee outlives every reader, and
/// * `ColumnData` is immutable after construction (no API hands out `&mut`,
///   and `Arc::get_mut` cannot succeed while any sharing `Column` is alive),
///   so the published addresses are stable.
#[derive(Debug)]
struct TypedCache {
    i64s: OnceLock<*const Vec<i64>>,
    i32s: OnceLock<*const Vec<i32>>,
    f64s: OnceLock<*const Vec<f64>>,
    bools: OnceLock<*const Vec<bool>>,
    strs: OnceLock<*const StringColumn>,
    /// Successful publications against this backing. Bounded by the number
    /// of distinct types accessed — i.e. exactly 1 for well-typed plans —
    /// regardless of how many clones, windows, or threads read the column.
    validations: AtomicU64,
}

// SAFETY: the raw pointers are only dereferenced through `Column` accessors
// whose `&self` borrow keeps the pointed-to `Arc<ColumnData>` alive, and the
// pointee is immutable after construction (see the `TypedCache` docs), so
// sharing the published addresses across threads is sound.
unsafe impl Send for TypedCache {}
unsafe impl Sync for TypedCache {}

impl TypedCache {
    fn new() -> Self {
        TypedCache {
            i64s: OnceLock::new(),
            i32s: OnceLock::new(),
            f64s: OnceLock::new(),
            bools: OnceLock::new(),
            strs: OnceLock::new(),
            validations: AtomicU64::new(0),
        }
    }

    /// Publishes a typed pointer after a successful (cold) tag match. Only
    /// the racer that wins the `OnceLock` counts as a validation.
    fn publish<T>(&self, cell: &OnceLock<*const T>, value: &T) {
        if cell.set(value as *const T).is_ok() {
            self.validations.fetch_add(1, Ordering::Relaxed);
            TYPED_VALIDATIONS.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// True once any typed pointer has been published for this backing.
    fn is_warm(&self) -> bool {
        self.validations.load(Ordering::Relaxed) > 0
    }
}

/// Reads a published cell, counting a warm hit. Returns a reference whose
/// lifetime the caller must tie to a `Column` borrowing the matching
/// `Arc<ColumnData>` (which is what keeps the pointee alive).
fn warm<'a, T>(cell: &OnceLock<*const T>) -> Option<&'a T> {
    let &ptr = cell.get()?;
    TYPED_HITS.fetch_add(1, Ordering::Relaxed);
    // SAFETY: see `TypedCache` — the pointee is kept alive by the caller's
    // `Arc<ColumnData>` and is immutable after construction.
    Some(unsafe { &*ptr })
}

/// Physical storage for one column.
#[derive(Debug)]
pub enum ColumnData {
    /// 64-bit integers (also fixed-point decimals).
    Int64(Vec<i64>),
    /// 32-bit integers (also dates as days since epoch).
    Int32(Vec<i32>),
    /// 64-bit floats.
    Float64(Vec<f64>),
    /// Booleans.
    Bool(Vec<bool>),
    /// Dictionary-encoded strings.
    Str(StringColumn),
}

impl ColumnData {
    /// Number of stored rows.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Int64(v) => v.len(),
            ColumnData::Int32(v) => v.len(),
            ColumnData::Float64(v) => v.len(),
            ColumnData::Bool(v) => v.len(),
            ColumnData::Str(v) => v.len(),
        }
    }

    /// True when no rows are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Logical type of the stored values.
    pub fn data_type(&self) -> DataType {
        match self {
            ColumnData::Int64(_) => DataType::Int64,
            ColumnData::Int32(_) => DataType::Int32,
            ColumnData::Float64(_) => DataType::Float64,
            ColumnData::Bool(_) => DataType::Bool,
            ColumnData::Str(_) => DataType::Str,
        }
    }
}

/// A typed column view: shared storage plus a `(offset, len)` window and the
/// logical oid of the first visible row.
///
/// For base-table columns the logical base oid equals the window offset (row
/// `i` of the view is base row `offset + i`). Computed intermediates (the
/// output of `batcalc`-style element-wise operators) start their own storage
/// at index 0 but may still be *aligned* with a partition of the base column;
/// [`Column::with_base_oid`] records that alignment so that selections over
/// the intermediate keep producing absolute oids — exactly the alignment
/// bookkeeping paper §2.3 requires for dynamically sized partitions.
#[derive(Debug, Clone)]
pub struct Column {
    data: Arc<ColumnData>,
    /// Typed-access cache shared by every view of `data` (see module docs).
    typed: Arc<TypedCache>,
    offset: usize,
    len: usize,
    base: Oid,
}

impl Column {
    // ---------------------------------------------------------------- constructors

    /// Wraps existing storage, viewing all of it.
    ///
    /// Mints a fresh (cold) typed cache for the backing; clones and slices
    /// share it, so the one allocation here is per *backing*, never per
    /// window.
    pub fn new(data: Arc<ColumnData>) -> Self {
        let len = data.len();
        Column { data, typed: Arc::new(TypedCache::new()), offset: 0, len, base: 0 }
    }

    /// Builds an `Int64` column from values.
    pub fn from_i64(values: Vec<i64>) -> Self {
        Column::new(Arc::new(ColumnData::Int64(values)))
    }

    /// Builds an `Int32` column from values.
    pub fn from_i32(values: Vec<i32>) -> Self {
        Column::new(Arc::new(ColumnData::Int32(values)))
    }

    /// Builds a `Float64` column from values.
    pub fn from_f64(values: Vec<f64>) -> Self {
        Column::new(Arc::new(ColumnData::Float64(values)))
    }

    /// Builds a `Bool` column from values.
    pub fn from_bool(values: Vec<bool>) -> Self {
        Column::new(Arc::new(ColumnData::Bool(values)))
    }

    /// Builds a dictionary-encoded string column from values.
    pub fn from_strings<S: AsRef<str>, I: IntoIterator<Item = S>>(values: I) -> Self {
        Column::new(Arc::new(ColumnData::Str(StringColumn::from_values(values))))
    }

    /// Builds a string column from an existing [`StringColumn`].
    pub fn from_string_column(col: StringColumn) -> Self {
        Column::new(Arc::new(ColumnData::Str(col)))
    }

    // ---------------------------------------------------------------- metadata

    /// Number of visible rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Offset of the view within the backing storage.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// Logical oid of the first visible row.
    ///
    /// Equals [`Column::offset`] for base-table columns and their slices;
    /// computed intermediates carry the base oid assigned via
    /// [`Column::with_base_oid`] (0 by default).
    pub fn base_oid(&self) -> Oid {
        self.base
    }

    /// One past the oid of the last visible row.
    pub fn end_oid(&self) -> Oid {
        self.base + self.len as Oid
    }

    /// Re-labels the logical base oid of this view (zero-copy).
    ///
    /// Used for computed intermediates that are positionally aligned with a
    /// base-column partition starting at `base`.
    pub fn with_base_oid(mut self, base: Oid) -> Column {
        self.base = base;
        self
    }

    /// Logical type of the column.
    pub fn data_type(&self) -> DataType {
        self.data.data_type()
    }

    /// Approximate number of bytes covered by the visible window, plus the
    /// typed-cache overhead attributed to this view (see
    /// [`Column::cache_byte_size`]).
    ///
    /// The profiler reports this as the operator's memory claim, mirroring
    /// the "memory claims" item of the paper's profiled data (§2).
    pub fn byte_size(&self) -> usize {
        self.len * self.data_type().value_width() + self.cache_byte_size()
    }

    /// Bytes of lazily materialized typed-cache state attributed to this
    /// view.
    ///
    /// The cache is shared by every clone and window of one backing, so
    /// charging it to each view would multiply-count it in profiler memory
    /// claims. It is charged only to a *warm full-backing* view (offset 0,
    /// window = whole backing): a set of disjoint morsel windows plus the
    /// base view therefore counts the cache exactly once per backing, and a
    /// cold column costs nothing extra.
    pub fn cache_byte_size(&self) -> usize {
        if self.offset == 0 && self.len == self.data.len() && self.typed.is_warm() {
            std::mem::size_of::<TypedCache>()
        } else {
            0
        }
    }

    /// Number of typed-cache validations performed against this view's
    /// backing (successful publications; see the module docs). Test hook:
    /// bounded by the number of distinct types accessed, no matter how many
    /// clones, windows, or threads touched the column.
    pub fn backing_validations(&self) -> u64 {
        self.typed.validations.load(Ordering::Relaxed)
    }

    /// Total length of the backing storage (ignoring the view window).
    pub fn backing_len(&self) -> usize {
        self.data.len()
    }

    /// True when two columns share the same backing allocation.
    pub fn shares_storage_with(&self, other: &Column) -> bool {
        Arc::ptr_eq(&self.data, &other.data)
    }

    // ---------------------------------------------------------------- slicing

    /// Returns a zero-copy sub-view of `len` rows starting at `start`
    /// (relative to this view).
    pub fn slice(&self, start: usize, len: usize) -> Result<Column> {
        if start.checked_add(len).is_none_or(|end| end > self.len) {
            return Err(ColumnarError::InvalidSlice { start, len, column_len: self.len });
        }
        Ok(Column {
            data: Arc::clone(&self.data),
            typed: Arc::clone(&self.typed),
            offset: self.offset + start,
            len,
            base: self.base + start as Oid,
        })
    }

    /// Returns a zero-copy sub-view addressed by absolute oids `[lo, hi)`.
    ///
    /// The requested oid range must lie inside this view; this is the
    /// primitive used to create aligned dynamic partitions.
    pub fn slice_oid_range(&self, lo: Oid, hi: Oid) -> Result<Column> {
        if lo > hi || lo < self.base_oid() || hi > self.end_oid() {
            return Err(ColumnarError::MisalignedOid {
                oid: if lo < self.base_oid() { lo } else { hi },
                lo: self.base_oid(),
                hi: self.end_oid(),
            });
        }
        self.slice((lo - self.base_oid()) as usize, (hi - lo) as usize)
    }

    // ---------------------------------------------------------------- typed access
    //
    // Every accessor follows the same two-step shape: a warm read of the
    // published cache cell (lock-free pointer load + window arithmetic, no
    // tag match, no allocation), falling back to a cold tag match that
    // publishes the typed pointer for every later view of this backing.

    /// Visible rows as an `i64` slice.
    pub fn i64_values(&self) -> Result<&[i64]> {
        if let Some(v) = warm(&self.typed.i64s) {
            return Ok(&v[self.offset..self.offset + self.len]);
        }
        match self.data.as_ref() {
            ColumnData::Int64(v) => {
                self.typed.publish(&self.typed.i64s, v);
                Ok(&v[self.offset..self.offset + self.len])
            }
            other => Err(self.type_error("int64", other)),
        }
    }

    /// Visible rows as an `i32` slice.
    pub fn i32_values(&self) -> Result<&[i32]> {
        if let Some(v) = warm(&self.typed.i32s) {
            return Ok(&v[self.offset..self.offset + self.len]);
        }
        match self.data.as_ref() {
            ColumnData::Int32(v) => {
                self.typed.publish(&self.typed.i32s, v);
                Ok(&v[self.offset..self.offset + self.len])
            }
            other => Err(self.type_error("int32", other)),
        }
    }

    /// Visible rows as an `f64` slice.
    pub fn f64_values(&self) -> Result<&[f64]> {
        if let Some(v) = warm(&self.typed.f64s) {
            return Ok(&v[self.offset..self.offset + self.len]);
        }
        match self.data.as_ref() {
            ColumnData::Float64(v) => {
                self.typed.publish(&self.typed.f64s, v);
                Ok(&v[self.offset..self.offset + self.len])
            }
            other => Err(self.type_error("float64", other)),
        }
    }

    /// Visible rows as a `bool` slice.
    pub fn bool_values(&self) -> Result<&[bool]> {
        if let Some(v) = warm(&self.typed.bools) {
            return Ok(&v[self.offset..self.offset + self.len]);
        }
        match self.data.as_ref() {
            ColumnData::Bool(v) => {
                self.typed.publish(&self.typed.bools, v);
                Ok(&v[self.offset..self.offset + self.len])
            }
            other => Err(self.type_error("bool", other)),
        }
    }

    /// Visible rows as dictionary codes plus the shared dictionary.
    pub fn str_codes(&self) -> Result<(&[u32], &Arc<Vec<String>>)> {
        if let Some(s) = warm(&self.typed.strs) {
            return Ok((&s.codes()[self.offset..self.offset + self.len], s.dict()));
        }
        match self.data.as_ref() {
            ColumnData::Str(s) => {
                self.typed.publish(&self.typed.strs, s);
                Ok((&s.codes()[self.offset..self.offset + self.len], s.dict()))
            }
            other => Err(self.type_error("str", other)),
        }
    }

    /// The underlying [`StringColumn`] (whole backing storage, ignoring the view).
    pub fn string_column(&self) -> Result<&StringColumn> {
        if let Some(s) = warm(&self.typed.strs) {
            return Ok(s);
        }
        match self.data.as_ref() {
            ColumnData::Str(s) => {
                self.typed.publish(&self.typed.strs, s);
                Ok(s)
            }
            other => Err(self.type_error("str", other)),
        }
    }

    fn type_error(&self, expected: &'static str, found: &ColumnData) -> ColumnarError {
        ColumnarError::TypeMismatch { expected, found: found.data_type().name() }
    }

    /// Scalar value of visible row `i`.
    pub fn get(&self, i: usize) -> Result<ScalarValue> {
        if i >= self.len {
            return Err(ColumnarError::OutOfBounds { index: i, len: self.len });
        }
        let p = self.offset + i;
        Ok(match self.data.as_ref() {
            ColumnData::Int64(v) => ScalarValue::I64(v[p]),
            ColumnData::Int32(v) => ScalarValue::I32(v[p]),
            ColumnData::Float64(v) => ScalarValue::F64(v[p]),
            ColumnData::Bool(v) => ScalarValue::Bool(v[p]),
            ColumnData::Str(v) => ScalarValue::Str(v.value(p).to_string()),
        })
    }

    // ---------------------------------------------------------------- gathering / materializing

    /// Gathers the rows addressed by absolute oids into a new, dense column.
    ///
    /// This is the tuple-reconstruction primitive (MonetDB `leftfetchjoin`):
    /// every oid must fall within this view's `[base_oid, end_oid)` range,
    /// otherwise the access is invalid (paper §2.3: misalignment leads to an
    /// "invalid access").
    pub fn gather_oids(&self, oids: &[Oid]) -> Result<Column> {
        let lo = self.base_oid();
        let hi = self.end_oid();
        for &oid in oids {
            if oid < lo || oid >= hi {
                return Err(ColumnarError::MisalignedOid { oid, lo, hi });
            }
        }
        Ok(self.gather_positions_unchecked(oids.iter().map(|&o| (o - lo) as usize)))
    }

    /// Gathers rows by positions relative to this view into a new dense column.
    pub fn gather_positions(&self, positions: &[usize]) -> Result<Column> {
        for &p in positions {
            if p >= self.len {
                return Err(ColumnarError::OutOfBounds { index: p, len: self.len });
            }
        }
        Ok(self.gather_positions_unchecked(positions.iter().copied()))
    }

    fn gather_positions_unchecked<I: Iterator<Item = usize> + Clone>(
        &self,
        positions: I,
    ) -> Column {
        let off = self.offset;
        match self.data.as_ref() {
            ColumnData::Int64(v) => Column::from_i64(positions.map(|p| v[off + p]).collect()),
            ColumnData::Int32(v) => Column::from_i32(positions.map(|p| v[off + p]).collect()),
            ColumnData::Float64(v) => Column::from_f64(positions.map(|p| v[off + p]).collect()),
            ColumnData::Bool(v) => Column::from_bool(positions.map(|p| v[off + p]).collect()),
            ColumnData::Str(s) => {
                let abs: Vec<usize> = positions.map(|p| off + p).collect();
                Column::from_string_column(s.gather(&abs))
            }
        }
    }

    /// Concatenates several columns of the same type into one dense column.
    ///
    /// This is the value-column flavour of the exchange-union operator
    /// ("mat.pack" in the paper's plans). The inputs are packed in argument
    /// order, which is what preserves the mutation-sequence ordering the
    /// paper relies on (§2.3 "the exchange union operator must maintain the
    /// correct ordering").
    pub fn concat(parts: &[Column]) -> Result<Column> {
        let first = parts.first().ok_or_else(|| {
            ColumnarError::InvalidPartitioning("cannot concatenate zero columns".to_string())
        })?;
        let ty = first.data_type();
        for p in parts {
            if p.data_type() != ty {
                return Err(ColumnarError::TypeMismatch {
                    expected: ty.name(),
                    found: p.data_type().name(),
                });
            }
        }
        let total: usize = parts.iter().map(|p| p.len()).sum();
        Ok(match ty {
            DataType::Int64 => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.i64_values()?);
                }
                Column::from_i64(out)
            }
            DataType::Int32 => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.i32_values()?);
                }
                Column::from_i32(out)
            }
            DataType::Float64 => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.f64_values()?);
                }
                Column::from_f64(out)
            }
            DataType::Bool => {
                let mut out = Vec::with_capacity(total);
                for p in parts {
                    out.extend_from_slice(p.bool_values()?);
                }
                Column::from_bool(out)
            }
            DataType::Str => {
                // Re-encode through strings; dictionaries may differ between parts.
                let mut values: Vec<String> = Vec::with_capacity(total);
                for p in parts {
                    let (codes, dict) = p.str_codes()?;
                    values.extend(codes.iter().map(|&c| dict[c as usize].clone()));
                }
                Column::from_strings(values)
            }
        })
    }

    // ---------------------------------------------------------------- test helpers

    /// Materializes the visible rows as owned scalars (test / debugging helper).
    pub fn to_scalars(&self) -> Vec<ScalarValue> {
        (0..self.len).map(|i| self.get(i).expect("in range")).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construct_and_access() {
        let c = Column::from_i64(vec![10, 20, 30, 40]);
        // Cold column: window bytes only, no cache charge yet.
        assert_eq!(c.byte_size(), 32);
        assert_eq!(c.len(), 4);
        assert_eq!(c.data_type(), DataType::Int64);
        assert_eq!(c.i64_values().unwrap(), &[10, 20, 30, 40]);
        assert_eq!(c.get(2).unwrap(), ScalarValue::I64(30));
        assert!(c.get(4).is_err());
        // Warm full-backing view: window bytes plus the (now materialized)
        // typed-cache overhead, charged exactly once per backing.
        assert!(c.cache_byte_size() > 0);
        assert_eq!(c.byte_size(), 32 + c.cache_byte_size());
        assert!(!c.is_empty());
    }

    #[test]
    fn slicing_is_zero_copy_and_oid_aware() {
        let c = Column::from_i64((0..100).collect());
        let s = c.slice(10, 20).unwrap();
        assert_eq!(s.len(), 20);
        assert_eq!(s.base_oid(), 10);
        assert_eq!(s.end_oid(), 30);
        assert_eq!(s.i64_values().unwrap()[0], 10);
        assert!(s.shares_storage_with(&c));

        // Slicing a slice keeps absolute oids.
        let s2 = s.slice(5, 5).unwrap();
        assert_eq!(s2.base_oid(), 15);
        assert_eq!(s2.i64_values().unwrap(), &[15, 16, 17, 18, 19]);

        // Out of bounds slice is rejected.
        assert!(c.slice(95, 10).is_err());
        assert!(matches!(c.slice(95, 10).unwrap_err(), ColumnarError::InvalidSlice { .. }));
    }

    #[test]
    fn slice_by_oid_range() {
        let c = Column::from_i64((0..50).collect());
        let part = c.slice_oid_range(20, 30).unwrap();
        assert_eq!(part.base_oid(), 20);
        assert_eq!(part.len(), 10);
        // A sub-partition of the partition, still by absolute oid.
        let sub = part.slice_oid_range(25, 28).unwrap();
        assert_eq!(sub.i64_values().unwrap(), &[25, 26, 27]);
        // Requesting oids outside the partition fails.
        assert!(part.slice_oid_range(10, 15).is_err());
        assert!(part.slice_oid_range(25, 40).is_err());
    }

    #[test]
    fn typed_access_mismatch() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        assert!(c.i64_values().is_err());
        assert!(c.bool_values().is_err());
        assert_eq!(c.f64_values().unwrap(), &[1.0, 2.0]);
        let e = c.i64_values().unwrap_err();
        assert!(matches!(e, ColumnarError::TypeMismatch { .. }));
    }

    #[test]
    fn gather_by_oid_checks_alignment() {
        let c = Column::from_i64((0..100).map(|v| v * 2).collect());
        let part = c.slice(50, 50).unwrap(); // oids [50, 100)
        let g = part.gather_oids(&[50, 99, 60]).unwrap();
        assert_eq!(g.i64_values().unwrap(), &[100, 198, 120]);

        // oid 10 lies before the partition: invalid access.
        let err = part.gather_oids(&[10]).unwrap_err();
        assert!(matches!(err, ColumnarError::MisalignedOid { oid: 10, lo: 50, hi: 100 }));
    }

    #[test]
    fn gather_positions() {
        let c = Column::from_strings(["a", "b", "c", "d"]);
        let g = c.gather_positions(&[3, 1]).unwrap();
        let (codes, dict) = g.str_codes().unwrap();
        assert_eq!(dict[codes[0] as usize], "d");
        assert_eq!(dict[codes[1] as usize], "b");
        assert!(c.gather_positions(&[4]).is_err());
    }

    #[test]
    fn concat_packs_in_order() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_i64(vec![3]);
        let c = Column::from_i64(vec![4, 5, 6]);
        let packed = Column::concat(&[a, b, c]).unwrap();
        assert_eq!(packed.i64_values().unwrap(), &[1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn concat_rejects_mixed_types_and_empty() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_f64(vec![2.0]);
        assert!(Column::concat(&[a, b]).is_err());
        assert!(Column::concat(&[]).is_err());
    }

    #[test]
    fn concat_strings_reencodes() {
        let a = Column::from_strings(["x", "y"]);
        let b = Column::from_strings(["y", "z"]);
        let packed = Column::concat(&[a, b]).unwrap();
        let vals: Vec<ScalarValue> = packed.to_scalars();
        assert_eq!(
            vals,
            vec![
                ScalarValue::Str("x".into()),
                ScalarValue::Str("y".into()),
                ScalarValue::Str("y".into()),
                ScalarValue::Str("z".into())
            ]
        );
    }

    #[test]
    fn relabelled_base_oid_keeps_alignment() {
        // A computed intermediate holding values for base rows [100, 104).
        let computed = Column::from_i64(vec![7, 8, 9, 10]).with_base_oid(100);
        assert_eq!(computed.base_oid(), 100);
        assert_eq!(computed.end_oid(), 104);
        // Values are still read positionally.
        assert_eq!(computed.i64_values().unwrap(), &[7, 8, 9, 10]);
        // Absolute-oid access resolves against the logical base.
        let g = computed.gather_oids(&[103, 100]).unwrap();
        assert_eq!(g.i64_values().unwrap(), &[10, 7]);
        assert!(computed.gather_oids(&[0]).is_err());
        // Slicing shifts the base along.
        let s = computed.slice(2, 2).unwrap();
        assert_eq!(s.base_oid(), 102);
        assert_eq!(s.i64_values().unwrap(), &[9, 10]);
        let r = computed.slice_oid_range(101, 103).unwrap();
        assert_eq!(r.i64_values().unwrap(), &[8, 9]);
    }

    #[test]
    fn i32_bool_columns() {
        let c = Column::from_i32(vec![7, 8, 9]);
        assert_eq!(c.i32_values().unwrap(), &[7, 8, 9]);
        assert_eq!(c.get(0).unwrap(), ScalarValue::I32(7));
        let b = Column::from_bool(vec![true, false]);
        assert_eq!(b.byte_size(), 2);
        assert_eq!(b.bool_values().unwrap(), &[true, false]);
        assert_eq!(b.byte_size(), 2 + b.cache_byte_size());
    }

    #[test]
    fn typed_cache_validates_once_per_backing() {
        let c = Column::from_i64((0..1000).collect());
        assert_eq!(c.backing_validations(), 0);
        // First access validates and publishes.
        c.i64_values().unwrap();
        assert_eq!(c.backing_validations(), 1);
        // Repeated accesses through clones and disjoint windows are warm:
        // the per-backing validation count never moves again.
        let clone = c.clone();
        let hits_before = typed_cache_hits();
        for start in (0..1000).step_by(100) {
            let w = c.slice(start, 100).unwrap();
            assert_eq!(w.i64_values().unwrap()[0], start as i64);
            assert_eq!(w.backing_validations(), 1);
        }
        clone.i64_values().unwrap();
        assert_eq!(c.backing_validations(), 1);
        assert!(typed_cache_hits() >= hits_before + 11);
    }

    #[test]
    fn typed_cache_slices_warm_before_base_access() {
        // A slice taken *before* any typed access warms the shared cache
        // for the base view too (same backing, same cells).
        let c = Column::from_f64((0..64).map(|v| v as f64).collect());
        let s = c.slice(32, 16).unwrap();
        assert_eq!(s.f64_values().unwrap()[0], 32.0);
        assert_eq!(c.backing_validations(), 1);
        assert_eq!(c.f64_values().unwrap().len(), 64);
        // (Global `typed_cache_validations()` deltas are pinned by the
        // single-threaded zero_alloc_views harness; unit tests here run
        // concurrently, so only the per-backing counter is deterministic.)
        assert_eq!(c.backing_validations(), 1, "base access re-validated a warm backing");
    }

    #[test]
    fn typed_cache_mismatch_never_publishes() {
        let c = Column::from_f64(vec![1.0, 2.0]);
        assert!(c.i64_values().is_err());
        assert!(c.bool_values().is_err());
        assert_eq!(c.backing_validations(), 0);
        c.f64_values().unwrap();
        assert_eq!(c.backing_validations(), 1);
        // A published f64 cell never satisfies an i64 request.
        assert!(c.i64_values().is_err());
    }

    #[test]
    fn typed_cache_str_warm_path() {
        let c = Column::from_strings(["a", "b", "c", "d"]);
        let (codes, dict) = c.str_codes().unwrap();
        assert_eq!(dict[codes[0] as usize], "a");
        assert_eq!(c.backing_validations(), 1);
        let s = c.slice(2, 2).unwrap();
        let (codes, dict) = s.str_codes().unwrap();
        assert_eq!(dict[codes[0] as usize], "c");
        assert_eq!(s.string_column().unwrap().len(), 4);
        assert_eq!(c.backing_validations(), 1);
    }

    #[test]
    fn cache_bytes_charged_once_per_backing() {
        let c = Column::from_i64((0..100).collect());
        let w1 = c.slice(0, 50).unwrap();
        let w2 = c.slice(50, 50).unwrap();
        w1.i64_values().unwrap();
        // Windows never carry the cache charge; only the warm full-backing
        // view does, so claims sum to exactly one cache per backing.
        assert_eq!(w1.cache_byte_size(), 0);
        assert_eq!(w2.cache_byte_size(), 0);
        assert_eq!(w1.byte_size() + w2.byte_size(), 800);
        assert!(c.cache_byte_size() > 0);
        assert_eq!(c.byte_size(), 800 + c.cache_byte_size());
    }
}
