//! A catalog of named tables shared by the execution engine and workloads.

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{ColumnarError, Result};
use crate::table::Table;

/// A named collection of tables (one database instance).
///
/// The catalog is immutable once handed to the engine; workloads register all
/// generated tables up front. `BTreeMap` keeps iteration order deterministic
/// for reproducible experiments.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table under its own name.
    pub fn register(&mut self, table: Arc<Table>) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Registers a table under an explicit name (useful for aliases).
    pub fn register_as(&mut self, name: impl Into<String>, table: Arc<Table>) {
        self.tables.insert(name.into(), table);
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Arc<Table>> {
        self.tables.get(name).ok_or_else(|| ColumnarError::UnknownTable(name.to_string()))
    }

    /// True when the catalog holds a table of that name.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total approximate size of the catalog in bytes.
    pub fn byte_size(&self) -> usize {
        self.tables.values().map(|t| t.byte_size()).sum()
    }

    /// Name and row count of the largest table (by rows); used by the
    /// heuristic parallelizer which "uses ... the largest table size to
    /// identify the number of partitions" (paper §4.2.1).
    pub fn largest_table(&self) -> Option<(&str, usize)> {
        self.tables.values().max_by_key(|t| t.row_count()).map(|t| (t.name(), t.row_count()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::TableBuilder;

    fn table(name: &str, rows: usize) -> Arc<Table> {
        TableBuilder::new(name).i64_column("id", (0..rows as i64).collect()).build().unwrap()
    }

    #[test]
    fn register_and_lookup() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(table("part", 10));
        c.register(table("lineitem", 100));
        assert_eq!(c.len(), 2);
        assert!(c.has_table("part"));
        assert!(!c.has_table("orders"));
        assert_eq!(c.table("lineitem").unwrap().row_count(), 100);
        assert!(matches!(c.table("orders").unwrap_err(), ColumnarError::UnknownTable(_)));
        assert_eq!(c.table_names().collect::<Vec<_>>(), vec!["lineitem", "part"]);
        assert!(c.byte_size() > 0);
    }

    #[test]
    fn register_as_alias() {
        let mut c = Catalog::new();
        c.register_as("li_alias", table("lineitem", 5));
        assert!(c.has_table("li_alias"));
        assert!(!c.has_table("lineitem"));
    }

    #[test]
    fn largest_table() {
        let mut c = Catalog::new();
        assert_eq!(c.largest_table(), None);
        c.register(table("part", 10));
        c.register(table("lineitem", 100));
        c.register(table("orders", 50));
        assert_eq!(c.largest_table(), Some(("lineitem", 100)));
    }

    #[test]
    fn replace_table() {
        let mut c = Catalog::new();
        c.register(table("t", 1));
        c.register(table("t", 9));
        assert_eq!(c.len(), 1);
        assert_eq!(c.table("t").unwrap().row_count(), 9);
    }
}
