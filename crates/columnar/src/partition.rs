//! Range partitioning and boundary alignment.
//!
//! Adaptive parallelization creates *dynamically sized* range partitions: each
//! mutation halves the partition of the currently most expensive operator, so
//! the partition set ends up containing ranges of different sizes whose
//! boundaries stay aligned with the base column (paper Fig. 8). This module
//! provides:
//!
//! * [`RowRange`] — a half-open `[start, end)` row/oid range.
//! * [`PartitionSet`] — an ordered set of ranges covering `[0, n)` exactly
//!   once, supporting the "split the expensive partition" operation and the
//!   static equi-range partitioning used by the heuristic baseline.
//! * [`AlignmentScenario`] / [`align_ranges`] — the boundary relationships of
//!   paper Fig. 9 that arise between a candidate-list partition and a value
//!   column partition during tuple reconstruction, plus the clamping needed
//!   to restore a valid access.

use crate::error::{ColumnarError, Result};
use crate::Oid;

/// A half-open range of row positions / oids: `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowRange {
    /// First row of the range.
    pub start: usize,
    /// One past the last row of the range.
    pub end: usize,
}

impl RowRange {
    /// Creates a range; `start` must not exceed `end`.
    pub fn new(start: usize, end: usize) -> Self {
        assert!(start <= end, "range start {start} exceeds end {end}");
        RowRange { start, end }
    }

    /// Number of rows covered.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// True when `row` falls inside the range.
    pub fn contains(&self, row: usize) -> bool {
        row >= self.start && row < self.end
    }

    /// True when `other` is entirely inside `self`.
    pub fn contains_range(&self, other: &RowRange) -> bool {
        other.start >= self.start && other.end <= self.end
    }

    /// Intersection of two ranges (empty range at `self.start.max(other.start)` when disjoint).
    pub fn intersect(&self, other: &RowRange) -> RowRange {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end).max(start);
        RowRange { start, end }
    }

    /// Splits the range in two halves at its midpoint.
    ///
    /// The left half receives the extra row when the length is odd, matching
    /// the "introduce two new partitions" step of the basic mutation.
    pub fn split(&self) -> (RowRange, RowRange) {
        let mid = self.start + self.len().div_ceil(2);
        (RowRange::new(self.start, mid), RowRange::new(mid, self.end))
    }

    /// Splits the range into `n` near-equal contiguous pieces (static / heuristic partitioning).
    pub fn split_even(&self, n: usize) -> Vec<RowRange> {
        assert!(n > 0, "cannot split into zero partitions");
        let len = self.len();
        let base = len / n;
        let rem = len % n;
        let mut out = Vec::with_capacity(n);
        let mut cursor = self.start;
        for i in 0..n {
            let size = base + usize::from(i < rem);
            out.push(RowRange::new(cursor, cursor + size));
            cursor += size;
        }
        out
    }

    /// Start of the range as an oid.
    pub fn start_oid(&self) -> Oid {
        self.start as Oid
    }

    /// End of the range as an oid.
    pub fn end_oid(&self) -> Oid {
        self.end as Oid
    }
}

/// The boundary relationship between two ranges, per paper Fig. 9.
///
/// `left` is typically the oid range covered by a candidate list (LT in the
/// paper's Fig. 10), `right` the oid range of the value column slice being
/// probed (RH). Any scenario other than [`AlignmentScenario::Exact`] or
/// [`AlignmentScenario::LeftInsideRight`] requires clamping the left range
/// before tuple reconstruction, otherwise lookups would be invalid accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlignmentScenario {
    /// Boundaries coincide exactly (Fig. 9A — fixed-size partitions).
    Exact,
    /// The left range lies strictly inside the right range (valid access).
    LeftInsideRight,
    /// The left range strictly contains the right range (both boundaries overshoot).
    LeftContainsRight,
    /// The left range starts before the right range and ends inside it.
    LeftOvershootsStart,
    /// The left range starts inside the right range and ends after it (Fig. 9D).
    LeftOvershootsEnd,
    /// The ranges do not overlap at all.
    Disjoint,
}

/// Classifies the boundary relationship between `left` and `right` and
/// returns the clamped (aligned) left range that guarantees valid accesses.
///
/// The clamped range is simply the intersection — the paper's example
/// ("the lower boundary of LT is adjusted by removing row-id 8, to match the
/// lower boundary of RH") is exactly an intersection of oid ranges.
pub fn align_ranges(left: &RowRange, right: &RowRange) -> (AlignmentScenario, RowRange) {
    let clamped = left.intersect(right);
    let scenario = if left == right {
        AlignmentScenario::Exact
    } else if clamped.is_empty() && (left.end <= right.start || left.start >= right.end) {
        AlignmentScenario::Disjoint
    } else if right.contains_range(left) {
        AlignmentScenario::LeftInsideRight
    } else if left.contains_range(right) {
        AlignmentScenario::LeftContainsRight
    } else if left.start < right.start {
        AlignmentScenario::LeftOvershootsStart
    } else {
        AlignmentScenario::LeftOvershootsEnd
    };
    (scenario, clamped)
}

/// Clamps a sorted-or-unsorted list of oids to a target oid range, dropping
/// the ones that fall outside.
///
/// Used by the fetch operator when the adaptive partitioner produced a
/// candidate list whose boundaries overshoot the value-column slice.
pub fn clamp_oids(oids: &[Oid], target: &RowRange) -> Vec<Oid> {
    oids.iter()
        .copied()
        .filter(|&o| (o as usize) >= target.start && (o as usize) < target.end)
        .collect()
}

/// An ordered set of ranges that partitions `[0, total_rows)` exactly once.
///
/// Invariants (validated by [`PartitionSet::validate`] and enforced by the
/// mutating operations): ranges are sorted, non-empty, contiguous and cover
/// the domain with no gaps and no overlaps — the "no repetition / no
/// omission" requirement of paper §2.3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartitionSet {
    total_rows: usize,
    ranges: Vec<RowRange>,
}

impl PartitionSet {
    /// A single partition covering the whole domain (the serial plan's view).
    pub fn single(total_rows: usize) -> Self {
        PartitionSet { total_rows, ranges: vec![RowRange::new(0, total_rows)] }
    }

    /// `n` near-equal static partitions (heuristic parallelization).
    pub fn equal(total_rows: usize, n: usize) -> Self {
        let ranges = RowRange::new(0, total_rows)
            .split_even(n)
            .into_iter()
            .filter(|r| !r.is_empty() || total_rows == 0)
            .collect::<Vec<_>>();
        let ranges = if ranges.is_empty() { vec![RowRange::new(0, total_rows)] } else { ranges };
        PartitionSet { total_rows, ranges }
    }

    /// Builds a partition set from explicit ranges, validating the invariants.
    pub fn from_ranges(total_rows: usize, ranges: Vec<RowRange>) -> Result<Self> {
        let set = PartitionSet { total_rows, ranges };
        set.validate()?;
        Ok(set)
    }

    /// Number of partitions.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// True when there are no partitions (only possible for an empty domain).
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }

    /// Total number of rows covered.
    pub fn total_rows(&self) -> usize {
        self.total_rows
    }

    /// The partition ranges, in base-column order.
    pub fn ranges(&self) -> &[RowRange] {
        &self.ranges
    }

    /// The `i`-th partition.
    pub fn range(&self, i: usize) -> RowRange {
        self.ranges[i]
    }

    /// Index of the partition containing `row`, if any.
    pub fn partition_of(&self, row: usize) -> Option<usize> {
        self.ranges.iter().position(|r| r.contains(row))
    }

    /// Size of the largest partition.
    pub fn max_partition_rows(&self) -> usize {
        self.ranges.iter().map(RowRange::len).max().unwrap_or(0)
    }

    /// Size of the smallest partition.
    pub fn min_partition_rows(&self) -> usize {
        self.ranges.iter().map(RowRange::len).min().unwrap_or(0)
    }

    /// Splits partition `i` into two halves (the adaptive "basic mutation"
    /// partitioning step), keeping the set ordered and aligned.
    ///
    /// Returns the indices of the two new partitions. Splitting a
    /// single-row partition is rejected.
    pub fn split(&mut self, i: usize) -> Result<(usize, usize)> {
        let range = *self
            .ranges
            .get(i)
            .ok_or(ColumnarError::OutOfBounds { index: i, len: self.ranges.len() })?;
        if range.len() < 2 {
            return Err(ColumnarError::InvalidPartitioning(format!(
                "partition {i} covering [{}, {}) is too small to split",
                range.start, range.end
            )));
        }
        let (a, b) = range.split();
        self.ranges[i] = a;
        self.ranges.insert(i + 1, b);
        Ok((i, i + 1))
    }

    /// Validates the partition invariants (coverage, ordering, no overlap).
    pub fn validate(&self) -> Result<()> {
        if self.total_rows == 0 {
            return Ok(());
        }
        if self.ranges.is_empty() {
            return Err(ColumnarError::InvalidPartitioning(
                "no partitions for a non-empty domain".to_string(),
            ));
        }
        if self.ranges[0].start != 0 {
            return Err(ColumnarError::InvalidPartitioning(format!(
                "first partition starts at {}, expected 0",
                self.ranges[0].start
            )));
        }
        for w in self.ranges.windows(2) {
            if w[0].end != w[1].start {
                return Err(ColumnarError::InvalidPartitioning(format!(
                    "gap or overlap between [{}, {}) and [{}, {})",
                    w[0].start, w[0].end, w[1].start, w[1].end
                )));
            }
        }
        for r in &self.ranges {
            if r.is_empty() {
                return Err(ColumnarError::InvalidPartitioning(format!(
                    "empty partition at [{}, {})",
                    r.start, r.end
                )));
            }
        }
        let last = self.ranges.last().expect("non-empty");
        if last.end != self.total_rows {
            return Err(ColumnarError::InvalidPartitioning(format!(
                "last partition ends at {}, expected {}",
                last.end, self.total_rows
            )));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_range_basics() {
        let r = RowRange::new(10, 20);
        assert_eq!(r.len(), 10);
        assert!(!r.is_empty());
        assert!(r.contains(10));
        assert!(r.contains(19));
        assert!(!r.contains(20));
        assert_eq!(r.start_oid(), 10);
        assert_eq!(r.end_oid(), 20);
        assert!(RowRange::new(5, 5).is_empty());
    }

    #[test]
    #[should_panic(expected = "exceeds end")]
    fn row_range_rejects_inverted() {
        RowRange::new(5, 4);
    }

    #[test]
    fn split_halves_with_left_bias() {
        let (a, b) = RowRange::new(0, 10).split();
        assert_eq!((a, b), (RowRange::new(0, 5), RowRange::new(5, 10)));
        let (a, b) = RowRange::new(0, 11).split();
        assert_eq!((a, b), (RowRange::new(0, 6), RowRange::new(6, 11)));
        let (a, b) = RowRange::new(3, 5).split();
        assert_eq!((a, b), (RowRange::new(3, 4), RowRange::new(4, 5)));
    }

    #[test]
    fn split_even_covers_domain() {
        let parts = RowRange::new(0, 10).split_even(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], RowRange::new(0, 4));
        assert_eq!(parts[1], RowRange::new(4, 7));
        assert_eq!(parts[2], RowRange::new(7, 10));
        let total: usize = parts.iter().map(RowRange::len).sum();
        assert_eq!(total, 10);
    }

    #[test]
    fn intersection() {
        let a = RowRange::new(0, 10);
        let b = RowRange::new(5, 15);
        assert_eq!(a.intersect(&b), RowRange::new(5, 10));
        let c = RowRange::new(20, 30);
        assert!(a.intersect(&c).is_empty());
    }

    #[test]
    fn alignment_scenarios_match_figure_9() {
        // A: exact alignment.
        let (s, c) = align_ranges(&RowRange::new(0, 8), &RowRange::new(0, 8));
        assert_eq!(s, AlignmentScenario::Exact);
        assert_eq!(c, RowRange::new(0, 8));

        // Left inside right: still a valid access.
        let (s, c) = align_ranges(&RowRange::new(2, 6), &RowRange::new(0, 8));
        assert_eq!(s, AlignmentScenario::LeftInsideRight);
        assert_eq!(c, RowRange::new(2, 6));

        // Left contains right.
        let (s, c) = align_ranges(&RowRange::new(0, 10), &RowRange::new(2, 6));
        assert_eq!(s, AlignmentScenario::LeftContainsRight);
        assert_eq!(c, RowRange::new(2, 6));

        // Fig. 9D: LT starts after RH start and extends beyond RH end;
        // clamping removes the overshooting tail.
        let (s, c) = align_ranges(&RowRange::new(2, 9), &RowRange::new(1, 8));
        assert_eq!(s, AlignmentScenario::LeftOvershootsEnd);
        assert_eq!(c, RowRange::new(2, 8));

        // Mirror image: LT starts before RH.
        let (s, c) = align_ranges(&RowRange::new(0, 5), &RowRange::new(3, 8));
        assert_eq!(s, AlignmentScenario::LeftOvershootsStart);
        assert_eq!(c, RowRange::new(3, 5));

        // Disjoint ranges clamp to empty.
        let (s, c) = align_ranges(&RowRange::new(0, 3), &RowRange::new(5, 8));
        assert_eq!(s, AlignmentScenario::Disjoint);
        assert!(c.is_empty());
    }

    #[test]
    fn clamp_oids_drops_out_of_range() {
        let oids = vec![2, 4, 5, 7, 8];
        let clamped = clamp_oids(&oids, &RowRange::new(1, 8));
        assert_eq!(clamped, vec![2, 4, 5, 7]);
        let clamped = clamp_oids(&oids, &RowRange::new(5, 6));
        assert_eq!(clamped, vec![5]);
        assert!(clamp_oids(&oids, &RowRange::new(20, 30)).is_empty());
    }

    #[test]
    fn partition_set_single_and_equal() {
        let s = PartitionSet::single(100);
        assert_eq!(s.len(), 1);
        assert_eq!(s.range(0), RowRange::new(0, 100));
        s.validate().unwrap();

        let e = PartitionSet::equal(100, 8);
        assert_eq!(e.len(), 8);
        e.validate().unwrap();
        assert_eq!(e.max_partition_rows(), 13);
        assert_eq!(e.min_partition_rows(), 12);

        // More partitions than rows: degenerates to one partition per row.
        let tiny = PartitionSet::equal(3, 8);
        tiny.validate().unwrap();
        assert_eq!(tiny.len(), 3);
    }

    #[test]
    fn dynamic_split_mirrors_figure_8() {
        // Fig. 8: column split into partitions 0|1, then 1 -> 2|3, then 2 -> 4|5.
        let mut s = PartitionSet::single(1000);
        s.split(0).unwrap(); // B: two partitions
        assert_eq!(s.len(), 2);
        s.split(1).unwrap(); // C: partition 1 split into 2nd and 3rd
        assert_eq!(s.len(), 3);
        s.split(1).unwrap(); // D: 2nd partition split into 4th and 5th
        assert_eq!(s.len(), 4);
        s.validate().unwrap();
        // Partitions have different sizes but stay aligned on the base column.
        assert_eq!(s.range(0), RowRange::new(0, 500));
        assert_eq!(s.range(1), RowRange::new(500, 625));
        assert_eq!(s.range(2), RowRange::new(625, 750));
        assert_eq!(s.range(3), RowRange::new(750, 1000));
        assert_eq!(s.partition_of(700), Some(2));
        assert_eq!(s.partition_of(999), Some(3));
        assert_eq!(s.partition_of(1000), None);
    }

    #[test]
    fn split_rejects_tiny_partition() {
        let mut s = PartitionSet::single(1);
        assert!(s.split(0).is_err());
        let mut s = PartitionSet::single(4);
        assert!(s.split(5).is_err());
    }

    #[test]
    fn from_ranges_validates() {
        assert!(
            PartitionSet::from_ranges(10, vec![RowRange::new(0, 5), RowRange::new(5, 10)]).is_ok()
        );
        // Gap.
        assert!(
            PartitionSet::from_ranges(10, vec![RowRange::new(0, 4), RowRange::new(5, 10)]).is_err()
        );
        // Overlap.
        assert!(
            PartitionSet::from_ranges(10, vec![RowRange::new(0, 6), RowRange::new(5, 10)]).is_err()
        );
        // Wrong end.
        assert!(PartitionSet::from_ranges(10, vec![RowRange::new(0, 9)]).is_err());
        // Wrong start.
        assert!(PartitionSet::from_ranges(10, vec![RowRange::new(1, 10)]).is_err());
        // Empty partition inside.
        assert!(PartitionSet::from_ranges(
            10,
            vec![RowRange::new(0, 5), RowRange::new(5, 5), RowRange::new(5, 10)]
        )
        .is_err());
        // Empty domain is fine.
        assert!(PartitionSet::from_ranges(0, vec![]).is_ok());
    }
}
