//! Synthetic data generators.
//!
//! The paper's experiments need three kinds of data:
//!
//! * uniformly distributed columns (TPC-H is "uniformly distributed data",
//!   §4.2.1) with controllable selectivity,
//! * the skewed column of Fig. 13 (random first half, five clusters of
//!   identical values in the second half) used by the data-skew experiment
//!   (Fig. 12), and
//! * Zipf-skewed foreign keys / dimension references for the TPC-DS-like
//!   workload ("the presence of the skewed data", §4.2.2).
//!
//! All generators are deterministic given a seed so experiments are
//! reproducible run to run.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic RNG used by every generator.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// `n` uniform `i64` values in `[lo, hi)`.
pub fn uniform_i64(n: usize, lo: i64, hi: i64, seed: u64) -> Vec<i64> {
    assert!(lo < hi, "empty value range");
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` uniform `i32` values in `[lo, hi)`.
pub fn uniform_i32(n: usize, lo: i32, hi: i32, seed: u64) -> Vec<i32> {
    assert!(lo < hi, "empty value range");
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// `n` uniform `f64` values in `[lo, hi)`.
pub fn uniform_f64(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<f64> {
    assert!(lo < hi, "empty value range");
    let mut r = rng(seed);
    (0..n).map(|_| r.gen_range(lo..hi)).collect()
}

/// The dense sequence `0..n` (primary keys / virtual oids materialized).
pub fn sequential_i64(n: usize) -> Vec<i64> {
    (0..n as i64).collect()
}

/// `n` uniform foreign keys referencing a parent table of `n_parent` rows.
pub fn fk_uniform(n: usize, n_parent: usize, seed: u64) -> Vec<i64> {
    assert!(n_parent > 0, "parent table must not be empty");
    uniform_i64(n, 0, n_parent as i64, seed)
}

/// `n` values drawn from `0..n_distinct` following a Zipf distribution with
/// exponent `theta` (`theta = 0` is uniform; larger is more skewed).
pub fn zipf_i64(n: usize, n_distinct: usize, theta: f64, seed: u64) -> Vec<i64> {
    assert!(n_distinct > 0, "need at least one distinct value");
    assert!(theta >= 0.0, "zipf exponent must be non-negative");
    // Precompute the cumulative distribution once; n_distinct is modest in
    // all workloads (dimension cardinalities), so this is cheap.
    let mut cdf = Vec::with_capacity(n_distinct);
    let mut acc = 0.0f64;
    for k in 1..=n_distinct {
        acc += 1.0 / (k as f64).powf(theta);
        cdf.push(acc);
    }
    let total = acc;
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            let u: f64 = r.gen_range(0.0..total);
            // Binary search for the first cdf entry >= u.
            let idx = cdf.partition_point(|&c| c < u);
            idx.min(n_distinct - 1) as i64
        })
        .collect()
}

/// Value assigned to skew cluster `i` (0-based) by [`skewed_column`].
pub fn skew_cluster_value(i: usize) -> i64 {
    SKEW_CLUSTER_BASE + i as i64
}

/// First value used for the identical-value clusters of [`skewed_column`].
pub const SKEW_CLUSTER_BASE: i64 = 1_000_000_000;

/// Number of identical-value clusters in [`skewed_column`] (paper: 5 clusters).
pub const SKEW_CLUSTERS: usize = 5;

/// The skewed column of paper Fig. 13, scaled to `n` rows.
///
/// * Rows `[0, n/2)`: uniform random values in `[0, SKEW_CLUSTER_BASE)`.
/// * Rows `[n/2, n)`: five sequential clusters of `n/10` rows each, every row
///   within a cluster holding the identical value [`skew_cluster_value`]`(i)`.
///
/// Selecting `value == skew_cluster_value(i)` for `k` of the clusters thus
/// matches `k * 10%` of the rows, all concentrated in one region of the
/// column — which is exactly what produces execution skew under static
/// equi-range partitioning (paper §4.1.1).
pub fn skewed_column(n: usize, seed: u64) -> Vec<i64> {
    assert!(n >= 10, "skewed column needs at least 10 rows");
    let half = n / 2;
    let cluster_rows = (n - half) / SKEW_CLUSTERS;
    let mut out = uniform_i64(half, 0, SKEW_CLUSTER_BASE, seed);
    for c in 0..SKEW_CLUSTERS {
        let value = skew_cluster_value(c);
        let rows = if c == SKEW_CLUSTERS - 1 {
            n - out.len() // last cluster absorbs the rounding remainder
        } else {
            cluster_rows
        };
        out.extend(std::iter::repeat_n(value, rows));
    }
    debug_assert_eq!(out.len(), n);
    out
}

/// `n` dates as days-since-epoch drawn uniformly from `[start_day, end_day)`.
///
/// TPC-H dates span 1992-01-01 .. 1998-12-31; the workload crate passes the
/// corresponding day numbers.
pub fn dates(n: usize, start_day: i32, end_day: i32, seed: u64) -> Vec<i32> {
    uniform_i32(n, start_day, end_day, seed)
}

/// `n` strings picked uniformly from `choices`.
pub fn pick_strings(n: usize, choices: &[&str], seed: u64) -> Vec<String> {
    assert!(!choices.is_empty(), "need at least one choice");
    let mut r = rng(seed);
    (0..n).map(|_| choices[r.gen_range(0..choices.len())].to_string()).collect()
}

/// `n` strings picked from `choices` with Zipf-skewed frequencies.
pub fn pick_strings_zipf(n: usize, choices: &[&str], theta: f64, seed: u64) -> Vec<String> {
    assert!(!choices.is_empty(), "need at least one choice");
    zipf_i64(n, choices.len(), theta, seed)
        .into_iter()
        .map(|i| choices[i as usize].to_string())
        .collect()
}

/// Fixed-point decimal helper: converts a float price into the `i64`
/// representation used by the workloads (two decimal digits).
pub fn to_decimal2(value: f64) -> i64 {
    (value * 100.0).round() as i64
}

/// `n` fixed-point(2) prices drawn uniformly from `[lo, hi)` (in whole units).
pub fn prices_decimal2(n: usize, lo: f64, hi: f64, seed: u64) -> Vec<i64> {
    uniform_f64(n, lo, hi, seed).into_iter().map(to_decimal2).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn uniform_is_deterministic_and_in_range() {
        let a = uniform_i64(1000, 10, 20, 42);
        let b = uniform_i64(1000, 10, 20, 42);
        assert_eq!(a, b);
        assert!(a.iter().all(|&v| (10..20).contains(&v)));
        let c = uniform_i64(1000, 10, 20, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn uniform_f64_and_i32_ranges() {
        let f = uniform_f64(100, 0.0, 1.0, 7);
        assert!(f.iter().all(|&v| (0.0..1.0).contains(&v)));
        let i = uniform_i32(100, -5, 5, 7);
        assert!(i.iter().all(|&v| (-5..5).contains(&v)));
    }

    #[test]
    fn sequential_and_fk() {
        assert_eq!(sequential_i64(4), vec![0, 1, 2, 3]);
        let fk = fk_uniform(500, 10, 1);
        assert!(fk.iter().all(|&v| (0..10).contains(&v)));
        // All parents should be referenced with 500 draws over 10 parents.
        let distinct: HashSet<i64> = fk.iter().copied().collect();
        assert_eq!(distinct.len(), 10);
    }

    #[test]
    fn zipf_is_skewed() {
        let vals = zipf_i64(20_000, 100, 1.2, 5);
        assert!(vals.iter().all(|&v| (0..100).contains(&v)));
        let zero = vals.iter().filter(|&&v| v == 0).count();
        let tail = vals.iter().filter(|&&v| v == 99).count();
        // Value 0 must be far more frequent than the tail value.
        assert!(zero > tail * 5, "zipf skew not visible: {zero} vs {tail}");
    }

    #[test]
    fn zipf_theta_zero_is_roughly_uniform() {
        let vals = zipf_i64(50_000, 10, 0.0, 9);
        let zero = vals.iter().filter(|&&v| v == 0).count() as f64;
        let nine = vals.iter().filter(|&&v| v == 9).count() as f64;
        assert!((zero / nine) < 1.3 && (nine / zero) < 1.3);
    }

    #[test]
    fn skewed_column_matches_figure_13() {
        let n = 1000;
        let col = skewed_column(n, 3);
        assert_eq!(col.len(), n);
        // First half is random, below the cluster base.
        assert!(col[..n / 2].iter().all(|&v| v < SKEW_CLUSTER_BASE));
        // Second half consists of exactly the 5 cluster values, each forming
        // one contiguous run of ~n/10 rows.
        let second = &col[n / 2..];
        let distinct: HashSet<i64> = second.iter().copied().collect();
        assert_eq!(distinct.len(), SKEW_CLUSTERS);
        for c in 0..SKEW_CLUSTERS {
            let v = skew_cluster_value(c);
            let count = second.iter().filter(|&&x| x == v).count();
            assert!(count >= n / 10, "cluster {c} too small: {count}");
        }
        // Clusters are sequential (sorted run order).
        let mut seen = Vec::new();
        for &v in second {
            if seen.last() != Some(&v) {
                seen.push(v);
            }
        }
        assert_eq!(seen, (0..SKEW_CLUSTERS).map(skew_cluster_value).collect::<Vec<_>>());
    }

    #[test]
    fn dates_and_strings() {
        let d = dates(100, 8035, 9861, 11); // 1992-01-01 .. 1996-xx
        assert!(d.iter().all(|&v| (8035..9861).contains(&v)));
        let s = pick_strings(50, &["AIR", "RAIL", "TRUCK"], 2);
        assert_eq!(s.len(), 50);
        assert!(s.iter().all(|v| ["AIR", "RAIL", "TRUCK"].contains(&v.as_str())));
        let z = pick_strings_zipf(5000, &["a", "b", "c", "d"], 1.5, 2);
        let a = z.iter().filter(|v| v.as_str() == "a").count();
        let d4 = z.iter().filter(|v| v.as_str() == "d").count();
        assert!(a > d4);
    }

    #[test]
    fn decimal_helpers() {
        assert_eq!(to_decimal2(12.345), 1235);
        assert_eq!(to_decimal2(0.1), 10);
        let p = prices_decimal2(10, 1.0, 2.0, 4);
        assert!(p.iter().all(|&v| (100..=200).contains(&v)));
    }
}
