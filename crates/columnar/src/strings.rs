//! Dictionary-encoded string columns.
//!
//! Analytical string columns (`p_type`, `o_orderpriority`, ...) have few
//! distinct values, so they are stored as a `u32` code per row plus a shared,
//! immutable dictionary. Predicates such as the `batstr.like` calls in the
//! paper's Q14 plan are evaluated once per dictionary entry and then become a
//! cheap code-set membership test per row.

use std::collections::HashMap;
use std::sync::Arc;

/// Dictionary-encoded string column.
#[derive(Debug, Clone)]
pub struct StringColumn {
    codes: Vec<u32>,
    dict: Arc<Vec<String>>,
}

impl StringColumn {
    /// Builds a column from row values, constructing the dictionary on the fly.
    pub fn from_values<S: AsRef<str>, I: IntoIterator<Item = S>>(values: I) -> Self {
        let mut dict: Vec<String> = Vec::new();
        let mut index: HashMap<String, u32> = HashMap::new();
        let mut codes = Vec::new();
        for v in values {
            let s = v.as_ref();
            let code = match index.get(s) {
                Some(&c) => c,
                None => {
                    let c = dict.len() as u32;
                    dict.push(s.to_string());
                    index.insert(s.to_string(), c);
                    c
                }
            };
            codes.push(code);
        }
        StringColumn { codes, dict: Arc::new(dict) }
    }

    /// Builds a column from pre-computed codes and a shared dictionary.
    ///
    /// # Panics
    /// Panics if any code is out of range for the dictionary.
    pub fn from_codes(codes: Vec<u32>, dict: Arc<Vec<String>>) -> Self {
        assert!(codes.iter().all(|&c| (c as usize) < dict.len()), "dictionary code out of range");
        StringColumn { codes, dict }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True when the column holds no rows.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// Number of distinct dictionary entries.
    pub fn dict_len(&self) -> usize {
        self.dict.len()
    }

    /// The shared dictionary.
    pub fn dict(&self) -> &Arc<Vec<String>> {
        &self.dict
    }

    /// Per-row dictionary codes.
    pub fn codes(&self) -> &[u32] {
        &self.codes
    }

    /// String value of row `i`.
    pub fn value(&self, i: usize) -> &str {
        &self.dict[self.codes[i] as usize]
    }

    /// Dictionary code of row `i`.
    pub fn code(&self, i: usize) -> u32 {
        self.codes[i]
    }

    /// Looks up the code for an exact string, if present in the dictionary.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.dict.iter().position(|d| d == s).map(|p| p as u32)
    }

    /// Returns the set of codes whose dictionary entry satisfies `pred`.
    ///
    /// This is the dictionary-side half of a `LIKE`-style predicate: the
    /// per-row half is a membership test against the returned boolean map.
    pub fn matching_codes<F: Fn(&str) -> bool>(&self, pred: F) -> Vec<bool> {
        self.dict.iter().map(|s| pred(s)).collect()
    }

    /// Materializes a sub-range as a new `StringColumn` sharing the dictionary.
    pub fn slice(&self, start: usize, len: usize) -> StringColumn {
        StringColumn {
            codes: self.codes[start..start + len].to_vec(),
            dict: Arc::clone(&self.dict),
        }
    }

    /// Gathers the rows at `positions` into a new column sharing the dictionary.
    pub fn gather(&self, positions: &[usize]) -> StringColumn {
        StringColumn {
            codes: positions.iter().map(|&p| self.codes[p]).collect(),
            dict: Arc::clone(&self.dict),
        }
    }
}

/// Simple SQL `LIKE` matcher supporting `%` (any run) and `_` (any char).
///
/// The TPC-H queries in the paper only need prefix/suffix/contains patterns
/// (`'%PROMO%'`, `'ECONOMY ANODIZED STEEL'`), but a general matcher keeps the
/// operator layer honest.
pub fn like_match(pattern: &str, value: &str) -> bool {
    fn rec(p: &[char], v: &[char]) -> bool {
        match p.first() {
            None => v.is_empty(),
            Some('%') => {
                // Try to match the rest of the pattern at every suffix.
                (0..=v.len()).any(|skip| rec(&p[1..], &v[skip..]))
            }
            Some('_') => !v.is_empty() && rec(&p[1..], &v[1..]),
            Some(&c) => v.first() == Some(&c) && rec(&p[1..], &v[1..]),
        }
    }
    let p: Vec<char> = pattern.chars().collect();
    let v: Vec<char> = value.chars().collect();
    rec(&p, &v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_dictionary() {
        let c = StringColumn::from_values(["a", "b", "a", "c", "b", "a"]);
        assert_eq!(c.len(), 6);
        assert_eq!(c.dict_len(), 3);
        assert_eq!(c.value(0), "a");
        assert_eq!(c.value(3), "c");
        assert_eq!(c.code(0), c.code(2));
        assert_ne!(c.code(0), c.code(1));
        assert!(!c.is_empty());
    }

    #[test]
    fn code_lookup() {
        let c = StringColumn::from_values(["x", "y"]);
        assert_eq!(c.code_of("x"), Some(0));
        assert_eq!(c.code_of("y"), Some(1));
        assert_eq!(c.code_of("z"), None);
    }

    #[test]
    fn matching_codes_marks_dictionary_entries() {
        let c = StringColumn::from_values(["PROMO BRUSHED", "STANDARD", "PROMO PLATED"]);
        let mask = c.matching_codes(|s| s.starts_with("PROMO"));
        assert_eq!(mask, vec![true, false, true]);
    }

    #[test]
    fn slice_and_gather_share_dictionary() {
        let c = StringColumn::from_values(["a", "b", "c", "d"]);
        let s = c.slice(1, 2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value(0), "b");
        assert!(Arc::ptr_eq(s.dict(), c.dict()));

        let g = c.gather(&[3, 0]);
        assert_eq!(g.value(0), "d");
        assert_eq!(g.value(1), "a");
        assert!(Arc::ptr_eq(g.dict(), c.dict()));
    }

    #[test]
    #[should_panic(expected = "dictionary code out of range")]
    fn from_codes_validates() {
        StringColumn::from_codes(vec![0, 5], Arc::new(vec!["only".to_string()]));
    }

    #[test]
    fn like_matcher() {
        assert!(like_match("%PROMO%", "PROMO BRUSHED COPPER"));
        assert!(like_match("%PROMO%", "SMALL PROMO CASE"));
        assert!(!like_match("%PROMO%", "STANDARD POLISHED"));
        assert!(like_match("a_c", "abc"));
        assert!(!like_match("a_c", "abbc"));
        assert!(like_match("%", ""));
        assert!(like_match("", ""));
        assert!(!like_match("", "x"));
        assert!(like_match("abc%", "abcdef"));
        assert!(like_match("%def", "abcdef"));
    }
}
