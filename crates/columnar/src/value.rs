//! Scalar values and logical data types.

use std::cmp::Ordering;
use std::fmt;

/// Logical type of a column.
///
/// Dates are stored as `Int32` (days since 1970-01-01); decimals are stored
/// as `Int64` fixed-point values exactly like MonetDB's `lng` decimals in the
/// paper's Q14 plan (`calc.lng(A2,15,2)` etc.). The storage layer does not
/// distinguish those logical flavours — the workload layer documents the
/// scale it uses per column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer (also used for fixed-point decimals).
    Int64,
    /// 32-bit signed integer (also used for dates as days since epoch).
    Int32,
    /// 64-bit IEEE float.
    Float64,
    /// Boolean.
    Bool,
    /// Dictionary-encoded string.
    Str,
}

impl DataType {
    /// Human readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DataType::Int64 => "int64",
            DataType::Int32 => "int32",
            DataType::Float64 => "float64",
            DataType::Bool => "bool",
            DataType::Str => "str",
        }
    }

    /// Width in bytes of one stored value (dictionary codes for strings).
    pub fn value_width(self) -> usize {
        match self {
            DataType::Int64 => 8,
            DataType::Int32 => 4,
            DataType::Float64 => 8,
            DataType::Bool => 1,
            DataType::Str => 4,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single scalar value, used for predicate constants and aggregate results.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarValue {
    /// 64-bit integer value.
    I64(i64),
    /// 32-bit integer value.
    I32(i32),
    /// 64-bit float value.
    F64(f64),
    /// Boolean value.
    Bool(bool),
    /// Owned string value.
    Str(String),
}

impl ScalarValue {
    /// Logical type of this scalar.
    pub fn data_type(&self) -> DataType {
        match self {
            ScalarValue::I64(_) => DataType::Int64,
            ScalarValue::I32(_) => DataType::Int32,
            ScalarValue::F64(_) => DataType::Float64,
            ScalarValue::Bool(_) => DataType::Bool,
            ScalarValue::Str(_) => DataType::Str,
        }
    }

    /// Numeric view of the scalar as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            ScalarValue::I64(v) => Some(*v as f64),
            ScalarValue::I32(v) => Some(*v as f64),
            ScalarValue::F64(v) => Some(*v),
            ScalarValue::Bool(b) => Some(if *b { 1.0 } else { 0.0 }),
            ScalarValue::Str(_) => None,
        }
    }

    /// Integer view of the scalar as `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            ScalarValue::I64(v) => Some(*v),
            ScalarValue::I32(v) => Some(*v as i64),
            ScalarValue::Bool(b) => Some(*b as i64),
            ScalarValue::F64(_) | ScalarValue::Str(_) => None,
        }
    }

    /// String view of the scalar, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            ScalarValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total order used for comparisons in tests and top-n operators.
    ///
    /// Values of different types compare by type first; `NaN` floats sort
    /// last among floats so the order is total.
    pub fn total_cmp(&self, other: &ScalarValue) -> Ordering {
        fn rank(v: &ScalarValue) -> u8 {
            match v {
                ScalarValue::Bool(_) => 0,
                ScalarValue::I32(_) => 1,
                ScalarValue::I64(_) => 2,
                ScalarValue::F64(_) => 3,
                ScalarValue::Str(_) => 4,
            }
        }
        match (self, other) {
            (ScalarValue::I64(a), ScalarValue::I64(b)) => a.cmp(b),
            (ScalarValue::I32(a), ScalarValue::I32(b)) => a.cmp(b),
            (ScalarValue::Bool(a), ScalarValue::Bool(b)) => a.cmp(b),
            (ScalarValue::F64(a), ScalarValue::F64(b)) => a.total_cmp(b),
            (ScalarValue::Str(a), ScalarValue::Str(b)) => a.cmp(b),
            _ => rank(self).cmp(&rank(other)),
        }
    }
}

impl fmt::Display for ScalarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarValue::I64(v) => write!(f, "{v}"),
            ScalarValue::I32(v) => write!(f, "{v}"),
            ScalarValue::F64(v) => write!(f, "{v}"),
            ScalarValue::Bool(v) => write!(f, "{v}"),
            ScalarValue::Str(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for ScalarValue {
    fn from(v: i64) -> Self {
        ScalarValue::I64(v)
    }
}

impl From<i32> for ScalarValue {
    fn from(v: i32) -> Self {
        ScalarValue::I32(v)
    }
}

impl From<f64> for ScalarValue {
    fn from(v: f64) -> Self {
        ScalarValue::F64(v)
    }
}

impl From<bool> for ScalarValue {
    fn from(v: bool) -> Self {
        ScalarValue::Bool(v)
    }
}

impl From<&str> for ScalarValue {
    fn from(v: &str) -> Self {
        ScalarValue::Str(v.to_string())
    }
}

impl From<String> for ScalarValue {
    fn from(v: String) -> Self {
        ScalarValue::Str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_type_names_and_widths() {
        assert_eq!(DataType::Int64.name(), "int64");
        assert_eq!(DataType::Int64.value_width(), 8);
        assert_eq!(DataType::Int32.value_width(), 4);
        assert_eq!(DataType::Bool.value_width(), 1);
        assert_eq!(DataType::Str.value_width(), 4);
        assert_eq!(DataType::Float64.to_string(), "float64");
    }

    #[test]
    fn scalar_conversions() {
        assert_eq!(ScalarValue::from(5i64).as_i64(), Some(5));
        assert_eq!(ScalarValue::from(5i32).as_i64(), Some(5));
        assert_eq!(ScalarValue::from(true).as_i64(), Some(1));
        assert_eq!(ScalarValue::from(2.5f64).as_f64(), Some(2.5));
        assert_eq!(ScalarValue::from("abc").as_str(), Some("abc"));
        assert_eq!(ScalarValue::from(2.5f64).as_i64(), None);
        assert_eq!(ScalarValue::from("abc").as_f64(), None);
    }

    #[test]
    fn scalar_types() {
        assert_eq!(ScalarValue::I64(1).data_type(), DataType::Int64);
        assert_eq!(ScalarValue::I32(1).data_type(), DataType::Int32);
        assert_eq!(ScalarValue::F64(1.0).data_type(), DataType::Float64);
        assert_eq!(ScalarValue::Bool(true).data_type(), DataType::Bool);
        assert_eq!(ScalarValue::Str("x".into()).data_type(), DataType::Str);
    }

    #[test]
    fn total_order_within_and_across_types() {
        assert_eq!(ScalarValue::I64(1).total_cmp(&ScalarValue::I64(2)), Ordering::Less);
        assert_eq!(
            ScalarValue::Str("b".into()).total_cmp(&ScalarValue::Str("a".into())),
            Ordering::Greater
        );
        // Cross-type ordering is by type rank and is stable.
        assert_eq!(ScalarValue::Bool(true).total_cmp(&ScalarValue::I64(0)), Ordering::Less);
        // NaN is ordered (total order).
        assert_eq!(
            ScalarValue::F64(f64::NAN).total_cmp(&ScalarValue::F64(f64::NAN)),
            Ordering::Equal
        );
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(ScalarValue::I64(42).to_string(), "42");
        assert_eq!(ScalarValue::Bool(false).to_string(), "false");
        assert_eq!(ScalarValue::Str("hi".into()).to_string(), "hi");
    }
}
