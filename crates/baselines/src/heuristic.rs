//! Heuristic parallelization (HP): static rewrite of a serial plan.
//!
//! Paper §4.2.1: "HP uses parameters such as the number of threads, physical
//! memory size, and the largest table size to identify the number of
//! partitions for the largest table in the serial plan. A plan re-writer
//! generates a parallel plan from a serial plan by propagating the partitions
//! to data flow dependent operators. ... in HP ... all possible
//! parallelizable operators are parallelized."
//!
//! [`heuristic_parallelize`] implements that rewriter over the same plan IR
//! the adaptive parallelizer mutates: every scan of the largest ("driver")
//! table is split into `n_partitions` equi-range scans and the partitioning
//! is propagated in topological order — a parallelizable operator whose
//! aligned inputs are all partitioned is cloned once per partition; anything
//! else receives the packed (exchange-union) result. This mirrors MonetDB's
//! mitosis + mergetable optimizer pair.

use std::collections::HashMap;

use apq_columnar::Catalog;
use apq_engine::plan::{NodeId, OperatorSpec, Plan};
use apq_engine::{EngineError, Result};

/// Rewrites `serial` into a statically parallelized plan with one partition
/// per `n_partitions`, using the largest base table referenced by the plan as
/// the partitioning driver (the heuristic MonetDB applies).
pub fn heuristic_parallelize(
    serial: &Plan,
    catalog: &Catalog,
    n_partitions: usize,
) -> Result<Plan> {
    let mut driver: Option<(String, usize)> = None;
    for id in serial.node_ids() {
        if let OperatorSpec::ScanColumn { table, .. } = &serial.node(id)?.spec {
            let rows = catalog.table(table)?.row_count();
            if driver.as_ref().is_none_or(|(_, best)| rows > *best) {
                driver = Some((table.clone(), rows));
            }
        }
    }
    match driver {
        Some((table, _)) => heuristic_parallelize_with_driver(serial, &table, n_partitions),
        None => Ok(serial.clone()),
    }
}

/// Rewrites `serial` by partitioning every scan of `driver_table` into
/// `n_partitions` equi-range scans and propagating the partitioning.
pub fn heuristic_parallelize_with_driver(
    serial: &Plan,
    driver_table: &str,
    n_partitions: usize,
) -> Result<Plan> {
    serial.validate()?;
    let n = n_partitions.max(1);
    if n == 1 {
        return Ok(serial.clone());
    }

    let mut out = Plan::new();
    // serial node id -> single (unpartitioned) node in the new plan
    let mut single: HashMap<NodeId, NodeId> = HashMap::new();
    // serial node id -> its n partitioned versions in the new plan
    let mut parts: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    // cache of exchange unions packing a partitioned node
    let mut packed: HashMap<NodeId, NodeId> = HashMap::new();

    for id in serial.topo_order()? {
        let node = serial.node(id)?.clone();
        match &node.spec {
            OperatorSpec::ScanColumn { table, column, range }
                if table == driver_table && range.len() >= n =>
            {
                let versions = range
                    .split_even(n)
                    .into_iter()
                    .map(|r| {
                        out.add(
                            OperatorSpec::ScanColumn {
                                table: table.clone(),
                                column: column.clone(),
                                range: r,
                            },
                            vec![],
                        )
                    })
                    .collect();
                parts.insert(id, versions);
            }
            spec => {
                let flags = spec.aligned_inputs(node.inputs.len());
                let aligned_partitioned: Vec<bool> = node
                    .inputs
                    .iter()
                    .zip(&flags)
                    .map(|(input, &aligned)| aligned && parts.contains_key(input))
                    .collect();
                let any_partitioned = aligned_partitioned.iter().any(|&b| b);
                let all_aligned_partitioned = node
                    .inputs
                    .iter()
                    .zip(&flags)
                    .filter(|&(_, &aligned)| aligned)
                    .all(|(input, _)| parts.contains_key(input));

                if spec.is_parallelizable() && any_partitioned && all_aligned_partitioned {
                    // Clone once per partition, propagating the partitioned inputs.
                    // Broadcast inputs that are themselves partitioned (other
                    // columns of the driver table, or intermediates derived
                    // from the same partitioned pipeline) use the matching
                    // partition: their oid / positional domain is the
                    // partition's domain, so packing them globally would
                    // mis-align tuple reconstruction (paper Fig. 9 hazards).
                    let mut versions = Vec::with_capacity(n);
                    for k in 0..n {
                        let mut inputs = Vec::with_capacity(node.inputs.len());
                        for (input, &aligned) in node.inputs.iter().zip(&flags) {
                            if aligned {
                                inputs.push(parts[input][k]);
                            } else if let Some(broadcast_parts) = parts.get(input) {
                                inputs.push(broadcast_parts[k]);
                            } else {
                                inputs.push(resolve_single(
                                    &mut out,
                                    *input,
                                    &single,
                                    &parts,
                                    &mut packed,
                                )?);
                            }
                        }
                        versions.push(out.add(spec.clone(), inputs));
                    }
                    parts.insert(id, versions);
                } else {
                    // Keep the operator single; merging combiners absorb the
                    // partitioned versions directly, everything else reads a
                    // packed exchange union.
                    let splices_partials = matches!(
                        spec,
                        OperatorSpec::FinalizeAgg { .. }
                            | OperatorSpec::MergeGrouped
                            | OperatorSpec::ExchangeUnion
                    );
                    let mut inputs = Vec::new();
                    for input in &node.inputs {
                        if let Some(versions) = parts.get(input) {
                            if splices_partials {
                                inputs.extend(versions.iter().copied());
                            } else {
                                inputs.push(resolve_single(
                                    &mut out,
                                    *input,
                                    &single,
                                    &parts,
                                    &mut packed,
                                )?);
                            }
                        } else {
                            inputs.push(*single.get(input).ok_or_else(|| {
                                EngineError::InvalidPlan(format!(
                                    "input {input} of node {id} was not rewritten"
                                ))
                            })?);
                        }
                    }
                    let new_id = out.add(spec.clone(), inputs);
                    single.insert(id, new_id);
                }
            }
        }
    }

    // Root: pack it if the root operator itself ended up partitioned.
    let root = serial
        .root()
        .ok_or_else(|| EngineError::InvalidPlan("serial plan has no root".to_string()))?;
    let new_root = if let Some(&s) = single.get(&root) {
        s
    } else {
        resolve_single(&mut out, root, &single, &parts, &mut packed)?
    };
    out.set_root(new_root);
    out.validate()?;
    Ok(out)
}

/// Returns an unpartitioned node producing the output of serial node `id`:
/// either its direct rewrite or an exchange union packing its partitions.
fn resolve_single(
    out: &mut Plan,
    id: NodeId,
    single: &HashMap<NodeId, NodeId>,
    parts: &HashMap<NodeId, Vec<NodeId>>,
    packed: &mut HashMap<NodeId, NodeId>,
) -> Result<NodeId> {
    if let Some(&s) = single.get(&id) {
        return Ok(s);
    }
    if let Some(&u) = packed.get(&id) {
        return Ok(u);
    }
    let versions = parts.get(&id).ok_or_else(|| {
        EngineError::InvalidPlan(format!("node {id} was not rewritten by the HP rewriter"))
    })?;
    let union = out.add(OperatorSpec::ExchangeUnion, versions.clone());
    packed.insert(id, union);
    Ok(union)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::{ScalarValue, TableBuilder};
    use apq_engine::{Engine, QueryOutput};
    use apq_operators::{AggFunc, BinaryOp, CmpOp, Predicate};
    use std::sync::Arc;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("fact")
                .i64_column("a", (0..rows as i64).map(|v| (v * 37) % 500).collect())
                .i64_column("b", (0..rows as i64).map(|v| v % 101).collect())
                .i64_column("fk", (0..rows as i64).map(|v| v % 50).collect())
                .i64_column("g", (0..rows as i64).map(|v| v % 7).collect())
                .build()
                .unwrap(),
        );
        c.register(
            TableBuilder::new("dim")
                .i64_column("id", (0..50).collect())
                .i64_column("attr", (0..50).map(|v| v * 2).collect())
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn scan(table: &str, column: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: table.into(),
            column: column.into(),
            range: RowRange::new(0, rows),
        }
    }

    /// Serial plan: sum(b) where a < 100 (filter + fetch + aggregate).
    fn filter_sum_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("fact", "a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 100i64) }, vec![a]);
        let b = p.add(scan("fact", "b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    /// Serial plan with a join: sum(attr * b) for fact rows where a < 100,
    /// joining fact.fk with dim.id (hash built on the dimension).
    fn join_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("fact", "a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 100i64) }, vec![a]);
        let fk = p.add(scan("fact", "fk", rows), vec![]);
        let keys = p.add(OperatorSpec::Fetch, vec![sel, fk]);
        let dim_id = p.add(scan("dim", "id", 50), vec![]);
        let build = p.add(OperatorSpec::HashBuild, vec![dim_id]);
        let probe = p.add(OperatorSpec::HashProbe, vec![keys, build]);
        let outer =
            p.add(OperatorSpec::ProjectJoinSide { side: apq_engine::JoinSide::Outer }, vec![probe]);
        let inner =
            p.add(OperatorSpec::ProjectJoinSide { side: apq_engine::JoinSide::Inner }, vec![probe]);
        let b = p.add(scan("fact", "b", rows), vec![]);
        let bvals = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let b_j = p.add(OperatorSpec::Fetch, vec![outer, bvals]);
        let attr = p.add(scan("dim", "attr", 50), vec![]);
        let attr_j = p.add(OperatorSpec::Fetch, vec![inner, attr]);
        let prod = p.add(
            OperatorSpec::Calc { op: BinaryOp::Mul, left_scalar: None, right_scalar: None },
            vec![attr_j, b_j],
        );
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![prod]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    /// Grouped plan: select g, sum(b) where a < 100 group by g.
    fn grouped_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("fact", "a", rows), vec![]);
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 100i64) }, vec![a]);
        let g = p.add(scan("fact", "g", rows), vec![]);
        let b = p.add(scan("fact", "b", rows), vec![]);
        let fetch_g = p.add(OperatorSpec::Fetch, vec![sel, g]);
        let fetch_b = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![fetch_g, fetch_b]);
        let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
        p.set_root(merge);
        p
    }

    #[test]
    fn hp_partitions_the_largest_table_and_preserves_results() {
        let rows = 10_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let serial = filter_sum_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;

        let hp = heuristic_parallelize(&serial, &cat, 8).unwrap();
        hp.validate().unwrap();
        // All parallelizable operators were parallelized 8 ways.
        assert_eq!(hp.count_of("select"), 8);
        assert_eq!(hp.count_of("fetch"), 8);
        assert_eq!(hp.count_of("aggregate"), 8);
        // 8 partitions of `a` + 8 of `b` (both columns belong to the driver table).
        assert_eq!(hp.count_of("scan"), 16);
        let out = engine.execute(&hp, &cat).unwrap().output;
        assert_eq!(out, expected);
    }

    #[test]
    fn hp_join_plan_partitions_outer_side_only() {
        let rows = 8_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let serial = join_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;
        assert!(matches!(expected, QueryOutput::Scalar(ScalarValue::I64(_))));

        let hp = heuristic_parallelize(&serial, &cat, 4).unwrap();
        hp.validate().unwrap();
        // The probe side is cloned per partition, the build side stays single.
        assert_eq!(hp.count_of("join"), 4);
        assert_eq!(hp.count_of("hashbuild"), 1);
        let out = engine.execute(&hp, &cat).unwrap().output;
        assert_eq!(out, expected);
    }

    #[test]
    fn hp_grouped_plan_merges_partials() {
        let rows = 9_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let serial = grouped_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;
        let hp = heuristic_parallelize(&serial, &cat, 6).unwrap();
        hp.validate().unwrap();
        assert_eq!(hp.count_of("groupby"), 6);
        assert_eq!(hp.count_of("mergegroup"), 1);
        let out = engine.execute(&hp, &cat).unwrap().output;
        assert_eq!(out, expected);
    }

    #[test]
    fn single_partition_or_no_scans_returns_the_serial_plan() {
        let rows = 1_000;
        let cat = catalog(rows);
        let serial = filter_sum_plan(rows);
        let same = heuristic_parallelize(&serial, &cat, 1).unwrap();
        assert_eq!(same.node_count(), serial.node_count());

        // A plan without scans is returned untouched.
        let mut p = Plan::new();
        let c = p.add(OperatorSpec::CalcScalars { op: BinaryOp::Add }, vec![]);
        // Fix arity by rebuilding a valid two-input scalar plan.
        let mut p2 = Plan::new();
        let a = p2.add(scan("fact", "a", rows), vec![]);
        let agg = p2.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![a]);
        let fin = p2.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p2.set_root(fin);
        let hp = heuristic_parallelize_with_driver(&p2, "missing_table", 4).unwrap();
        assert_eq!(hp.count_of("aggregate"), 1);
        let _ = (p, c);
    }

    #[test]
    fn explicit_driver_table_controls_partitioning() {
        let rows = 5_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let serial = join_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;
        // Partition by the dimension table instead: the probe pipeline stays
        // serial, the build side's scan is packed back together.
        let hp = heuristic_parallelize_with_driver(&serial, "dim", 4).unwrap();
        hp.validate().unwrap();
        assert_eq!(hp.count_of("join"), 1);
        let out = engine.execute(&hp, &cat).unwrap().output;
        assert_eq!(out, expected);
    }

    #[test]
    fn more_partitions_than_rows_is_clamped_by_split_even() {
        let rows = 2_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(2);
        let serial = filter_sum_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;
        let hp = heuristic_parallelize(&serial, &cat, 64).unwrap();
        hp.validate().unwrap();
        let out = engine.execute(&hp, &cat).unwrap().output;
        assert_eq!(out, expected);
        assert_eq!(hp.count_of("select"), 64);
    }
}
