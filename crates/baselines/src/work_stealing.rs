//! Work-stealing-style baseline: many small static partitions over few threads.
//!
//! Paper §4.1.1: "One may argue that the work stealing approach could solve
//! the problem of execution skew due to the static partitions. We analyze it
//! by creating a large number of smaller partitions (128) operated upon by 8
//! threads. Large number of smaller partitions allows those threads that
//! finish work early to operate on remaining partitions, while threads on
//! skewed partitions stay busy."
//!
//! The execution engine's shared task queue already behaves like a
//! work-stealing pool (idle workers pull the next ready operator), so the
//! baseline reduces to generating a statically over-partitioned plan and
//! running it on an engine with fewer workers than partitions.

use apq_columnar::Catalog;
use apq_engine::{Plan, Result};

use crate::heuristic::heuristic_parallelize;

/// Default over-partitioning factor used by the paper (128 partitions for 8 threads).
pub const DEFAULT_WORK_STEALING_PARTITIONS: usize = 128;

/// Builds the work-stealing-style plan: the serial plan statically
/// parallelized into `n_partitions` small partitions (typically far more than
/// the number of worker threads).
pub fn work_stealing_plan(serial: &Plan, catalog: &Catalog, n_partitions: usize) -> Result<Plan> {
    heuristic_parallelize(serial, catalog, n_partitions)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::TableBuilder;
    use apq_engine::plan::OperatorSpec;
    use apq_engine::Engine;
    use apq_operators::{AggFunc, CmpOp, Predicate};
    use std::sync::Arc;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("fact")
                .i64_column("a", (0..rows as i64).map(|v| v % 997).collect())
                .i64_column("b", (0..rows as i64).map(|v| v % 13).collect())
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn serial_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(
            OperatorSpec::ScanColumn {
                table: "fact".into(),
                column: "a".into(),
                range: RowRange::new(0, rows),
            },
            vec![],
        );
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 100i64) }, vec![a]);
        let b = p.add(
            OperatorSpec::ScanColumn {
                table: "fact".into(),
                column: "b".into(),
                range: RowRange::new(0, rows),
            },
            vec![],
        );
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    #[test]
    fn over_partitioned_plan_runs_on_few_threads_and_matches_serial() {
        let rows = 20_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4); // far fewer workers than partitions
        let serial = serial_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;
        let ws = work_stealing_plan(&serial, &cat, 32).unwrap();
        ws.validate().unwrap();
        assert_eq!(ws.count_of("select"), 32);
        let exec = engine.execute(&ws, &cat).unwrap();
        assert_eq!(exec.output, expected);
        // With 32 partitions on 4 workers every worker executes something.
        assert_eq!(exec.profile.workers_used(), 4);
    }

    #[test]
    fn default_partition_count_matches_the_paper() {
        assert_eq!(DEFAULT_WORK_STEALING_PARTITIONS, 128);
    }
}
