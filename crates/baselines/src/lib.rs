//! Baselines the paper's evaluation compares adaptive parallelization against.
//!
//! * [`heuristic`] — static *heuristic parallelization* (HP), "the default
//!   parallelization technique in MonetDB" (§4.2.1): the serial plan is
//!   rewritten by splitting the largest table into a fixed number of
//!   partitions (one per thread) and propagating the partitions to all
//!   data-flow dependent operators.
//! * [`work_stealing`] — the work-stealing-style configuration of §4.1.1:
//!   many small static partitions (e.g. 128) executed by few threads, so idle
//!   threads pick up remaining partitions from the shared queue.
//! * [`admission`] — an admission-controlled exchange engine modelling the
//!   Vectorwise behaviour of §4.2.4: under a concurrent workload the first
//!   client receives full parallelism while later clients are throttled.

pub mod admission;
pub mod heuristic;
pub mod work_stealing;

pub use admission::{AdmissionController, AdmissionTicket};
pub use heuristic::{heuristic_parallelize, heuristic_parallelize_with_driver};
pub use work_stealing::work_stealing_plan;
