//! Admission-controlled exchange parallelism (the Vectorwise analogue).
//!
//! Paper §4.2.4: "Vectorwise uses cost model based exchange operator
//! dependent parallel plans. The resources are allocated based on the number
//! of connected clients and the system load. During a heavy concurrent
//! workload ... the first client's query gets all the resources, while the
//! queries from the remaining clients get less resources based on an
//! admission control scheme. ... We hypothesize that as workload queries are
//! invoked repeatedly, Vectorwise queries under analysis execute serially due
//! to lack of resources."
//!
//! We cannot run the closed-source Vectorwise binary, so the comparison point
//! is modelled by exactly that admission-control mechanism: a controller
//! tracks the number of active queries and grants the full degree of
//! parallelism only while the system is idle; once other clients occupy the
//! system, newly admitted queries are throttled down (to a serial plan at
//! full saturation).
//!
//! Two enforcement mechanisms exist:
//!
//! * **Plan rewriting** ([`AdmissionController::plan_for`], the seed
//!   behavior): the granted DOP is baked into a statically parallelized
//!   exchange plan, exactly like the heuristic baseline. Once admitted, a
//!   query keeps its plan even if resources free up.
//! * **Scheduler policy** ([`AdmissionController::execute_admitted`]): the
//!   plan stays maximally parallel and the granted DOP is enforced by the
//!   engine's scheduler through the query's
//!   [`apq_engine::QueryHandle`] — at most `dop` of the query's tasks
//!   execute concurrently. This is the faithful model of a resource
//!   governor: throttling happens at dispatch time, can be re-granted
//!   mid-flight ([`apq_engine::QueryHandle::set_admitted_dop`]), and leaves
//!   the plan untouched.
//!
//! With the engine's elastic resource controller enabled
//! ([`apq_engine::EngineConfig::with_controller`]), the second mechanism
//! stops being a one-shot gate and becomes an admission *policy layered
//! over the controller*: `admit()` still decides the entry grant from the
//! instantaneous load, but from then on the controller owns the grant — it
//! re-grants survivors as clients leave and claws back headroom as new ones
//! arrive, recording every change in the query's
//! [`apq_engine::QueryProfile::dop_timeline`]. That is the full
//! Vectorwise-style elasticity the paper's concurrency experiments model;
//! without the controller, behavior is exactly the historical fixed-grant
//! scheme.
//!
//! **Known limitation — two censuses.** This controller counts clients in
//! its own atomic, while the engine's registry (the census controller
//! ticks read) only learns about a query once it is submitted. A client
//! holding a ticket but not yet executing is counted here and invisible
//! there, so entry grants and mid-flight re-grant targets can disagree
//! for the whole ticket-held window. The engine's service layer closes
//! that window by folding admission into the registry itself — a ticket
//! *is* a reservation ([`apq_engine::Engine::reserve_admitted`],
//! [`apq_engine::QueryService`]); this baseline keeps the historical
//! split-census behavior as the paper's comparison point.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use apq_columnar::Catalog;
use apq_engine::{Engine, Plan, QueryExecution, QueryOptions, Result};

use crate::heuristic::heuristic_parallelize;

/// Tracks concurrently running queries and assigns each new query a degree of
/// parallelism based on the current load.
#[derive(Debug)]
pub struct AdmissionController {
    full_dop: usize,
    active: Arc<AtomicUsize>,
}

/// RAII ticket representing one admitted query; dropping it releases the slot.
#[derive(Debug)]
pub struct AdmissionTicket {
    dop: usize,
    active: Arc<AtomicUsize>,
}

impl AdmissionController {
    /// Controller granting at most `full_dop`-way parallelism to an idle system.
    pub fn new(full_dop: usize) -> Self {
        AdmissionController { full_dop: full_dop.max(1), active: Arc::new(AtomicUsize::new(0)) }
    }

    /// Number of queries currently holding a ticket.
    pub fn active_queries(&self) -> usize {
        self.active.load(Ordering::Acquire)
    }

    /// The full degree of parallelism granted to the first client.
    pub fn full_dop(&self) -> usize {
        self.full_dop
    }

    /// Degree of parallelism that would be granted right now: the resources
    /// are divided among the active clients, so the first client gets
    /// everything and clients admitted at saturation run serially.
    pub fn current_dop(&self) -> usize {
        let active = self.active_queries();
        (self.full_dop / (active + 1)).max(1)
    }

    /// Admits a query, returning its ticket (which fixes its DOP).
    pub fn admit(&self) -> AdmissionTicket {
        let dop = self.current_dop();
        self.active.fetch_add(1, Ordering::AcqRel);
        AdmissionTicket { dop, active: Arc::clone(&self.active) }
    }

    /// Builds the plan an admission-controlled exchange engine would run for
    /// this query right now, together with the ticket that must be held while
    /// the query executes.
    pub fn plan_for(&self, serial: &Plan, catalog: &Catalog) -> Result<(Plan, AdmissionTicket)> {
        let ticket = self.admit();
        let plan = if ticket.dop <= 1 {
            serial.clone()
        } else {
            heuristic_parallelize(serial, catalog, ticket.dop)?
        };
        Ok((plan, ticket))
    }

    /// Admission as a *scheduler policy*: executes `plan` (typically the
    /// fully parallelized plan) with the currently granted DOP enforced by
    /// the engine's scheduler rather than baked into the plan. The admission
    /// slot is held for the duration of the call; the execution and the DOP
    /// the query ran at are returned.
    pub fn execute_admitted(
        &self,
        engine: &Engine,
        plan: &Arc<Plan>,
        catalog: &Arc<Catalog>,
    ) -> Result<(QueryExecution, usize)> {
        let ticket = self.admit();
        let handle = engine.register_query(QueryOptions::with_admitted_dop(ticket.dop()));
        let exec = engine.execute_with_handle(plan, catalog, handle)?;
        Ok((exec, ticket.dop()))
    }
}

impl AdmissionTicket {
    /// Degree of parallelism granted to this query.
    pub fn dop(&self) -> usize {
        self.dop
    }
}

impl Drop for AdmissionTicket {
    fn drop(&mut self) {
        self.active.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::TableBuilder;
    use apq_engine::plan::OperatorSpec;
    use apq_engine::Engine;
    use apq_operators::{AggFunc, CmpOp, Predicate};

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("fact")
                .i64_column("a", (0..rows as i64).map(|v| v % 331).collect())
                .i64_column("b", (0..rows as i64).map(|v| v % 17).collect())
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn serial_plan(rows: usize) -> Plan {
        let mut p = Plan::new();
        let a = p.add(
            OperatorSpec::ScanColumn {
                table: "fact".into(),
                column: "a".into(),
                range: RowRange::new(0, rows),
            },
            vec![],
        );
        let sel =
            p.add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 50i64) }, vec![a]);
        let b = p.add(
            OperatorSpec::ScanColumn {
                table: "fact".into(),
                column: "b".into(),
                range: RowRange::new(0, rows),
            },
            vec![],
        );
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    #[test]
    fn first_client_gets_full_dop_later_clients_are_throttled() {
        let ctrl = AdmissionController::new(8);
        assert_eq!(ctrl.full_dop(), 8);
        assert_eq!(ctrl.active_queries(), 0);
        let t1 = ctrl.admit();
        assert_eq!(t1.dop(), 8);
        let t2 = ctrl.admit();
        assert_eq!(t2.dop(), 4);
        let t3 = ctrl.admit();
        assert_eq!(t3.dop(), 2);
        let t4 = ctrl.admit();
        let t5 = ctrl.admit();
        assert_eq!(t4.dop(), 2);
        assert_eq!(t5.dop(), 1);
        assert_eq!(ctrl.active_queries(), 5);
        drop(t1);
        drop(t2);
        drop(t3);
        drop(t4);
        drop(t5);
        assert_eq!(ctrl.active_queries(), 0);
        // After everyone left, the next query gets everything again.
        assert_eq!(ctrl.admit().dop(), 8);
    }

    #[test]
    fn plans_reflect_the_granted_dop_and_stay_correct() {
        let rows = 6_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(4);
        let serial = serial_plan(rows);
        let expected = engine.execute(&serial, &cat).unwrap().output;

        let ctrl = AdmissionController::new(4);
        let (fast_plan, _t1) = ctrl.plan_for(&serial, &cat).unwrap();
        assert_eq!(fast_plan.count_of("select"), 4);
        // While the first query "runs", a second one is throttled to DOP 2.
        let (mid_plan, _t2) = ctrl.plan_for(&serial, &cat).unwrap();
        assert_eq!(mid_plan.count_of("select"), 2);
        // At saturation the plan is serial.
        let (_t3, _t4) = (ctrl.admit(), ctrl.admit());
        let (slow_plan, _t5) = ctrl.plan_for(&serial, &cat).unwrap();
        assert_eq!(slow_plan.count_of("select"), 1);

        for plan in [&fast_plan, &mid_plan, &slow_plan] {
            assert_eq!(engine.execute(plan, &cat).unwrap().output, expected);
        }
    }

    #[test]
    fn zero_dop_is_clamped() {
        let ctrl = AdmissionController::new(0);
        assert_eq!(ctrl.full_dop(), 1);
        assert_eq!(ctrl.admit().dop(), 1);
    }

    #[test]
    fn scheduler_enforced_admission_preserves_results_under_both_policies() {
        use apq_engine::{EngineConfig, SchedulerPolicy};

        let rows = 6_000;
        let cat = catalog(rows);
        let serial = serial_plan(rows);
        for policy in SchedulerPolicy::ALL {
            let engine = Engine::new(EngineConfig::with_workers(4).with_scheduler(policy));
            let expected = engine.execute(&serial, &cat).unwrap().output;
            // The plan stays fully parallel; only the scheduler throttles it.
            let parallel = Arc::new(heuristic_parallelize(&serial, &cat, 4).unwrap());
            let ctrl = AdmissionController::new(4);
            // Saturate the system so the next admitted query gets DOP 1.
            let _t1 = ctrl.admit();
            let _t2 = ctrl.admit();
            let _t3 = ctrl.admit();
            let (exec, dop) = ctrl.execute_admitted(&engine, &parallel, &cat).unwrap();
            assert_eq!(dop, 1, "{policy}: expected saturation-level DOP");
            assert_eq!(exec.output, expected, "{policy}: throttled execution diverged");
            // The plan itself was not rewritten: all 4 partitions executed.
            assert_eq!(exec.profile.count_by_name()["select"], 4);
        }
    }

    #[test]
    fn engine_controller_regrants_admitted_queries_mid_flight() {
        use std::time::Duration;

        use apq_engine::{ControllerConfig, EngineConfig, QueryOptions};

        // A controller-enabled engine whose background thread is dormant;
        // ticks are driven synchronously for determinism.
        let engine = Engine::new(
            EngineConfig::with_workers(4)
                .with_controller(ControllerConfig::default().with_tick(Duration::from_secs(3_600))),
        );
        let cat = catalog(4_000);
        let plan = Arc::new(serial_plan(4_000));

        // Saturated admission: the next client would be granted DOP 1.
        let ctrl = AdmissionController::new(4);
        let _peers = (ctrl.admit(), ctrl.admit(), ctrl.admit());
        let ticket = ctrl.admit();
        assert_eq!(ticket.dop(), 1);

        // The admitted grant is only the starting point: once the engine's
        // controller sees the query alone on the pool, it re-grants the
        // whole pool, regardless of the (stale) admission census. Execute
        // on a scoped thread and tick from this one until it finishes.
        let handle = engine.register_query(QueryOptions::with_admitted_dop(ticket.dop()));
        let engine_ref = &engine;
        let exec = std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                engine_ref.execute_with_handle(&plan, &cat, Arc::clone(&handle)).unwrap()
            });
            // Wait for the query to appear in the engine's registry before
            // draining, so at least one tick is guaranteed to observe it
            // (unless it already finished, in which case tick on its
            // retained handle via the registry is moot and the timeline
            // assertions below cover only the admit grant).
            while engine_ref.in_flight_queries() == 0 && !worker.is_finished() {
                std::thread::yield_now();
            }
            let mut observed = false;
            while engine_ref.in_flight_queries() > 0 {
                observed |= engine_ref.controller_tick().governed > 0;
                std::thread::yield_now();
            }
            let exec = worker.join().unwrap();
            (exec, observed)
        });
        let (exec, tick_observed_query) = exec;
        drop(ticket);
        assert_eq!(exec.output, engine.execute(&serial_plan(4_000), &cat).unwrap().output);
        // The timeline invariantly starts at the admitted grant and only
        // ever moves to the equal-share target (the whole 4-worker pool).
        let timeline = &exec.profile.dop_timeline;
        assert_eq!(timeline[0].dop, 1);
        assert!(
            timeline.iter().skip(1).all(|e| e.dop == 4),
            "unexpected re-grant targets: {timeline:?}"
        );
        // And if any tick saw the query in the registry, the re-grant really
        // happened (not a vacuous pass). Assert on the *live* handle, not
        // the profile: the query stays registered for a moment after its
        // profile (and timeline snapshot) is taken, so a last-instant tick
        // can re-grant the handle without reaching the snapshot.
        if tick_observed_query {
            assert_eq!(handle.admitted_dop(), 4, "tick governed the query but never re-granted");
            assert!(handle.dop_timeline().len() > 1, "re-grant left no timeline event");
        }
    }

    #[test]
    fn admission_slot_is_released_after_scheduler_enforced_execution() {
        let rows = 2_000;
        let cat = catalog(rows);
        let engine = Engine::with_workers(2);
        let plan = Arc::new(serial_plan(rows));
        let ctrl = AdmissionController::new(4);
        let (_, dop) = ctrl.execute_admitted(&engine, &plan, &cat).unwrap();
        assert_eq!(dop, 4, "idle system grants the full DOP");
        assert_eq!(ctrl.active_queries(), 0, "slot must be released on return");
    }
}
