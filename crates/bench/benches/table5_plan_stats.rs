//! Table 5 bench: executing the adaptive vs heuristic TPC-H Q14 plans (the
//! plans whose operator counts and utilization the table reports), plus the
//! cost of one plan mutation step. Also prints the reproduced table.

use apq_baselines::heuristic_parallelize;
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_core::mutate_most_expensive;
use apq_workloads::tpch::{self, queries::q14, TpchScale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("table5", &cfg).expect("table5 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let serial = q14(&catalog).unwrap();
    let hp = heuristic_parallelize(&serial, &catalog, engine.n_workers()).unwrap();
    let report = common::adaptive(&cfg, &engine, &catalog, &serial);
    let profile = engine.execute(&serial, &catalog).unwrap().profile;
    let adaptive_cfg = common::adaptive_config(&cfg, &engine);

    let mut group = c.benchmark_group("table5_q14");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("execute_adaptive_plan", |b| {
        b.iter(|| black_box(engine.execute(&report.best_plan, &catalog).unwrap().output.rows()))
    });
    group.bench_function("execute_heuristic_plan", |b| {
        b.iter(|| black_box(engine.execute(&hp, &catalog).unwrap().output.rows()))
    });
    group.bench_function("one_plan_mutation", |b| {
        b.iter(|| {
            let mut plan = serial.clone();
            black_box(mutate_most_expensive(&mut plan, &profile, &adaptive_cfg).unwrap())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
