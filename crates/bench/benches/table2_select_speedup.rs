//! Table 2 bench: serial vs adaptive (AP) vs heuristic (HP) select plans.
//! Also prints the reproduced speedup grid.

use apq_baselines::heuristic_parallelize;
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::micro::select_sweep;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("table2", &cfg).expect("table2 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = select_sweep::catalog(cfg.micro_rows, cfg.seed);
    let serial = select_sweep::plan(&catalog, 50).unwrap();
    let hp = heuristic_parallelize(&serial, &catalog, engine.n_workers()).unwrap();
    let report = common::adaptive(&cfg, &engine, &catalog, &serial);

    let mut group = c.benchmark_group("table2_select_50pct");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("serial", |b| {
        b.iter(|| black_box(engine.execute(&serial, &catalog).unwrap().output.rows()))
    });
    group.bench_function("adaptive", |b| {
        b.iter(|| black_box(engine.execute(&report.best_plan, &catalog).unwrap().output.rows()))
    });
    group.bench_function("heuristic", |b| {
        b.iter(|| black_box(engine.execute(&hp, &catalog).unwrap().output.rows()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
