//! Figure 12 bench: parallel select over skewed data — static equi-range
//! partitioning vs work-stealing-style over-partitioning vs the adaptively
//! found dynamic partitioning.
//!
//! Running the bench also prints the reproduced Figure 12 series.

use apq_baselines::{heuristic_parallelize, work_stealing_plan};
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::micro::skewed;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig12", &cfg).expect("fig12 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = skewed::catalog(cfg.micro_rows, cfg.seed);
    let serial = skewed::plan(&catalog, 3).unwrap();
    let static_plan = heuristic_parallelize(&serial, &catalog, engine.n_workers()).unwrap();
    let stealing_plan = work_stealing_plan(&serial, &catalog, engine.n_workers() * 16).unwrap();
    let adaptive = common::adaptive(&cfg, &engine, &catalog, &serial);

    let mut group = c.benchmark_group("fig12_skewed_select");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("static_equal_partitions", |b| {
        b.iter(|| black_box(engine.execute(&static_plan, &catalog).unwrap().output.rows()))
    });
    group.bench_function("work_stealing_overpartitioned", |b| {
        b.iter(|| black_box(engine.execute(&stealing_plan, &catalog).unwrap().output.rows()))
    });
    group.bench_function("adaptive_dynamic_partitions", |b| {
        b.iter(|| black_box(engine.execute(&adaptive.best_plan, &catalog).unwrap().output.rows()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
