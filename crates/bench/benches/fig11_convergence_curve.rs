//! Figure 11 bench: serial vs adaptively parallelized join plan. Running the
//! bench also prints the reproduced convergence curve.

use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::micro::join_sweep;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig11", &cfg).expect("fig11 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = join_sweep::catalog(cfg.micro_rows, (cfg.micro_rows / 200).max(64), cfg.seed);
    let serial = join_sweep::plan(&catalog).unwrap();
    let report = common::adaptive(&cfg, &engine, &catalog, &serial);

    let mut group = c.benchmark_group("fig11_join_plan");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("serial", |b| {
        b.iter(|| black_box(engine.execute(&serial, &catalog).unwrap().output.rows()))
    });
    group.bench_function("adaptive_best", |b| {
        b.iter(|| black_box(engine.execute(&report.best_plan, &catalog).unwrap().output.rows()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
