//! Figure 18 bench: a complete adaptive-parallelization episode (all runs of
//! one query until convergence) — the cost the paper's robustness experiment
//! pays per invocation. Also prints the reproduced robustness tables.

use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut cfg = ExperimentConfig::smoke();
    cfg.adaptive_max_runs = 4; // keep the printed experiment fast
    for table in run_experiment("fig18", &cfg).expect("fig18 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let q6 = TpchQuery::Q6.build(&catalog).unwrap();
    let q14 = TpchQuery::Q14.build(&catalog).unwrap();

    let mut group = c.benchmark_group("fig18_adaptive_episode");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("q6_full_episode", |b| {
        b.iter(|| black_box(common::adaptive(&cfg, &engine, &catalog, &q6).total_runs))
    });
    group.bench_function("q14_full_episode", |b| {
        b.iter(|| black_box(common::adaptive(&cfg, &engine, &catalog, &q14).total_runs))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
