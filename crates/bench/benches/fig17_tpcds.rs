//! Figure 17 bench: the first TPC-DS-like query under serial, heuristic and
//! adaptive plans on the skewed star schema. Also prints the reproduced
//! tables for both machine configurations.

use apq_baselines::heuristic_parallelize;
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::tpcds::{self, TpcdsQuery, TpcdsScale};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig17", &cfg).expect("fig17 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = tpcds::generate(TpcdsScale::new(cfg.tpcds_sf), cfg.seed);
    let mut group = c.benchmark_group("fig17_tpcds");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for query in [TpcdsQuery::Q1, TpcdsQuery::Q3] {
        let serial = query.build(&catalog).unwrap();
        let hp = heuristic_parallelize(&serial, &catalog, engine.n_workers()).unwrap();
        let report = common::adaptive(&cfg, &engine, &catalog, &serial);
        group.bench_with_input(BenchmarkId::new("heuristic", query), &hp, |b, plan| {
            b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows()))
        });
        group.bench_with_input(
            BenchmarkId::new("adaptive", query),
            &report.best_plan,
            |b, plan| b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
