//! Micro-benchmarks of the individual physical operators (select, fetch,
//! hash join, aggregation, exchange union) — the building blocks whose
//! per-operator costs drive every experiment in the paper.

use apq_columnar::datagen::uniform_i64;
use apq_columnar::Column;
use apq_operators::{
    grouped_agg, pack_oids, scalar_agg, select, AggFunc, CmpOp, JoinHashTable, Predicate,
};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

const ROWS: usize = 100_000;

fn bench_select(c: &mut Criterion) {
    let column = Column::from_i64(uniform_i64(ROWS, 0, 1_000, 1));
    let predicate = Predicate::cmp(CmpOp::Lt, 250i64);
    c.bench_function("operators/select_25pct_100k", |b| {
        b.iter(|| black_box(select(&column, &predicate).unwrap().len()))
    });
}

fn bench_fetch(c: &mut Criterion) {
    let column = Column::from_i64(uniform_i64(ROWS, 0, 1_000, 2));
    let oids: Vec<u64> = (0..ROWS as u64).step_by(4).collect();
    c.bench_function("operators/fetch_25k_of_100k", |b| {
        b.iter(|| black_box(column.gather_oids(&oids).unwrap().len()))
    });
}

fn bench_hash_join(c: &mut Criterion) {
    let inner = Column::from_i64((0..1_000).collect());
    let outer = Column::from_i64(uniform_i64(ROWS, 0, 1_000, 3));
    let table = JoinHashTable::build(&inner).unwrap();
    c.bench_function("operators/hash_build_1k", |b| {
        b.iter(|| black_box(JoinHashTable::build(&inner).unwrap().len()))
    });
    c.bench_function("operators/hash_probe_100k", |b| {
        b.iter(|| black_box(table.probe(&outer).unwrap().len()))
    });
}

fn bench_aggregate(c: &mut Criterion) {
    let values = Column::from_i64(uniform_i64(ROWS, 0, 1_000, 4));
    let keys = Column::from_i64(uniform_i64(ROWS, 0, 32, 5));
    c.bench_function("operators/sum_100k", |b| {
        b.iter(|| black_box(scalar_agg(AggFunc::Sum, &values).unwrap().finish()))
    });
    c.bench_function("operators/group_sum_100k_32groups", |b| {
        b.iter(|| black_box(grouped_agg(AggFunc::Sum, &keys, &values).unwrap().len()))
    });
}

fn bench_exchange_union(c: &mut Criterion) {
    let parts: Vec<Vec<u64>> =
        (0..8).map(|p| (0..ROWS as u64 / 8).map(|i| p * 10_000 + i).collect()).collect();
    c.bench_function("operators/pack_oids_8x12k", |b| {
        b.iter(|| black_box(pack_oids(&parts).len()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_select, bench_fetch, bench_hash_join, bench_aggregate, bench_exchange_union
}
criterion_main!(benches);
