//! Figure 16 bench: TPC-H Q14 and Q6 under serial, heuristic and adaptive
//! plans (isolated). Also prints the reproduced isolated + concurrent tables.

use apq_baselines::heuristic_parallelize;
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig16", &cfg).expect("fig16 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let mut group = c.benchmark_group("fig16_tpch");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for query in [TpchQuery::Q6, TpchQuery::Q14] {
        let serial = query.build(&catalog).unwrap();
        let hp = heuristic_parallelize(&serial, &catalog, engine.n_workers()).unwrap();
        let report = common::adaptive(&cfg, &engine, &catalog, &serial);
        group.bench_with_input(BenchmarkId::new("serial", query), &serial, |b, plan| {
            b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows()))
        });
        group.bench_with_input(BenchmarkId::new("heuristic", query), &hp, |b, plan| {
            b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows()))
        });
        group.bench_with_input(
            BenchmarkId::new("adaptive", query),
            &report.best_plan,
            |b, plan| b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
