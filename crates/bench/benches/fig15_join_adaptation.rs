//! Figure 15 bench: serial vs adaptive join plans for two outer-input sizes.
//! Also prints the reproduced convergence series.

use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::micro::join_sweep;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig15", &cfg).expect("fig15 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let inner_rows = (cfg.micro_rows / 200).max(64);
    let mut group = c.benchmark_group("fig15_join_plan");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for outer in [cfg.micro_rows, cfg.micro_rows / 5] {
        let catalog = join_sweep::catalog(outer, inner_rows, cfg.seed);
        let serial = join_sweep::plan(&catalog).unwrap();
        let report = common::adaptive(&cfg, &engine, &catalog, &serial);
        group.bench_with_input(BenchmarkId::new("serial", outer), &serial, |b, plan| {
            b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows()))
        });
        group.bench_with_input(
            BenchmarkId::new("adaptive_best", outer),
            &report.best_plan,
            |b, plan| b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
