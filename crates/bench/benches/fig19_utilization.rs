//! Figures 19/20 bench: executing the adaptive (low multi-core utilization)
//! and heuristic (high multi-core utilization) Q14 plans whose traces the
//! figures show. Also prints the reproduced metrics and ASCII timelines.

use apq_baselines::heuristic_parallelize;
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::tpch::{self, queries::q14, TpchScale};
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig19", &cfg).expect("fig19 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let serial = q14(&catalog).unwrap();
    let hp = heuristic_parallelize(&serial, &catalog, engine.n_workers()).unwrap();
    let report = common::adaptive(&cfg, &engine, &catalog, &serial);

    let mut group = c.benchmark_group("fig19_q14_utilization");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    group.bench_function("adaptive_plan", |b| {
        b.iter(|| {
            let exec = engine.execute(&report.best_plan, &catalog).unwrap();
            black_box(exec.profile.multi_core_utilization())
        })
    });
    group.bench_function("heuristic_plan", |b| {
        b.iter(|| {
            let exec = engine.execute(&hp, &catalog).unwrap();
            black_box(exec.profile.multi_core_utilization())
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
