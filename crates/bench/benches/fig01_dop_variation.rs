//! Figure 1 bench: a heuristically parallelized TPC-H query at several
//! degrees of parallelism. Also prints the reproduced concurrent-workload
//! series (the criterion measurements themselves run in isolation).

use apq_baselines::heuristic_parallelize;
use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig1", &cfg).expect("fig1 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let serial = TpchQuery::Q9.build(&catalog).unwrap();
    let mut group = c.benchmark_group("fig01_q9_by_dop");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for dop in [2usize, cfg.workers, cfg.workers * 2] {
        let plan = heuristic_parallelize(&serial, &catalog, dop).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(dop), &plan, |b, plan| {
            b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
