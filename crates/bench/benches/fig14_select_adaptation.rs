//! Figure 14 bench: serial vs adaptively parallelized select plan at the
//! three selectivity points of the paper. Also prints the reproduced series.

use apq_bench::{common, run_experiment, ExperimentConfig};
use apq_workloads::micro::select_sweep;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::smoke();
    for table in run_experiment("fig14", &cfg).expect("fig14 exists") {
        println!("{}", table.render());
    }

    let engine = common::engine(&cfg);
    let catalog = select_sweep::catalog(cfg.micro_rows, cfg.seed);
    let mut group = c.benchmark_group("fig14_select_plan");
    group.sample_size(15);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for selectivity in [0i64, 50, 100] {
        let serial = select_sweep::plan(&catalog, selectivity).unwrap();
        let report = common::adaptive(&cfg, &engine, &catalog, &serial);
        group.bench_with_input(BenchmarkId::new("serial", selectivity), &serial, |b, plan| {
            b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows()))
        });
        group.bench_with_input(
            BenchmarkId::new("adaptive_best", selectivity),
            &report.best_plan,
            |b, plan| b.iter(|| black_box(engine.execute(plan, &catalog).unwrap().output.rows())),
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
