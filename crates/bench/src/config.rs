//! Experiment sizing.

use apq_engine::SchedulerPolicy;

/// Controls data sizes, worker counts and repetition counts of the
/// experiments. Three presets exist:
///
/// * [`ExperimentConfig::smoke`] — seconds-scale, used by unit tests;
/// * [`ExperimentConfig::quick`] — the default of `run_experiments` and the
///   Criterion benches (a couple of minutes end to end);
/// * [`ExperimentConfig::full`] — larger inputs for the recorded
///   `EXPERIMENTS.md` numbers.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentConfig {
    /// Worker threads of the execution engine (the paper's machines expose
    /// 32 / 96 hardware threads; experiments here scale with the host).
    pub workers: usize,
    /// TPC-H-like scale factor.
    pub tpch_sf: f64,
    /// TPC-DS-like scale factor.
    pub tpcds_sf: f64,
    /// Rows of the micro-benchmark columns (skewed select, join sweep).
    pub micro_rows: usize,
    /// Background clients of the concurrent-workload experiments.
    pub concurrent_clients: usize,
    /// Measured repetitions per reported number (the paper averages four runs).
    pub measure_reps: usize,
    /// Hard cap on adaptive runs per optimization episode.
    pub adaptive_max_runs: usize,
    /// Minimum partition size used by the adaptive optimizer.
    pub min_partition_rows: usize,
    /// RNG seed for data generation and workload mixing.
    pub seed: u64,
    /// Task-scheduling policy of the engine's worker pool.
    pub scheduler: SchedulerPolicy,
    /// Morsel size (rows) used by the morsel-driven execution comparisons
    /// (fig19's morsel-mode engines).
    pub morsel_rows: usize,
}

fn default_workers() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(8).min(8)
}

impl ExperimentConfig {
    /// Tiny sizes for unit tests (sub-second per experiment).
    pub fn smoke() -> Self {
        ExperimentConfig {
            workers: 4,
            tpch_sf: 0.002,
            tpcds_sf: 0.002,
            micro_rows: 40_000,
            concurrent_clients: 4,
            measure_reps: 1,
            adaptive_max_runs: 8,
            min_partition_rows: 512,
            seed: 42,
            scheduler: SchedulerPolicy::default(),
            morsel_rows: 2_048,
        }
    }

    /// Default sizes used by `run_experiments` and the benches.
    pub fn quick() -> Self {
        ExperimentConfig {
            workers: default_workers(),
            tpch_sf: 0.01,
            tpcds_sf: 0.01,
            micro_rows: 400_000,
            concurrent_clients: default_workers() * 2,
            measure_reps: 3,
            adaptive_max_runs: 24,
            min_partition_rows: 1024,
            seed: 42,
            scheduler: SchedulerPolicy::default(),
            morsel_rows: 16_384,
        }
    }

    /// Larger sizes for the recorded results.
    pub fn full() -> Self {
        ExperimentConfig {
            workers: default_workers(),
            tpch_sf: 0.05,
            tpcds_sf: 0.05,
            micro_rows: 2_000_000,
            concurrent_clients: default_workers() * 4,
            measure_reps: 4,
            adaptive_max_runs: 48,
            min_partition_rows: 2048,
            seed: 42,
            scheduler: SchedulerPolicy::default(),
            morsel_rows: 65_536,
        }
    }

    /// Scaled lineitem row count implied by the TPC-H scale factor.
    pub fn tpch_lineitem_rows(&self) -> usize {
        apq_workloads::tpch::TpchScale::new(self.tpch_sf).lineitem_rows()
    }

    /// Selects the engine's task-scheduling policy (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        let smoke = ExperimentConfig::smoke();
        let quick = ExperimentConfig::quick();
        let full = ExperimentConfig::full();
        assert!(smoke.tpch_sf < quick.tpch_sf);
        assert!(quick.tpch_sf < full.tpch_sf);
        assert!(smoke.micro_rows < quick.micro_rows);
        assert!(quick.micro_rows < full.micro_rows);
        assert!(smoke.measure_reps <= quick.measure_reps);
        assert!(quick.workers >= 1);
        assert!(smoke.tpch_lineitem_rows() < quick.tpch_lineitem_rows());
    }
}
