//! Shared plumbing for the experiments: engines, adaptive optimization runs
//! and plan timing.

use std::sync::Arc;
use std::time::Instant;

use apq_columnar::Catalog;
use apq_core::{AdaptiveConfig, AdaptiveOptimizer, AdaptiveReport};
use apq_engine::{Engine, EngineConfig, Plan};

use crate::config::ExperimentConfig;

/// Engine sized per the experiment configuration (worker count and
/// scheduling policy).
pub fn engine(cfg: &ExperimentConfig) -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig::with_workers(cfg.workers).with_scheduler(cfg.scheduler)))
}

/// Engine with an explicit worker count (DOP sweeps, "4-socket" variant).
pub fn engine_with_workers(workers: usize) -> Arc<Engine> {
    Arc::new(Engine::with_workers(workers.max(1)))
}

/// Engine emulating the slower-interconnect 4-socket machine of Fig. 17b:
/// more workers, but a fixed per-operator latency penalty.
pub fn four_socket_engine(cfg: &ExperimentConfig) -> Arc<Engine> {
    Arc::new(Engine::new(EngineConfig {
        n_workers: cfg.workers * 2,
        per_operator_overhead_us: 30,
        scheduler: cfg.scheduler,
        ..EngineConfig::default()
    }))
}

/// Adaptive-optimizer configuration matching the experiment configuration.
pub fn adaptive_config(cfg: &ExperimentConfig, engine: &Engine) -> AdaptiveConfig {
    AdaptiveConfig::for_cores(engine.n_workers())
        .with_min_partition_rows(cfg.min_partition_rows)
        .with_max_runs(cfg.adaptive_max_runs)
}

/// Runs a full adaptive-parallelization episode for `serial` on `engine`.
pub fn adaptive(
    cfg: &ExperimentConfig,
    engine: &Engine,
    catalog: &Arc<Catalog>,
    serial: &Plan,
) -> AdaptiveReport {
    let optimizer = AdaptiveOptimizer::new(adaptive_config(cfg, engine));
    optimizer
        .optimize(engine, catalog, serial)
        .expect("adaptive optimization of a workload plan must succeed")
}

/// Wall-clock time of one plan execution, in milliseconds.
pub fn time_once_ms(engine: &Engine, catalog: &Arc<Catalog>, plan: &Plan) -> f64 {
    let start = Instant::now();
    engine.execute(plan, catalog).expect("plan execution must succeed");
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Minimum wall-clock time over `reps` executions, in milliseconds.
///
/// The minimum (rather than the mean) is reported for isolated runs because
/// it is the least noise-sensitive statistic on a shared machine; concurrent
/// experiments use the mean via `measure_under_load`. The plan is shared
/// once up front so repeated executions skip the per-run deep plan clone.
pub fn time_plan_ms(engine: &Engine, catalog: &Arc<Catalog>, plan: &Plan, reps: usize) -> f64 {
    let plan = Arc::new(plan.clone());
    (0..reps.max(1))
        .map(|_| {
            let start = Instant::now();
            engine.execute_shared(&plan, catalog).expect("plan execution must succeed");
            start.elapsed().as_secs_f64() * 1_000.0
        })
        .fold(f64::INFINITY, f64::min)
}

/// Microseconds to milliseconds.
pub fn us_to_ms(us: u64) -> f64 {
    us as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_workloads::micro::select_sweep;

    #[test]
    fn engines_and_timing() {
        let cfg = ExperimentConfig::smoke();
        let engine = engine(&cfg);
        assert_eq!(engine.n_workers(), cfg.workers);
        assert_eq!(engine_with_workers(0).n_workers(), 1);
        let ns = four_socket_engine(&cfg);
        assert_eq!(ns.n_workers(), cfg.workers * 2);

        let cat = select_sweep::catalog(10_000, 1);
        let plan = select_sweep::plan(&cat, 20).unwrap();
        let t = time_plan_ms(&engine, &cat, &plan, 2);
        assert!(t > 0.0);
        assert!(time_once_ms(&engine, &cat, &plan) > 0.0);
        assert_eq!(us_to_ms(1500), 1.5);
    }

    #[test]
    fn adaptive_episode_returns_a_report() {
        let cfg = ExperimentConfig::smoke();
        let engine = engine(&cfg);
        let cat = select_sweep::catalog(30_000, 2);
        let plan = select_sweep::plan(&cat, 30).unwrap();
        let report = adaptive(&cfg, &engine, &cat, &plan);
        assert!(report.total_runs <= cfg.adaptive_max_runs);
        assert!(report.best_us <= report.serial_us);
        assert_eq!(adaptive_config(&cfg, &engine).max_runs, cfg.adaptive_max_runs);
    }
}
