//! Service-layer benchmark: client churn through [`apq_engine::QueryService`]
//! session handles at thousands of sessions, plus a Fig. 16-style staged
//! departure experiment charting response time against the reservation-phase
//! DOP grants recorded in `QueryProfile::dop_timeline`.
//!
//! The `service` binary writes the results as `BENCH_service.json` at the
//! repository root. CI runs it in `--smoke` mode so the binary never rots;
//! real numbers come from the default (full) mode.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

use apq_engine::{
    DopPhase, EngineConfig, ExecutionMode, Plan, QueryService, SchedulerPolicy, ServiceConfig,
};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};

/// Sizing knobs for one run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchConfig {
    /// Total sessions opened (and closed) by the churn section.
    pub sessions: usize,
    /// Submissions per session.
    pub queries_per_session: usize,
    /// Concurrent client threads driving the churn.
    pub churn_threads: usize,
    /// Clients in the first stage of the staged-departure experiment
    /// (halves every stage until one remains).
    pub departure_clients: usize,
    /// Submissions per client per departure stage.
    pub submissions_per_stage: usize,
    /// Worker threads in the engine pool.
    pub workers: usize,
    /// TPC-H scale factor.
    pub tpch_sf: f64,
    /// Label recorded in the JSON (`"full"` / `"smoke"`).
    pub mode: &'static str,
}

impl ServiceBenchConfig {
    /// Full-size run: thousands of sessions, produces the recorded numbers.
    pub fn full() -> Self {
        ServiceBenchConfig {
            sessions: 2_000,
            queries_per_session: 4,
            churn_threads: 8,
            departure_clients: 8,
            submissions_per_stage: 6,
            workers: 4,
            tpch_sf: 0.02,
            mode: "full",
        }
    }

    /// Seconds-scale run for CI smoke and unit tests.
    pub fn smoke() -> Self {
        ServiceBenchConfig {
            sessions: 64,
            queries_per_session: 2,
            churn_threads: 4,
            departure_clients: 4,
            submissions_per_stage: 2,
            workers: 2,
            tpch_sf: 0.002,
            mode: "smoke",
        }
    }
}

fn service(cfg: &ServiceBenchConfig) -> QueryService {
    QueryService::new(
        ServiceConfig::with_engine(
            EngineConfig::with_workers(cfg.workers)
                .with_scheduler(SchedulerPolicy::WorkStealing)
                .with_execution_mode(ExecutionMode::MorselDriven),
        ),
        tpch::generate(TpchScale::new(cfg.tpch_sf), 1234),
    )
}

fn query_mix(svc: &QueryService) -> Vec<Plan> {
    let catalog = svc.catalog();
    [TpchQuery::Q6, TpchQuery::Q14]
        .iter()
        .map(|q| q.build(&catalog).expect("TPC-H plan builds"))
        .collect()
}

struct ChurnReport {
    sessions: usize,
    queries: u64,
    elapsed_ms: f64,
    result_cache_hits: u64,
    result_cache_misses: u64,
    plan_cache_hits: u64,
}

/// Client churn: `cfg.churn_threads` clients open, use and close sessions
/// until `cfg.sessions` have passed through the service, all sharing the
/// plan/result caches and the unified admission census.
fn run_churn(cfg: &ServiceBenchConfig) -> ChurnReport {
    let svc = service(cfg);
    let plans = Arc::new(query_mix(&svc));
    let next_session = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..cfg.churn_threads)
        .map(|_| {
            let svc = svc.clone();
            let plans = Arc::clone(&plans);
            let next_session = Arc::clone(&next_session);
            let total = cfg.sessions;
            let per_session = cfg.queries_per_session;
            std::thread::spawn(move || {
                while next_session.fetch_add(1, Ordering::Relaxed) < total {
                    let session = svc.connect();
                    for i in 0..per_session {
                        let plan = &plans[i % plans.len()];
                        session.submit(plan).expect("churn submission succeeds");
                    }
                    session.close();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("churn thread panicked");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert!(svc.engine().active_queries().is_empty(), "census must drain after churn");
    let stats = svc.stats();
    ChurnReport {
        sessions: cfg.sessions,
        queries: stats.queries,
        elapsed_ms,
        result_cache_hits: stats.result_cache_hits,
        result_cache_misses: stats.result_cache_misses,
        plan_cache_hits: stats.plan_cache_hits,
    }
}

struct StageReport {
    clients: usize,
    mean_response_ms: f64,
    mean_admit_dop: f64,
    regrants: u64,
}

/// Fig. 16-style staged departure: a cohort of clients submits concurrently,
/// then half depart, and the survivors submit again — repeated until one
/// client remains. Per stage we record the mean response time and the mean
/// reservation-phase DOP grant from `dop_timeline`, the series the unified
/// census is supposed to move together: fewer clients, larger grants,
/// shorter responses.
fn run_staged_departure(cfg: &ServiceBenchConfig) -> Vec<StageReport> {
    let svc = service(cfg);
    // The result cache would answer repeats instantly; this experiment
    // measures execution, so every submission must run.
    let plan = Arc::new(query_mix(&svc)[0].clone());
    let mut sessions: Vec<_> = (0..cfg.departure_clients.max(1)).map(|_| svc.connect()).collect();
    let mut stages = Vec::new();
    while !sessions.is_empty() {
        svc.invalidate_results();
        let threads: Vec<_> = sessions
            .iter()
            .map(|session| {
                let session = session.clone();
                let plan = Arc::clone(&plan);
                let reps = cfg.submissions_per_stage;
                std::thread::spawn(move || {
                    let mut response_ms = 0.0;
                    let mut admit_dop = 0usize;
                    let mut regrants = 0u64;
                    let mut executed = 0usize;
                    for _ in 0..reps {
                        let start = Instant::now();
                        let response = session.submit(&plan).expect("stage submission succeeds");
                        response_ms += start.elapsed().as_secs_f64() * 1_000.0;
                        if let Some(profile) = response.profile {
                            executed += 1;
                            admit_dop += profile
                                .dop_timeline
                                .iter()
                                .find(|e| e.phase == DopPhase::Reserve)
                                .map_or(0, |e| e.dop);
                            regrants += u64::from(profile.dop_was_regranted());
                        }
                    }
                    (response_ms, admit_dop, regrants, executed)
                })
            })
            .collect();
        let mut total_ms = 0.0;
        let mut total_dop = 0usize;
        let mut total_regrants = 0u64;
        let mut total_executed = 0usize;
        for t in threads {
            let (ms, dop, regrants, executed) = t.join().expect("stage thread panicked");
            total_ms += ms;
            total_dop += dop;
            total_regrants += regrants;
            total_executed += executed;
        }
        let submissions = (sessions.len() * cfg.submissions_per_stage).max(1);
        stages.push(StageReport {
            clients: sessions.len(),
            mean_response_ms: total_ms / submissions as f64,
            mean_admit_dop: total_dop as f64 / total_executed.max(1) as f64,
            regrants: total_regrants,
        });
        // Half the cohort departs (sessions close on drop).
        let survivors = sessions.len() / 2;
        sessions.truncate(survivors);
    }
    stages
}

/// Runs the full benchmark, returning the report as a JSON string.
pub fn run(cfg: &ServiceBenchConfig) -> String {
    let churn = run_churn(cfg);
    let stages = run_staged_departure(cfg);
    let stage_rows: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "      {{ \"clients\": {}, \"mean_response_ms\": {:.3}, \"mean_admit_dop\": {:.2}, \"regrants\": {} }}",
                s.clients, s.mean_response_ms, s.mean_admit_dop, s.regrants
            )
        })
        .collect();
    format!(
        "{{\n  \"bench\": \"service\",\n  \"mode\": \"{mode}\",\n  \"config\": {{ \"sessions\": {sessions}, \"queries_per_session\": {qps}, \"churn_threads\": {threads}, \"departure_clients\": {clients}, \"submissions_per_stage\": {per_stage}, \"workers\": {workers}, \"tpch_sf\": {sf} }},\n  \"client_churn\": {{\n    \"sessions\": {churn_sessions},\n    \"queries\": {queries},\n    \"elapsed_ms\": {elapsed:.3},\n    \"throughput_qps\": {qps_rate:.1},\n    \"sessions_per_sec\": {sps:.1},\n    \"result_cache_hits\": {hits},\n    \"result_cache_misses\": {misses},\n    \"plan_cache_hits\": {plan_hits}\n  }},\n  \"staged_departure\": {{\n    \"stages\": [\n{stages}\n    ]\n  }}\n}}\n",
        mode = cfg.mode,
        sessions = cfg.sessions,
        qps = cfg.queries_per_session,
        threads = cfg.churn_threads,
        clients = cfg.departure_clients,
        per_stage = cfg.submissions_per_stage,
        workers = cfg.workers,
        sf = cfg.tpch_sf,
        churn_sessions = churn.sessions,
        queries = churn.queries,
        elapsed = churn.elapsed_ms,
        qps_rate = churn.queries as f64 / (churn.elapsed_ms / 1_000.0).max(f64::EPSILON),
        sps = churn.sessions as f64 / (churn.elapsed_ms / 1_000.0).max(f64::EPSILON),
        hits = churn.result_cache_hits,
        misses = churn.result_cache_misses,
        plan_hits = churn.plan_cache_hits,
        stages = stage_rows.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_well_formed_report() {
        let json = run(&ServiceBenchConfig::smoke());
        for key in [
            "\"bench\": \"service\"",
            "\"mode\": \"smoke\"",
            "client_churn",
            "throughput_qps",
            "result_cache_hits",
            "staged_departure",
            "mean_response_ms",
            "mean_admit_dop",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn staged_departure_grants_grow_as_clients_leave() {
        let stages = run_staged_departure(&ServiceBenchConfig::smoke());
        assert_eq!(stages.len(), 3, "4 -> 2 -> 1 clients");
        assert_eq!(stages.last().unwrap().clients, 1);
        // A lone client's reservation-phase grant is the whole pool; the
        // crowded first stage admitted at a smaller share.
        assert!(
            stages.last().unwrap().mean_admit_dop >= stages[0].mean_admit_dop,
            "admit grants must not shrink as the census empties"
        );
    }
}
