//! Service-layer benchmark: client churn through [`apq_engine::QueryService`]
//! session handles at thousands of sessions, plus a Fig. 16-style staged
//! departure experiment charting response time against the reservation-phase
//! DOP grants recorded in `QueryProfile::dop_timeline`.
//!
//! The `service` binary writes the results as `BENCH_service.json` at the
//! repository root. CI runs it in `--smoke` mode so the binary never rots;
//! real numbers come from the default (full) mode.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use apq_engine::{
    DopPhase, EngineConfig, EngineError, ExecutionMode, FaultConfig, Plan, QueryService,
    SchedulerPolicy, ServiceConfig,
};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};

/// Sizing knobs for one run.
#[derive(Debug, Clone, Copy)]
pub struct ServiceBenchConfig {
    /// Total sessions opened (and closed) by the churn section.
    pub sessions: usize,
    /// Submissions per session.
    pub queries_per_session: usize,
    /// Concurrent client threads driving the churn.
    pub churn_threads: usize,
    /// Clients in the first stage of the staged-departure experiment
    /// (halves every stage until one remains).
    pub departure_clients: usize,
    /// Submissions per client per departure stage.
    pub submissions_per_stage: usize,
    /// Worker threads in the engine pool.
    pub workers: usize,
    /// TPC-H scale factor.
    pub tpch_sf: f64,
    /// Sessions driving the overload experiment (mixed priorities).
    pub overload_sessions: usize,
    /// Concurrent submitters per overload session — everything past the
    /// first queues, so the census fills at `sessions × (threads − 1)`.
    pub overload_threads_per_session: usize,
    /// Submissions attempted per overload thread.
    pub overload_submissions: usize,
    /// Census bound for the bounded overload run (the unbounded run
    /// always uses 0 = unlimited).
    pub overload_max_queued: usize,
    /// Submissions in the fixed-seed chaos probe.
    pub chaos_submissions: usize,
    /// Concurrent sessions in the shared-scan experiment (all scanning the
    /// same tables).
    pub shared_scan_sessions: usize,
    /// Submissions per shared-scan session.
    pub shared_scan_submissions: usize,
    /// Label recorded in the JSON (`"full"` / `"smoke"`).
    pub mode: &'static str,
}

impl ServiceBenchConfig {
    /// Full-size run: thousands of sessions, produces the recorded numbers.
    pub fn full() -> Self {
        ServiceBenchConfig {
            sessions: 2_000,
            queries_per_session: 4,
            churn_threads: 8,
            departure_clients: 8,
            submissions_per_stage: 6,
            workers: 4,
            tpch_sf: 0.02,
            overload_sessions: 4,
            overload_threads_per_session: 3,
            overload_submissions: 24,
            overload_max_queued: 4,
            chaos_submissions: 32,
            shared_scan_sessions: 16,
            shared_scan_submissions: 4,
            mode: "full",
        }
    }

    /// Seconds-scale run for CI smoke and unit tests.
    pub fn smoke() -> Self {
        ServiceBenchConfig {
            sessions: 64,
            queries_per_session: 2,
            churn_threads: 4,
            departure_clients: 4,
            submissions_per_stage: 2,
            workers: 2,
            tpch_sf: 0.002,
            overload_sessions: 2,
            overload_threads_per_session: 3,
            overload_submissions: 6,
            overload_max_queued: 1,
            chaos_submissions: 8,
            shared_scan_sessions: 8,
            shared_scan_submissions: 2,
            mode: "smoke",
        }
    }
}

fn service(cfg: &ServiceBenchConfig) -> QueryService {
    QueryService::new(
        ServiceConfig::with_engine(
            EngineConfig::with_workers(cfg.workers)
                .with_scheduler(SchedulerPolicy::WorkStealing)
                .with_execution_mode(ExecutionMode::MorselDriven),
        ),
        tpch::generate(TpchScale::new(cfg.tpch_sf), 1234),
    )
}

fn query_mix(svc: &QueryService) -> Vec<Plan> {
    let catalog = svc.catalog();
    [TpchQuery::Q6, TpchQuery::Q14]
        .iter()
        .map(|q| q.build(&catalog).expect("TPC-H plan builds"))
        .collect()
}

struct ChurnReport {
    sessions: usize,
    queries: u64,
    elapsed_ms: f64,
    result_cache_hits: u64,
    result_cache_misses: u64,
    plan_cache_hits: u64,
}

/// Client churn: `cfg.churn_threads` clients open, use and close sessions
/// until `cfg.sessions` have passed through the service, all sharing the
/// plan/result caches and the unified admission census.
fn run_churn(cfg: &ServiceBenchConfig) -> ChurnReport {
    let svc = service(cfg);
    let plans = Arc::new(query_mix(&svc));
    let next_session = Arc::new(AtomicUsize::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..cfg.churn_threads)
        .map(|_| {
            let svc = svc.clone();
            let plans = Arc::clone(&plans);
            let next_session = Arc::clone(&next_session);
            let total = cfg.sessions;
            let per_session = cfg.queries_per_session;
            std::thread::spawn(move || {
                while next_session.fetch_add(1, Ordering::Relaxed) < total {
                    let session = svc.connect();
                    for i in 0..per_session {
                        let plan = &plans[i % plans.len()];
                        session.submit(plan).expect("churn submission succeeds");
                    }
                    session.close();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("churn thread panicked");
    }
    let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
    assert!(svc.engine().active_queries().is_empty(), "census must drain after churn");
    let stats = svc.stats();
    ChurnReport {
        sessions: cfg.sessions,
        queries: stats.queries,
        elapsed_ms,
        result_cache_hits: stats.result_cache_hits,
        result_cache_misses: stats.result_cache_misses,
        plan_cache_hits: stats.plan_cache_hits,
    }
}

struct StageReport {
    clients: usize,
    mean_response_ms: f64,
    mean_admit_dop: f64,
    regrants: u64,
}

/// Fig. 16-style staged departure: a cohort of clients submits concurrently,
/// then half depart, and the survivors submit again — repeated until one
/// client remains. Per stage we record the mean response time and the mean
/// reservation-phase DOP grant from `dop_timeline`, the series the unified
/// census is supposed to move together: fewer clients, larger grants,
/// shorter responses.
fn run_staged_departure(cfg: &ServiceBenchConfig) -> Vec<StageReport> {
    let svc = service(cfg);
    // The result cache would answer repeats instantly; this experiment
    // measures execution, so every submission must run.
    let plan = Arc::new(query_mix(&svc)[0].clone());
    let mut sessions: Vec<_> = (0..cfg.departure_clients.max(1)).map(|_| svc.connect()).collect();
    let mut stages = Vec::new();
    while !sessions.is_empty() {
        svc.invalidate_results();
        let threads: Vec<_> = sessions
            .iter()
            .map(|session| {
                let session = session.clone();
                let plan = Arc::clone(&plan);
                let reps = cfg.submissions_per_stage;
                std::thread::spawn(move || {
                    let mut response_ms = 0.0;
                    let mut admit_dop = 0usize;
                    let mut regrants = 0u64;
                    let mut executed = 0usize;
                    for _ in 0..reps {
                        let start = Instant::now();
                        let response = session.submit(&plan).expect("stage submission succeeds");
                        response_ms += start.elapsed().as_secs_f64() * 1_000.0;
                        if let Some(profile) = response.profile {
                            executed += 1;
                            admit_dop += profile
                                .dop_timeline
                                .iter()
                                .find(|e| e.phase == DopPhase::Reserve)
                                .map_or(0, |e| e.dop);
                            regrants += u64::from(profile.dop_was_regranted());
                        }
                    }
                    (response_ms, admit_dop, regrants, executed)
                })
            })
            .collect();
        let mut total_ms = 0.0;
        let mut total_dop = 0usize;
        let mut total_regrants = 0u64;
        let mut total_executed = 0usize;
        for t in threads {
            let (ms, dop, regrants, executed) = t.join().expect("stage thread panicked");
            total_ms += ms;
            total_dop += dop;
            total_regrants += regrants;
            total_executed += executed;
        }
        let submissions = (sessions.len() * cfg.submissions_per_stage).max(1);
        stages.push(StageReport {
            clients: sessions.len(),
            mean_response_ms: total_ms / submissions as f64,
            mean_admit_dop: total_dop as f64 / total_executed.max(1) as f64,
            regrants: total_regrants,
        });
        // Half the cohort departs (sessions close on drop).
        let survivors = sessions.len() / 2;
        sessions.truncate(survivors);
    }
    stages
}

struct OverloadReport {
    max_queued: usize,
    submissions: u64,
    completed: u64,
    shed: u64,
    timed_out: u64,
    mean_response_ms: f64,
    p99_response_ms: f64,
}

/// Overload experiment: the submission rate deliberately exceeds capacity
/// (every session has more concurrent submitters than turns, so the census
/// fills), run once with an unbounded queue and once with
/// `cfg.overload_max_queued`. The two rows contrast the trade the bound
/// buys: shed submissions in exchange for a flatter p99, instead of
/// everyone queueing behind everyone. Every 5th submission carries a tight
/// deadline so the queue wait itself consumes the budget — the `timed_out`
/// counter shows deadlines expiring *in the queue*, not in the engine.
fn run_overload(cfg: &ServiceBenchConfig, max_queued: usize) -> OverloadReport {
    let engine = EngineConfig {
        // A fixed per-operator cost makes query runtime (and therefore
        // queue pressure) deterministic instead of scale-factor noise.
        per_operator_overhead_us: 300,
        ..EngineConfig::with_workers(cfg.workers)
            .with_scheduler(SchedulerPolicy::WorkStealing)
            .with_execution_mode(ExecutionMode::MorselDriven)
    };
    let svc = QueryService::new(
        ServiceConfig::with_engine(engine).with_max_queued(max_queued),
        tpch::generate(TpchScale::new(cfg.tpch_sf), 1234),
    );
    let plans = Arc::new(query_mix(&svc));
    // Mixed priorities: under a bounded census the policy sheds the
    // lowest-priority waiters first, so the high-priority sessions keep
    // completing while the low ones absorb the Overloaded refusals.
    let sessions: Vec<_> = (0..cfg.overload_sessions.max(1))
        .map(|s| svc.connect_with_priority((s % 4) as u8))
        .collect();
    let threads: Vec<_> = sessions
        .iter()
        .flat_map(|session| {
            (0..cfg.overload_threads_per_session.max(1)).map(|_| {
                let session = session.clone();
                let svc = svc.clone();
                let plans = Arc::clone(&plans);
                let reps = cfg.overload_submissions;
                std::thread::spawn(move || {
                    let mut latencies = Vec::with_capacity(reps);
                    for i in 0..reps {
                        // The result cache would answer repeats instantly;
                        // overload needs every submission to execute.
                        svc.invalidate_results();
                        let plan = &plans[i % plans.len()];
                        let start = Instant::now();
                        let outcome = if i % 5 == 4 {
                            session.submit_with_deadline(plan, Duration::from_micros(200))
                        } else {
                            session.submit(plan)
                        };
                        match outcome {
                            Ok(_) => latencies.push(start.elapsed().as_secs_f64() * 1_000.0),
                            Err(EngineError::Overloaded { retry_after_hint }) => {
                                // Shed: honor (a capped version of) the hint
                                // before the next attempt.
                                std::thread::sleep(retry_after_hint.min(Duration::from_millis(2)));
                            }
                            Err(EngineError::DeadlineExceeded) => {}
                            Err(err) => panic!("unexpected overload outcome: {err}"),
                        }
                    }
                    latencies
                })
            })
        })
        .collect();
    let mut latencies: Vec<f64> = Vec::new();
    for t in threads {
        latencies.extend(t.join().expect("overload thread panicked"));
    }
    drop(sessions);
    assert!(svc.engine().active_queries().is_empty(), "census must drain after overload");
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let completed = latencies.len() as u64;
    let mean = latencies.iter().sum::<f64>() / (completed.max(1) as f64);
    let p99 = latencies
        .get(((latencies.len() as f64 * 0.99) as usize).min(latencies.len().saturating_sub(1)))
        .copied()
        .unwrap_or(0.0);
    let stats = svc.stats();
    OverloadReport {
        max_queued,
        submissions: (cfg.overload_sessions.max(1)
            * cfg.overload_threads_per_session.max(1)
            * cfg.overload_submissions) as u64,
        completed,
        shed: stats.shed,
        timed_out: stats.timed_out,
        mean_response_ms: mean,
        p99_response_ms: p99,
    }
}

struct ChaosReport {
    seed: u64,
    submissions: u64,
    ok: u64,
    failed: u64,
    faults_injected: u64,
}

/// Fixed-seed chaos probe: the same seed the CI chaos job pins, so the
/// bench record carries a reproducible row of how many submissions survive
/// the injected panics/cancels and how many faults actually fired.
fn run_chaos_probe(cfg: &ServiceBenchConfig) -> ChaosReport {
    // One seed from the tests/chaos_stress.rs matrix ([11, 42, 2016]).
    const SEED: u64 = 42;
    let svc = QueryService::new(
        ServiceConfig::with_engine(
            EngineConfig::with_workers(cfg.workers)
                .with_scheduler(SchedulerPolicy::WorkStealing)
                .with_execution_mode(ExecutionMode::MorselDriven)
                .with_faults(FaultConfig::chaos(SEED)),
        ),
        tpch::generate(TpchScale::new(cfg.tpch_sf), 1234),
    );
    let session = svc.connect();
    let plans = query_mix(&svc);
    let (mut ok, mut failed) = (0u64, 0u64);
    for i in 0..cfg.chaos_submissions {
        svc.invalidate_results();
        match session.submit(&plans[i % plans.len()]) {
            Ok(_) => ok += 1,
            Err(
                EngineError::Cancelled
                | EngineError::DeadlineExceeded
                | EngineError::WorkerPanicked(_),
            ) => failed += 1,
            Err(err) => panic!("unsanctioned chaos outcome: {err}"),
        }
    }
    assert!(svc.engine().active_queries().is_empty(), "census must drain after chaos");
    ChaosReport {
        seed: SEED,
        submissions: cfg.chaos_submissions as u64,
        ok,
        failed,
        faults_injected: svc.stats().faults_injected,
    }
}

struct SharedScanReport {
    sessions: usize,
    submissions: u64,
    off_elapsed_ms: f64,
    on_elapsed_ms: f64,
    scan_groups: u64,
    morsels_shared: u64,
    morsels_private: u64,
    partials_reused: u64,
}

/// Shared-scan experiment: `cfg.shared_scan_sessions` concurrent sessions
/// submit the same scan-heavy TPC-H mix against one service, once with the
/// work-sharing subsystem off and once with it on. The result cache is
/// disabled in both runs so every submission reaches the engine — the
/// contrast isolates cooperative scan windows and partial-aggregate reuse,
/// not result memoization. Outputs are asserted identical across the two
/// runs; the sharing run additionally reports the engine's sharing
/// counters.
fn run_shared_scan(cfg: &ServiceBenchConfig) -> SharedScanReport {
    let drive = |shared: bool| {
        let svc = QueryService::new(
            ServiceConfig::with_engine(
                EngineConfig::with_workers(cfg.workers)
                    .with_scheduler(SchedulerPolicy::WorkStealing)
                    .with_execution_mode(ExecutionMode::MorselDriven),
            )
            .with_shared_scans(shared)
            .with_result_cache_capacity(0),
            tpch::generate(TpchScale::new(cfg.tpch_sf), 1234),
        );
        let plans = Arc::new(query_mix(&svc));
        let start = Instant::now();
        let threads: Vec<_> = (0..cfg.shared_scan_sessions.max(1))
            .map(|s| {
                let svc = svc.clone();
                let plans = Arc::clone(&plans);
                let reps = cfg.shared_scan_submissions.max(1);
                std::thread::spawn(move || {
                    let session = svc.connect();
                    (0..reps)
                        .map(|i| {
                            session
                                .submit(&plans[(s + i) % plans.len()])
                                .expect("shared-scan submission succeeds")
                                .output
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let outputs: Vec<_> =
            threads.into_iter().map(|t| t.join().expect("shared-scan thread panicked")).collect();
        let elapsed_ms = start.elapsed().as_secs_f64() * 1_000.0;
        assert!(svc.engine().active_queries().is_empty(), "census must drain after shared scans");
        (elapsed_ms, outputs, svc.stats())
    };
    let (off_elapsed_ms, off_outputs, _) = drive(false);
    let (on_elapsed_ms, on_outputs, on_stats) = drive(true);
    assert_eq!(off_outputs, on_outputs, "sharing changed a query result");
    SharedScanReport {
        sessions: cfg.shared_scan_sessions.max(1),
        submissions: (cfg.shared_scan_sessions.max(1) * cfg.shared_scan_submissions.max(1)) as u64,
        off_elapsed_ms,
        on_elapsed_ms,
        scan_groups: on_stats.scan_groups,
        morsels_shared: on_stats.morsels_shared,
        morsels_private: on_stats.morsels_private,
        partials_reused: on_stats.partials_reused,
    }
}

/// Runs the full benchmark, returning the report as a JSON string.
pub fn run(cfg: &ServiceBenchConfig) -> String {
    let churn = run_churn(cfg);
    let stages = run_staged_departure(cfg);
    let unbounded = run_overload(cfg, 0);
    let bounded = run_overload(cfg, cfg.overload_max_queued.max(1));
    let chaos = run_chaos_probe(cfg);
    let shared = run_shared_scan(cfg);
    let stage_rows: Vec<String> = stages
        .iter()
        .map(|s| {
            format!(
                "      {{ \"clients\": {}, \"mean_response_ms\": {:.3}, \"mean_admit_dop\": {:.2}, \"regrants\": {} }}",
                s.clients, s.mean_response_ms, s.mean_admit_dop, s.regrants
            )
        })
        .collect();
    let overload_row = |r: &OverloadReport| {
        format!(
            "{{ \"max_queued\": {}, \"submissions\": {}, \"completed\": {}, \"shed\": {}, \"timed_out\": {}, \"mean_response_ms\": {:.3}, \"p99_response_ms\": {:.3} }}",
            r.max_queued, r.submissions, r.completed, r.shed, r.timed_out, r.mean_response_ms,
            r.p99_response_ms
        )
    };
    format!(
        "{{\n  \"bench\": \"service\",\n  \"mode\": \"{mode}\",\n  \"config\": {{ \"sessions\": {sessions}, \"queries_per_session\": {qps}, \"churn_threads\": {threads}, \"departure_clients\": {clients}, \"submissions_per_stage\": {per_stage}, \"workers\": {workers}, \"tpch_sf\": {sf} }},\n  \"client_churn\": {{\n    \"sessions\": {churn_sessions},\n    \"queries\": {queries},\n    \"elapsed_ms\": {elapsed:.3},\n    \"throughput_qps\": {qps_rate:.1},\n    \"sessions_per_sec\": {sps:.1},\n    \"result_cache_hits\": {hits},\n    \"result_cache_misses\": {misses},\n    \"plan_cache_hits\": {plan_hits}\n  }},\n  \"staged_departure\": {{\n    \"stages\": [\n{stages}\n    ]\n  }},\n  \"overload\": {{\n    \"unbounded\": {unbounded},\n    \"bounded\": {bounded}\n  }},\n  \"chaos\": {{ \"seed\": {chaos_seed}, \"submissions\": {chaos_subs}, \"ok\": {chaos_ok}, \"failed\": {chaos_failed}, \"faults_injected\": {chaos_faults} }},\n  \"shared_scan\": {{\n    \"sessions\": {ss_sessions},\n    \"submissions\": {ss_subs},\n    \"off\": {{ \"elapsed_ms\": {ss_off:.3}, \"throughput_qps\": {ss_off_qps:.1} }},\n    \"on\": {{ \"elapsed_ms\": {ss_on:.3}, \"throughput_qps\": {ss_on_qps:.1}, \"scan_groups\": {ss_groups}, \"morsels_shared\": {ss_shared}, \"morsels_private\": {ss_private}, \"partials_reused\": {ss_reused} }}\n  }}\n}}\n",
        mode = cfg.mode,
        sessions = cfg.sessions,
        qps = cfg.queries_per_session,
        threads = cfg.churn_threads,
        clients = cfg.departure_clients,
        per_stage = cfg.submissions_per_stage,
        workers = cfg.workers,
        sf = cfg.tpch_sf,
        churn_sessions = churn.sessions,
        queries = churn.queries,
        elapsed = churn.elapsed_ms,
        qps_rate = churn.queries as f64 / (churn.elapsed_ms / 1_000.0).max(f64::EPSILON),
        sps = churn.sessions as f64 / (churn.elapsed_ms / 1_000.0).max(f64::EPSILON),
        hits = churn.result_cache_hits,
        misses = churn.result_cache_misses,
        plan_hits = churn.plan_cache_hits,
        stages = stage_rows.join(",\n"),
        unbounded = overload_row(&unbounded),
        bounded = overload_row(&bounded),
        chaos_seed = chaos.seed,
        chaos_subs = chaos.submissions,
        chaos_ok = chaos.ok,
        chaos_failed = chaos.failed,
        chaos_faults = chaos.faults_injected,
        ss_sessions = shared.sessions,
        ss_subs = shared.submissions,
        ss_off = shared.off_elapsed_ms,
        ss_off_qps =
            shared.submissions as f64 / (shared.off_elapsed_ms / 1_000.0).max(f64::EPSILON),
        ss_on = shared.on_elapsed_ms,
        ss_on_qps = shared.submissions as f64 / (shared.on_elapsed_ms / 1_000.0).max(f64::EPSILON),
        ss_groups = shared.scan_groups,
        ss_shared = shared.morsels_shared,
        ss_private = shared.morsels_private,
        ss_reused = shared.partials_reused,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_well_formed_report() {
        let json = run(&ServiceBenchConfig::smoke());
        for key in [
            "\"bench\": \"service\"",
            "\"mode\": \"smoke\"",
            "client_churn",
            "throughput_qps",
            "result_cache_hits",
            "staged_departure",
            "mean_response_ms",
            "mean_admit_dop",
            "\"overload\"",
            "\"shed\"",
            "\"timed_out\"",
            "p99_response_ms",
            "\"chaos\"",
            "faults_injected",
            "\"shared_scan\"",
            "morsels_shared",
            "partials_reused",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn bounded_overload_sheds_while_unbounded_queues() {
        let cfg = ServiceBenchConfig::smoke();
        let unbounded = run_overload(&cfg, 0);
        let bounded = run_overload(&cfg, cfg.overload_max_queued.max(1));
        // Without a bound nothing is ever refused; with the census capped
        // below the standing queue depth, refusals are guaranteed.
        assert_eq!(unbounded.shed, 0, "unbounded queues must never shed");
        assert_eq!(unbounded.completed + unbounded.timed_out, unbounded.submissions);
        assert!(bounded.shed > 0, "a census of 1 under 2×3 clients must shed");
        assert_eq!(bounded.completed + bounded.shed + bounded.timed_out, bounded.submissions);
    }

    #[test]
    fn chaos_probe_accounts_for_every_submission() {
        let report = run_chaos_probe(&ServiceBenchConfig::smoke());
        assert_eq!(report.ok + report.failed, report.submissions);
    }

    #[test]
    fn shared_scan_run_shares_morsels_and_reuses_partials() {
        let report = run_shared_scan(&ServiceBenchConfig::smoke());
        // 8 sessions × 2 submissions over a 2-plan mix: repeats are
        // guaranteed, so the sharing run must have served morsels from
        // group windows and resumed aggregates from cached partials.
        assert!(report.scan_groups > 0, "no scan groups formed");
        assert!(report.morsels_shared > 0, "no morsel was served from a shared window");
        assert!(
            report.morsels_shared + report.partials_reused > 0 && report.morsels_private > 0,
            "sharing run recorded no private pass at all"
        );
        assert_eq!(report.submissions, 16);
    }

    #[test]
    fn staged_departure_grants_grow_as_clients_leave() {
        let stages = run_staged_departure(&ServiceBenchConfig::smoke());
        assert_eq!(stages.len(), 3, "4 -> 2 -> 1 clients");
        assert_eq!(stages.last().unwrap().clients, 1);
        // A lone client's reservation-phase grant is the whole pool; the
        // crowded first stage admitted at a smaller share.
        assert!(
            stages.last().unwrap().mean_admit_dop >= stages[0].mean_admit_dop,
            "admit grants must not shrink as the census empties"
        );
    }
}
