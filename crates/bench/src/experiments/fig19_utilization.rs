//! Figures 19 and 20: tomograph-style execution traces of TPC-H Q14 under
//! adaptive (low multi-core utilization) and heuristic (high multi-core
//! utilization) parallelization.
//!
//! The numeric table carries the utilization metrics; the rendered timelines
//! (one lane per worker, as in the paper's figures) are attached as extra
//! "tables" with a single text row each so that `run_experiments` prints
//! them. A third table reports the engine's per-worker scheduler counters
//! (tasks executed, local-deque hits, steals, injector hits, accumulated
//! queue wait) for the heuristic plan under **both** scheduling policies —
//! the work-stealing-vs-shared-FIFO comparison of §4.1.1 at the dispatch
//! level. A final table repeats the comparison in **morsel-driven**
//! execution mode (`ExecutionMode::MorselDriven`): per worker, the tasks
//! executed and the morsels pulled, showing how pipeline fan-out spreads
//! locality-friendly work units across the pool.
//!
//! The metrics table additionally carries **controller-on rows** — the same
//! plans executed with the elastic resource controller ticking (adaptive
//! morsel sizing, `apq_engine::controller`) — next to the controller-off
//! rows, so the on/off comparison is read straight off one table. Results
//! are asserted identical; only the dispatch statistics may differ.

use std::sync::Arc;

use apq_baselines::heuristic_parallelize;
use apq_engine::{
    ControllerConfig, Engine, EngineConfig, ExecutionMode, SchedulerPolicy, SharingConfig,
};
use apq_workloads::tpch::{self, queries::q14, TpchScale};

use crate::common::{adaptive, engine};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_percent, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let workers = engine.n_workers();
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let serial = q14(&catalog).expect("Q14 builds");

    let report = adaptive(cfg, &engine, &catalog, &serial);
    let ap_exec = engine.execute(&report.best_plan, &catalog).expect("AP executes");
    let hp_plan = heuristic_parallelize(&serial, &catalog, workers).expect("HP builds");
    let hp_exec = engine.execute(&hp_plan, &catalog).expect("HP executes");

    // Morsel-mode executions of the same two plans (fresh engine so the
    // dispatch counters below stay attributable; same scheduler policy as
    // the operator-at-a-time engine so the rows differ only in mode).
    let morsel_engine = Engine::new(
        EngineConfig::with_workers(workers)
            .with_scheduler(cfg.scheduler)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(cfg.morsel_rows),
    );
    let ap_morsel = morsel_engine.execute(&report.best_plan, &catalog).expect("AP morsel");
    let hp_morsel = morsel_engine.execute(&hp_plan, &catalog).expect("HP morsel");

    // Controller-on rows: the same two plans with the elastic resource
    // controller ticking (adaptive morsel sizing; results must not change).
    let controlled_engine = Engine::new(
        EngineConfig::with_workers(workers)
            .with_scheduler(cfg.scheduler)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(cfg.morsel_rows)
            .with_controller(
                ControllerConfig::default()
                    .with_tick(std::time::Duration::from_micros(500))
                    .with_morsel_bounds(cfg.morsel_rows / 8, cfg.morsel_rows * 8),
            ),
    );
    let ap_ctrl = controlled_engine.execute(&report.best_plan, &catalog).expect("AP controlled");
    let hp_ctrl = controlled_engine.execute(&hp_plan, &catalog).expect("HP controlled");
    assert_eq!(ap_ctrl.output, ap_exec.output, "controller changed the AP result");
    assert_eq!(hp_ctrl.output, hp_exec.output, "controller changed the HP result");

    let mut metrics = ExperimentTable::new(
        "Figures 19/20 (metrics)",
        format!("TPC-H Q14 isolated execution on {workers} workers"),
        &[
            "plan",
            "mode",
            "operators",
            "morsels",
            "cpu_ms",
            "wall_ms",
            "parallelism_usage",
            "multi_core_utilization",
        ],
    );
    for (label, mode, exec) in [
        ("adaptive (Fig. 19)", "operator-at-a-time", &ap_exec),
        ("heuristic (Fig. 20)", "operator-at-a-time", &hp_exec),
        ("adaptive (Fig. 19)", "morsel-driven", &ap_morsel),
        ("heuristic (Fig. 20)", "morsel-driven", &hp_morsel),
        ("adaptive (Fig. 19)", "morsel-driven + controller", &ap_ctrl),
        ("heuristic (Fig. 20)", "morsel-driven + controller", &hp_ctrl),
    ] {
        metrics.row(vec![
            label.to_string(),
            mode.to_string(),
            exec.profile.operators.len().to_string(),
            exec.profile.total_morsels().to_string(),
            format!("{:.3}", exec.profile.total_cpu_us() as f64 / 1000.0),
            format!("{:.3}", exec.profile.wall_us() as f64 / 1000.0),
            fmt_percent(exec.profile.parallelism_usage()),
            fmt_percent(exec.profile.multi_core_utilization()),
        ]);
    }

    let mut ap_trace = ExperimentTable::new(
        "Figure 19 (trace)",
        "adaptive Q14 worker timeline (S select, J join, U union, F fetch, C calc, A aggregate, . idle)",
        &["timeline"],
    );
    for line in ap_exec.profile.timeline(72).lines() {
        ap_trace.row(vec![line.to_string()]);
    }
    let mut hp_trace =
        ExperimentTable::new("Figure 20 (trace)", "heuristic Q14 worker timeline", &["timeline"]);
    for line in hp_exec.profile.timeline(72).lines() {
        hp_trace.row(vec![line.to_string()]);
    }

    // Per-worker dispatch counters of the heuristic plan under both
    // scheduling policies (fresh engines, so the counters cover exactly one
    // execution each).
    let mut counters = ExperimentTable::new(
        "Figures 19/20 (scheduler counters)",
        "per-worker dispatch counters of the heuristic Q14 plan, by scheduling policy",
        &["policy", "worker", "executed", "local", "stolen", "injected", "queue_wait_ms"],
    );
    let hp_shared = Arc::new(hp_plan);
    for policy in SchedulerPolicy::ALL {
        let probe = Engine::new(EngineConfig::with_workers(workers).with_scheduler(policy));
        probe.execute_shared(&hp_shared, &catalog).expect("HP executes under both policies");
        let stats = probe.scheduler_stats();
        for (w, ws) in stats.workers.iter().enumerate() {
            counters.row(vec![
                stats.policy.to_string(),
                w.to_string(),
                ws.executed.to_string(),
                ws.local_hits.to_string(),
                ws.steals.to_string(),
                ws.injector_hits.to_string(),
                format!("{:.3}", ws.queue_wait_us as f64 / 1000.0),
            ]);
        }
    }

    // The same comparison in morsel-driven mode: per-worker task and morsel
    // counters of the heuristic Q14 plan under both scheduling policies.
    let mut morsel_counters = ExperimentTable::new(
        "Figures 19/20 (morsel counters)",
        format!(
            "per-worker morsel counters of the heuristic Q14 plan in morsel-driven mode \
             ({} rows per morsel), by scheduling policy",
            cfg.morsel_rows
        ),
        &["policy", "worker", "executed", "morsels", "pipelines", "queue_wait_ms"],
    );
    for policy in SchedulerPolicy::ALL {
        let probe = Engine::new(
            EngineConfig::with_workers(workers)
                .with_scheduler(policy)
                .with_execution_mode(ExecutionMode::MorselDriven)
                .with_morsel_rows(cfg.morsel_rows),
        );
        let exec =
            probe.execute_shared(&hp_shared, &catalog).expect("HP executes under morsel mode");
        assert_eq!(
            exec.output, hp_exec.output,
            "{policy}: morsel-mode Q14 diverged from operator-at-a-time"
        );
        let stats = probe.scheduler_stats();
        let morsels = exec.profile.morsels_by_worker();
        let n_pipelines = exec.profile.pipelines.len();
        for (w, ws) in stats.workers.iter().enumerate() {
            morsel_counters.row(vec![
                stats.policy.to_string(),
                w.to_string(),
                ws.executed.to_string(),
                morsels.get(w).copied().unwrap_or(0).to_string(),
                n_pipelines.to_string(),
                format!("{:.3}", ws.queue_wait_us as f64 / 1000.0),
            ]);
        }
    }

    // Work-sharing competitor rows: the same heuristic Q14 plan submitted
    // four times back-to-back per cell (2 policies × sharing on/off, fresh
    // morsel engine per cell). With sharing on, repeats reuse the first
    // run's scan-group windows and aggregate partials; outputs are asserted
    // identical to the unshared execution either way.
    let mut sharing_rows = ExperimentTable::new(
        "Figures 19/20 (shared scans)",
        "heuristic Q14 ×4 per cell, by scheduling policy and work-sharing toggle",
        &["policy", "sharing", "queries", "morsels_shared", "morsels_private", "partials_reused"],
    );
    const SHARING_REPEATS: usize = 4;
    for policy in SchedulerPolicy::ALL {
        for sharing in [false, true] {
            let mut config = EngineConfig::with_workers(workers)
                .with_scheduler(policy)
                .with_execution_mode(ExecutionMode::MorselDriven)
                .with_morsel_rows(cfg.morsel_rows);
            if sharing {
                config = config.with_sharing(SharingConfig::default());
            }
            let probe = Engine::new(config);
            for _ in 0..SHARING_REPEATS {
                let exec = probe.execute_shared(&hp_shared, &catalog).expect("HP executes");
                assert_eq!(
                    exec.output, hp_exec.output,
                    "{policy}/sharing={sharing}: shared execution diverged"
                );
            }
            let stats = probe.sharing_stats();
            sharing_rows.row(vec![
                policy.to_string(),
                if sharing { "on" } else { "off" }.to_string(),
                SHARING_REPEATS.to_string(),
                stats.morsels_shared.to_string(),
                stats.morsels_private.to_string(),
                stats.partials_reused.to_string(),
            ]);
        }
    }

    vec![metrics, ap_trace, hp_trace, counters, morsel_counters, sharing_rows]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_metrics_two_traces_and_scheduler_counters() {
        let cfg = ExperimentConfig::smoke();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 6);
        // Two plans × (operator-at-a-time, morsel, morsel + controller).
        assert_eq!(tables[0].len(), 6);
        // The controller rows really ran morsel-wise too.
        for row in &tables[0].rows[4..6] {
            assert!(row[1].contains("controller"));
            assert!(row[3].parse::<usize>().unwrap() > 0, "controller row reported no morsels");
        }
        // One header line plus one lane per worker.
        assert_eq!(tables[1].len(), cfg.workers + 1);
        assert_eq!(tables[2].len(), cfg.workers + 1);
        // The HP plan executes at least as many operators as the AP plan.
        let ap_ops: usize = tables[0].rows[0][2].parse().unwrap();
        let hp_ops: usize = tables[0].rows[1][2].parse().unwrap();
        assert!(hp_ops >= ap_ops);
        // Operator-at-a-time rows report no morsels; morsel rows report some.
        assert_eq!(tables[0].rows[0][3], "0");
        let hp_morsels: usize = tables[0].rows[3][3].parse().unwrap();
        assert!(hp_morsels > 0, "morsel-driven HP run reported no morsels");
        // Counter table: one row per worker per policy, both plans fully
        // dispatched under each policy.
        let counters = &tables[3];
        assert_eq!(counters.len(), 2 * cfg.workers);
        for policy in ["global-queue", "work-stealing"] {
            let executed: u64 = counters
                .rows
                .iter()
                .filter(|r| r[0] == policy)
                .map(|r| r[2].parse::<u64>().unwrap())
                .sum();
            assert_eq!(executed, hp_ops as u64, "{policy}: dispatch count mismatch");
        }
        // Morsel counter table: per-worker morsel counts sum to the same
        // total under both policies (the fan-out is policy-independent).
        let morsel_counters = &tables[4];
        assert_eq!(morsel_counters.len(), 2 * cfg.workers);
        let mut totals = Vec::new();
        for policy in ["global-queue", "work-stealing"] {
            let morsels: u64 = morsel_counters
                .rows
                .iter()
                .filter(|r| r[0] == policy)
                .map(|r| r[3].parse::<u64>().unwrap())
                .sum();
            assert!(morsels > 0, "{policy}: no morsels recorded");
            totals.push(morsels);
        }
        assert_eq!(totals[0], totals[1], "morsel fan-out differed across policies");
        // Shared-scan rows: 2 policies × sharing on/off. With sharing off
        // nothing is ever shared or reused; with sharing on the ×4 repeats
        // must have hit group windows and/or cached partials.
        let sharing_rows = &tables[5];
        assert_eq!(sharing_rows.len(), 4);
        for row in &sharing_rows.rows {
            let shared: u64 = row[3].parse().unwrap();
            let reused: u64 = row[5].parse().unwrap();
            if row[1] == "off" {
                assert_eq!(shared + reused, 0, "{}: sharing-off row shared work", row[0]);
            } else {
                assert!(shared + reused > 0, "{}: sharing-on repeats shared nothing", row[0]);
            }
        }
    }
}
