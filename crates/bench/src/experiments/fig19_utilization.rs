//! Figures 19 and 20: tomograph-style execution traces of TPC-H Q14 under
//! adaptive (low multi-core utilization) and heuristic (high multi-core
//! utilization) parallelization.
//!
//! The numeric table carries the utilization metrics; the rendered timelines
//! (one lane per worker, as in the paper's figures) are attached as extra
//! "tables" with a single text row each so that `run_experiments` prints
//! them. A final table reports the engine's per-worker scheduler counters
//! (tasks executed, local-deque hits, steals, injector hits, accumulated
//! queue wait) for the heuristic plan under **both** scheduling policies —
//! the work-stealing-vs-shared-FIFO comparison of §4.1.1 at the dispatch
//! level.

use std::sync::Arc;

use apq_baselines::heuristic_parallelize;
use apq_engine::{Engine, EngineConfig, SchedulerPolicy};
use apq_workloads::tpch::{self, queries::q14, TpchScale};

use crate::common::{adaptive, engine};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_percent, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let workers = engine.n_workers();
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let serial = q14(&catalog).expect("Q14 builds");

    let report = adaptive(cfg, &engine, &catalog, &serial);
    let ap_exec = engine.execute(&report.best_plan, &catalog).expect("AP executes");
    let hp_plan = heuristic_parallelize(&serial, &catalog, workers).expect("HP builds");
    let hp_exec = engine.execute(&hp_plan, &catalog).expect("HP executes");

    let mut metrics = ExperimentTable::new(
        "Figures 19/20 (metrics)",
        format!("TPC-H Q14 isolated execution on {workers} workers"),
        &["plan", "operators", "cpu_ms", "wall_ms", "parallelism_usage", "multi_core_utilization"],
    );
    for (label, exec) in [("adaptive (Fig. 19)", &ap_exec), ("heuristic (Fig. 20)", &hp_exec)] {
        metrics.row(vec![
            label.to_string(),
            exec.profile.operators.len().to_string(),
            format!("{:.3}", exec.profile.total_cpu_us() as f64 / 1000.0),
            format!("{:.3}", exec.profile.wall_us() as f64 / 1000.0),
            fmt_percent(exec.profile.parallelism_usage()),
            fmt_percent(exec.profile.multi_core_utilization()),
        ]);
    }

    let mut ap_trace = ExperimentTable::new(
        "Figure 19 (trace)",
        "adaptive Q14 worker timeline (S select, J join, U union, F fetch, C calc, A aggregate, . idle)",
        &["timeline"],
    );
    for line in ap_exec.profile.timeline(72).lines() {
        ap_trace.row(vec![line.to_string()]);
    }
    let mut hp_trace =
        ExperimentTable::new("Figure 20 (trace)", "heuristic Q14 worker timeline", &["timeline"]);
    for line in hp_exec.profile.timeline(72).lines() {
        hp_trace.row(vec![line.to_string()]);
    }

    // Per-worker dispatch counters of the heuristic plan under both
    // scheduling policies (fresh engines, so the counters cover exactly one
    // execution each).
    let mut counters = ExperimentTable::new(
        "Figures 19/20 (scheduler counters)",
        "per-worker dispatch counters of the heuristic Q14 plan, by scheduling policy",
        &["policy", "worker", "executed", "local", "stolen", "injected", "queue_wait_ms"],
    );
    let hp_shared = Arc::new(hp_plan);
    for policy in SchedulerPolicy::ALL {
        let probe = Engine::new(EngineConfig::with_workers(workers).with_scheduler(policy));
        probe.execute_shared(&hp_shared, &catalog).expect("HP executes under both policies");
        let stats = probe.scheduler_stats();
        for (w, ws) in stats.workers.iter().enumerate() {
            counters.row(vec![
                stats.policy.to_string(),
                w.to_string(),
                ws.executed.to_string(),
                ws.local_hits.to_string(),
                ws.steals.to_string(),
                ws.injector_hits.to_string(),
                format!("{:.3}", ws.queue_wait_us as f64 / 1000.0),
            ]);
        }
    }

    vec![metrics, ap_trace, hp_trace, counters]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_metrics_two_traces_and_scheduler_counters() {
        let cfg = ExperimentConfig::smoke();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 4);
        assert_eq!(tables[0].len(), 2);
        // One header line plus one lane per worker.
        assert_eq!(tables[1].len(), cfg.workers + 1);
        assert_eq!(tables[2].len(), cfg.workers + 1);
        // The HP plan executes at least as many operators as the AP plan.
        let ap_ops: usize = tables[0].rows[0][1].parse().unwrap();
        let hp_ops: usize = tables[0].rows[1][1].parse().unwrap();
        assert!(hp_ops >= ap_ops);
        // Counter table: one row per worker per policy, both plans fully
        // dispatched under each policy.
        let counters = &tables[3];
        assert_eq!(counters.len(), 2 * cfg.workers);
        for policy in ["global-queue", "work-stealing"] {
            let executed: u64 = counters
                .rows
                .iter()
                .filter(|r| r[0] == policy)
                .map(|r| r[2].parse::<u64>().unwrap())
                .sum();
            assert_eq!(executed, hp_ops as u64, "{policy}: dispatch count mismatch");
        }
    }
}
