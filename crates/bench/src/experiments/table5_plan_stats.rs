//! Table 5: plan statistics of TPC-H Q14 under adaptive vs heuristic
//! parallelization — number of select operators, number of join operators and
//! the multi-core utilization of an isolated execution.

use apq_baselines::heuristic_parallelize;
use apq_workloads::tpch::{self, queries::q14, TpchScale};

use crate::common::{adaptive, engine};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_percent, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let workers = engine.n_workers();
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let serial = q14(&catalog).expect("Q14 builds");

    let report = adaptive(cfg, &engine, &catalog, &serial);
    let ap_plan = &report.best_plan;
    let ap_exec = engine.execute(ap_plan, &catalog).expect("AP plan executes");

    let hp_plan = heuristic_parallelize(&serial, &catalog, workers).expect("HP plan builds");
    let hp_exec = engine.execute(&hp_plan, &catalog).expect("HP plan executes");

    let mut table = ExperimentTable::new(
        "Table 5",
        format!("TPC-H Q14 plan statistics, adaptive (AP) vs heuristic (HP, {workers} partitions)"),
        &["metric", "AP", "HP"],
    );
    table.row(vec![
        "# Select operators".to_string(),
        ap_plan.count_of("select").to_string(),
        hp_plan.count_of("select").to_string(),
    ]);
    table.row(vec![
        "# Join operators".to_string(),
        ap_plan.count_of("join").to_string(),
        hp_plan.count_of("join").to_string(),
    ]);
    table.row(vec![
        "# Fetch operators".to_string(),
        ap_plan.count_of("fetch").to_string(),
        hp_plan.count_of("fetch").to_string(),
    ]);
    table.row(vec![
        "# Exchange unions".to_string(),
        ap_plan.count_of("union").to_string(),
        hp_plan.count_of("union").to_string(),
    ]);
    table.row(vec![
        "# Plan operators".to_string(),
        ap_plan.node_count().to_string(),
        hp_plan.node_count().to_string(),
    ]);
    table.row(vec![
        "% Multi-core utilization".to_string(),
        fmt_percent(ap_exec.profile.multi_core_utilization()),
        fmt_percent(hp_exec.profile.multi_core_utilization()),
    ]);
    table.row(vec![
        "% Parallelism usage".to_string(),
        fmt_percent(ap_exec.profile.parallelism_usage()),
        fmt_percent(hp_exec.profile.parallelism_usage()),
    ]);
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_operator_counts_and_utilization() {
        let tables = run(&ExperimentConfig::smoke());
        let t = &tables[0];
        assert_eq!(t.len(), 7);
        // Both plans have at least one select and the HP plan parallelized
        // the fetches (one clone per partition) — the relative counts depend
        // on how far the adaptive search got, which the smoke config caps.
        let ap_selects: usize = t.rows[0][1].parse().unwrap();
        let hp_selects: usize = t.rows[0][2].parse().unwrap();
        assert!(ap_selects >= 1 && hp_selects >= 1);
        let hp_fetches: usize = t.rows[2][2].parse().unwrap();
        assert!(hp_fetches > 1, "HP must clone the fetch operators");
        assert!(t.rows[5][1].ends_with('%'));
        assert!(t.rows[6][2].ends_with('%'));
    }
}
