//! Figure 16: the TPC-H query subset under isolated and concurrent execution,
//! comparing heuristic parallelization (HP), adaptive parallelization (AP)
//! and the admission-controlled exchange engine (the Vectorwise analogue).
//!
//! The paper's observations that this experiment reproduces in shape:
//! isolated HP and AP are comparable; under a concurrent workload AP's
//! lower-DOP plans respond faster than HP's fully partitioned plans and than
//! the admission-controlled engine, whose late-admitted queries degrade to
//! serial execution.

use std::sync::Arc;

use apq_baselines::{heuristic_parallelize, AdmissionController};
use apq_workloads::concurrent::{measure_under_load, BackgroundLoad};
use apq_workloads::tpch::{self, QueryClass, TpchQuery, TpchScale};

use crate::common::{adaptive, engine, time_plan_ms, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let workers = engine.n_workers();
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);

    // Table 4: query classification.
    let mut classes =
        ExperimentTable::new("Table 4", "evaluated TPC-H queries", &["query", "class"]);
    for q in TpchQuery::all() {
        classes.row(vec![
            q.to_string(),
            match q.class() {
                QueryClass::Simple => "simple".to_string(),
                QueryClass::Complex => "complex".to_string(),
            },
        ]);
    }

    // Per query: serial plan, HP plan, AP best plan.
    let mut prepared = Vec::new();
    for q in TpchQuery::all() {
        let serial = q.build(&catalog).expect("query builds");
        let hp = heuristic_parallelize(&serial, &catalog, workers).expect("HP plan builds");
        let report = adaptive(cfg, &engine, &catalog, &serial);
        prepared.push((q, serial, hp, report));
    }

    // Isolated execution.
    let mut isolated = ExperimentTable::new(
        "Figure 16 (isolated)",
        format!("isolated execution, {} workers (ms)", workers),
        &["query", "HP_ms", "AP_ms", "admission_ms", "AP_runs", "AP_selects"],
    );
    let admission = AdmissionController::new(workers);
    for (q, serial, hp, report) in &prepared {
        let hp_ms = time_plan_ms(&engine, &catalog, hp, cfg.measure_reps);
        let ap_ms = time_plan_ms(&engine, &catalog, &report.best_plan, cfg.measure_reps)
            .min(us_to_ms(report.best_us));
        let (vw_plan, _ticket) = admission.plan_for(serial, &catalog).expect("admission plan");
        let vw_ms = time_plan_ms(&engine, &catalog, &vw_plan, cfg.measure_reps);
        isolated.row(vec![
            q.to_string(),
            fmt_ms(hp_ms),
            fmt_ms(ap_ms),
            fmt_ms(vw_ms),
            report.total_runs.to_string(),
            report.best_plan.count_of("select").to_string(),
        ]);
    }

    // Concurrent execution: a background load of HP plans from all queries.
    let background: Vec<_> = prepared.iter().map(|(_, _, hp, _)| hp.clone()).collect();
    let load = BackgroundLoad::start(
        Arc::clone(&engine),
        Arc::clone(&catalog),
        background,
        cfg.concurrent_clients,
        cfg.seed ^ 0xC0FFEE,
    );
    // The admission controller sees the same number of competing clients.
    let admission = AdmissionController::new(workers);
    let _competitors: Vec<_> = (0..cfg.concurrent_clients).map(|_| admission.admit()).collect();

    let mut concurrent = ExperimentTable::new(
        "Figure 16 (concurrent)",
        format!(
            "response time under a concurrent workload ({} clients firing HP plans) (ms)",
            cfg.concurrent_clients
        ),
        &["query", "HP_ms", "AP_ms", "admission_ms"],
    );
    for (q, serial, hp, report) in &prepared {
        let hp_m =
            measure_under_load(&engine, &catalog, hp, cfg.measure_reps).expect("HP measured");
        let ap_m = measure_under_load(&engine, &catalog, &report.best_plan, cfg.measure_reps)
            .expect("AP measured");
        let (vw_plan, _ticket) = admission.plan_for(serial, &catalog).expect("admission plan");
        let vw_m =
            measure_under_load(&engine, &catalog, &vw_plan, cfg.measure_reps).expect("VW measured");
        concurrent.row(vec![
            q.to_string(),
            fmt_ms(hp_m.mean_ms()),
            fmt_ms(ap_m.mean_ms()),
            fmt_ms(vw_m.mean_ms()),
        ]);
    }
    load.stop();

    vec![classes, isolated, concurrent]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_classification_isolated_and_concurrent_tables() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].len(), 7);
        assert_eq!(tables[1].len(), 7);
        assert_eq!(tables[2].len(), 7);
        // Every measured time is positive.
        for row in tables[1].rows.iter().chain(&tables[2].rows) {
            for cell in &row[1..4] {
                assert!(cell.parse::<f64>().unwrap() > 0.0, "bad cell {cell}");
            }
        }
    }
}
