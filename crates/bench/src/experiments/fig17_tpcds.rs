//! Figure 17: isolated execution of the five TPC-DS-like queries, heuristic
//! vs adaptive parallelization, on the default machine configuration (a) and
//! on a "4-socket" configuration with more workers but a per-operator memory
//! latency penalty (b).
//!
//! The paper reports up to 5× better adaptive times on this skewed workload;
//! the shape reproduced here is "AP ≤ HP for every query, with a clearly
//! larger gap than on the uniform TPC-H data".

use apq_baselines::heuristic_parallelize;
use apq_workloads::tpcds::{self, TpcdsQuery, TpcdsScale};

use crate::common::{adaptive, engine, four_socket_engine, time_plan_ms, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, fmt_ratio, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let catalog = tpcds::generate(TpcdsScale::new(cfg.tpcds_sf), cfg.seed);
    let two_socket = engine(cfg);
    let four_socket = four_socket_engine(cfg);

    let mut tables = Vec::new();
    for (label, engine) in [
        ("Figure 17a (2-socket analogue)", &two_socket),
        ("Figure 17b (4-socket analogue)", &four_socket),
    ] {
        let workers = engine.n_workers();
        let mut table = ExperimentTable::new(
            label.to_string(),
            format!("TPC-DS-like isolated execution, {} workers (ms)", workers),
            &["query", "heuristic_ms", "adaptive_ms", "adaptive_gain"],
        );
        for q in TpcdsQuery::all() {
            let serial = q.build(&catalog).expect("query builds");
            let hp = heuristic_parallelize(&serial, &catalog, workers).expect("HP plan builds");
            let hp_ms = time_plan_ms(engine, &catalog, &hp, cfg.measure_reps);
            let report = adaptive(cfg, engine, &catalog, &serial);
            let ap_ms = time_plan_ms(engine, &catalog, &report.best_plan, cfg.measure_reps)
                .min(us_to_ms(report.best_us));
            table.row(vec![
                q.to_string(),
                fmt_ms(hp_ms),
                fmt_ms(ap_ms),
                format!("{}x", fmt_ratio(hp_ms / ap_ms.max(1e-6))),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_both_machine_configurations() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 2);
        for t in &tables {
            assert_eq!(t.len(), 5);
            for row in &t.rows {
                assert!(row[1].parse::<f64>().unwrap() > 0.0);
                assert!(row[2].parse::<f64>().unwrap() > 0.0);
            }
        }
    }
}
