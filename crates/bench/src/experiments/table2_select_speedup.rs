//! Table 2: select-plan speedup (relative to serial execution) of adaptive
//! parallelization (AP) and heuristic parallelization (HP), across input
//! sizes and selectivities.

use apq_baselines::heuristic_parallelize;
use apq_workloads::micro::select_sweep;

use crate::common::{adaptive, engine, time_plan_ms, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ratio, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let hp_parts = engine.n_workers();
    let sizes = [cfg.micro_rows, cfg.micro_rows / 2, cfg.micro_rows / 4];
    let selectivities = [0i64, 50, 100];

    let mut table = ExperimentTable::new(
        "Table 2",
        format!(
            "select plan speedup vs serial execution (AP = adaptive, HP = heuristic with {hp_parts} partitions)"
        ),
        &["rows", "selectivity_%", "AP_speedup", "HP_speedup", "serial_ms"],
    );
    for &rows in &sizes {
        let catalog = select_sweep::catalog(rows, cfg.seed);
        for &sel in &selectivities {
            let serial = select_sweep::plan(&catalog, sel).expect("sweep plan builds");
            let serial_ms = time_plan_ms(&engine, &catalog, &serial, cfg.measure_reps);
            let report = adaptive(cfg, &engine, &catalog, &serial);
            let ap_ms = time_plan_ms(&engine, &catalog, &report.best_plan, cfg.measure_reps)
                .min(us_to_ms(report.best_us));
            let hp = heuristic_parallelize(&serial, &catalog, hp_parts).expect("HP plan builds");
            let hp_ms = time_plan_ms(&engine, &catalog, &hp, cfg.measure_reps);
            table.row(vec![
                rows.to_string(),
                sel.to_string(),
                fmt_ratio(serial_ms / ap_ms.max(1e-6)),
                fmt_ratio(serial_ms / hp_ms.max(1e-6)),
                crate::reporting::fmt_ms(serial_ms),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_the_size_by_selectivity_grid() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 9);
        for row in &tables[0].rows {
            let ap: f64 = row[2].parse().unwrap();
            let hp: f64 = row[3].parse().unwrap();
            assert!(ap > 0.0 && hp > 0.0);
        }
    }
}
