//! Figure 14: adaptive select-plan execution time per run, for two input
//! sizes and selectivities 0 % (all rows output), 50 % and 100 % (no output).

use apq_workloads::micro::select_sweep;

use crate::common::{adaptive, engine};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// The selectivity points the paper sweeps (its convention: the percentage of
/// rows *filtered out*, so 0 % emits everything).
pub const SELECTIVITIES: [i64; 3] = [0, 50, 100];

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let sizes = [cfg.micro_rows, cfg.micro_rows / 2];
    let mut table = ExperimentTable::new(
        "Figure 14",
        format!(
            "adaptive select plan: execution time per run, sizes {:?} rows, {} workers",
            sizes,
            engine.n_workers()
        ),
        &["rows", "selectivity_%", "run", "time_ms"],
    );
    for &rows in &sizes {
        let catalog = select_sweep::catalog(rows, cfg.seed);
        for &sel in &SELECTIVITIES {
            let serial = select_sweep::plan(&catalog, sel).expect("sweep plan builds");
            let report = adaptive(cfg, &engine, &catalog, &serial);
            for (run, ms) in report.convergence_curve() {
                table.row(vec![rows.to_string(), sel.to_string(), run.to_string(), fmt_ms(ms)]);
            }
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_series_for_every_size_and_selectivity() {
        let cfg = ExperimentConfig::smoke();
        let tables = run(&cfg);
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        // Two sizes x three selectivities, each with at least the serial run.
        assert!(t.len() >= 6);
        let selectivities: std::collections::HashSet<&str> =
            t.rows.iter().map(|r| r[1].as_str()).collect();
        assert_eq!(selectivities.len(), 3);
        for row in &t.rows {
            assert!(row[3].parse::<f64>().unwrap() > 0.0);
        }
    }
}
