//! Table 3: join-plan speedup (relative to serial execution) of adaptive and
//! heuristic parallelization for an outer-size × inner-size grid.

use apq_baselines::heuristic_parallelize;
use apq_workloads::micro::join_sweep;

use crate::common::{adaptive, engine, time_plan_ms, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, fmt_ratio, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let hp_parts = engine.n_workers();
    let outer_sizes = [cfg.micro_rows, cfg.micro_rows * 5 / 8, cfg.micro_rows / 5];
    // The paper's 64 MB / 16 MB inner inputs: a larger and a cache-friendly one.
    let inner_sizes = [(cfg.micro_rows / 50).max(256), (cfg.micro_rows / 200).max(64)];

    let mut table = ExperimentTable::new(
        "Table 3",
        format!(
            "join plan speedup vs serial execution (outer input partitioned, hash built on the inner input; HP = {hp_parts} partitions)"
        ),
        &["outer_rows", "inner_rows", "AP_speedup", "HP_speedup", "serial_ms"],
    );
    for &outer in &outer_sizes {
        for &inner in &inner_sizes {
            let catalog = join_sweep::catalog(outer, inner, cfg.seed);
            let serial = join_sweep::plan(&catalog).expect("join plan builds");
            let serial_ms = time_plan_ms(&engine, &catalog, &serial, cfg.measure_reps);
            let report = adaptive(cfg, &engine, &catalog, &serial);
            let ap_ms = time_plan_ms(&engine, &catalog, &report.best_plan, cfg.measure_reps)
                .min(us_to_ms(report.best_us));
            let hp = heuristic_parallelize(&serial, &catalog, hp_parts).expect("HP plan builds");
            let hp_ms = time_plan_ms(&engine, &catalog, &hp, cfg.measure_reps);
            table.row(vec![
                outer.to_string(),
                inner.to_string(),
                fmt_ratio(serial_ms / ap_ms.max(1e-6)),
                fmt_ratio(serial_ms / hp_ms.max(1e-6)),
                fmt_ms(serial_ms),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_the_outer_by_inner_grid() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables[0].len(), 6);
        for row in &tables[0].rows {
            assert!(row[2].parse::<f64>().unwrap() > 0.0);
            assert!(row[3].parse::<f64>().unwrap() > 0.0);
        }
    }
}
