//! One module per reproduced table / figure of the paper's evaluation.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`fig01_dop_variation`] | Figure 1 |
//! | [`fig11_convergence_curve`] | Figure 11 |
//! | [`fig12_skew`] | Figure 12 (data distribution of Figure 13) |
//! | [`fig14_select_adaptation`] | Figure 14 |
//! | [`table2_select_speedup`] | Table 2 |
//! | [`fig15_join_adaptation`] | Figure 15 |
//! | [`table3_join_speedup`] | Table 3 |
//! | [`fig16_tpch`] | Figure 16 (queries of Table 4) |
//! | [`fig17_tpcds`] | Figure 17 a/b |
//! | [`table5_plan_stats`] | Table 5 |
//! | [`fig18_convergence`] | Figure 18 A–D |
//! | [`fig19_utilization`] | Figures 19 and 20 |

pub mod fig01_dop_variation;
pub mod fig11_convergence_curve;
pub mod fig12_skew;
pub mod fig14_select_adaptation;
pub mod fig15_join_adaptation;
pub mod fig16_tpch;
pub mod fig17_tpcds;
pub mod fig18_convergence;
pub mod fig19_utilization;
pub mod table2_select_speedup;
pub mod table3_join_speedup;
pub mod table5_plan_stats;
