//! Figure 1: response-time variation of heuristically parallelized TPC-H
//! queries under different degrees of parallelism while a saturating
//! concurrent workload runs.
//!
//! The paper's point: with all cores busy, no single static DOP is best for
//! every query — which motivates choosing the DOP through execution feedback.

use std::sync::Arc;

use apq_baselines::heuristic_parallelize;
use apq_workloads::concurrent::{measure_under_load, BackgroundLoad};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};

use crate::common::engine;
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// The queries whose response time is measured (three, like the paper).
pub const MEASURED: [TpchQuery; 3] = [TpchQuery::Q4, TpchQuery::Q9, TpchQuery::Q19];

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);
    let workers = engine.n_workers();
    let dops = [workers.div_ceil(4).max(2), workers.div_ceil(2).max(2), workers];

    // Saturating background load: every evaluated query, heuristically
    // parallelized, fired by `concurrent_clients` clients.
    let background: Vec<_> = TpchQuery::all()
        .iter()
        .map(|q| {
            let serial = q.build(&catalog).expect("query builds");
            heuristic_parallelize(&serial, &catalog, workers).expect("HP plan builds")
        })
        .collect();
    let load = BackgroundLoad::start(
        Arc::clone(&engine),
        Arc::clone(&catalog),
        background,
        cfg.concurrent_clients,
        cfg.seed,
    );

    let mut table = ExperimentTable::new(
        "Figure 1",
        format!(
            "TPC-H response time (ms) vs degree of parallelism under a concurrent workload ({} clients, {} workers)",
            cfg.concurrent_clients, workers
        ),
        &["query", "DOP", "response_ms"],
    );
    for query in MEASURED {
        let serial = query.build(&catalog).expect("query builds");
        for &dop in &dops {
            let plan = heuristic_parallelize(&serial, &catalog, dop).expect("HP plan builds");
            let m = measure_under_load(&engine, &catalog, &plan, cfg.measure_reps)
                .expect("measurement succeeds");
            table.row(vec![query.to_string(), dop.to_string(), fmt_ms(m.mean_ms())]);
        }
    }
    load.stop();
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_every_query_at_every_dop() {
        let tables = run(&ExperimentConfig::smoke());
        let t = &tables[0];
        assert_eq!(t.len(), MEASURED.len() * 3);
        for row in &t.rows {
            assert!(row[2].parse::<f64>().unwrap() > 0.0);
        }
    }
}
