//! Figure 15: adaptive join-plan execution time per run, sweeping the outer
//! (partitioned) input size while the inner (hash build) input stays small.

use apq_workloads::micro::join_sweep;

use crate::common::{adaptive, engine};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    // Outer sizes mirror the paper's 3200 / 2000 / 640 MB progression.
    let outer_sizes = [cfg.micro_rows, cfg.micro_rows * 5 / 8, cfg.micro_rows / 5];
    let inner_rows = (cfg.micro_rows / 200).max(64);

    let mut table = ExperimentTable::new(
        "Figure 15",
        format!(
            "adaptive join plan: execution time per run (inner input {inner_rows} rows, {} workers)",
            engine.n_workers()
        ),
        &["outer_rows", "run", "time_ms"],
    );
    for &outer in &outer_sizes {
        let catalog = join_sweep::catalog(outer, inner_rows, cfg.seed);
        let serial = join_sweep::plan(&catalog).expect("join plan builds");
        let report = adaptive(cfg, &engine, &catalog, &serial);
        for (run, ms) in report.convergence_curve() {
            table.row(vec![outer.to_string(), run.to_string(), fmt_ms(ms)]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_series_per_outer_size() {
        let tables = run(&ExperimentConfig::smoke());
        let t = &tables[0];
        let sizes: std::collections::HashSet<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(sizes.len(), 3);
        assert!(t.len() >= 6);
    }
}
