//! Figure 11: execution time per adaptive run for a join-operator plan.
//!
//! The paper plots the per-run execution times of adaptively parallelizing a
//! join plan, showing the steep initial descent, local minima, plateaus and
//! the occasional noise peak the convergence algorithm has to survive.

use apq_workloads::micro::join_sweep;

use crate::common::{adaptive, engine, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// Runs the experiment and returns the convergence-curve series.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let outer_rows = cfg.micro_rows;
    let inner_rows = (cfg.micro_rows / 200).max(64);
    let catalog = join_sweep::catalog(outer_rows, inner_rows, cfg.seed);
    let serial = join_sweep::plan(&catalog).expect("join micro plan builds");
    let report = adaptive(cfg, &engine, &catalog, &serial);

    let mut table = ExperimentTable::new(
        "Figure 11",
        format!(
            "adaptive convergence of a join plan ({outer_rows} outer rows x {inner_rows} inner rows, {} workers)",
            engine.n_workers()
        ),
        &["run", "time_ms", "mutation", "plan_nodes", "balance"],
    );
    for record in &report.records {
        table.row(vec![
            record.run.to_string(),
            fmt_ms(us_to_ms(record.exec_us)),
            record.mutation.map(|m| m.to_string()).unwrap_or_else(|| "serial".to_string()),
            record.plan_nodes.to_string(),
            format!("{:.2}", record.balance),
        ]);
    }

    let mut summary = ExperimentTable::new(
        "Figure 11 (summary)",
        "global minimum and convergence statistics",
        &["serial_ms", "gme_ms", "gme_run", "best_ms", "best_run", "total_runs", "speedup"],
    );
    summary.row(vec![
        fmt_ms(us_to_ms(report.serial_us)),
        fmt_ms(us_to_ms(report.gme_us)),
        report.gme_run.to_string(),
        fmt_ms(us_to_ms(report.best_us)),
        report.best_run.to_string(),
        report.total_runs.to_string(),
        format!("{:.2}x", report.speedup()),
    ]);
    vec![table, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_curve_and_summary() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 2);
        assert!(tables[0].len() >= 2, "at least the serial run plus one adaptive run");
        assert_eq!(tables[1].len(), 1);
        // The first row is the serial run.
        assert_eq!(tables[0].rows[0][0], "0");
        assert_eq!(tables[0].rows[0][2], "serial");
    }
}
