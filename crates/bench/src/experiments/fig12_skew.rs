//! Figure 12: parallel select over skewed data (Fig. 13 distribution) with
//! static 8-way partitioning, static 128-way ("work stealing") partitioning
//! and dynamic (adaptive) partitioning, as the fraction of skewed matches
//! grows from 10 % to 50 %.

use apq_baselines::{heuristic_parallelize, work_stealing_plan};
use apq_workloads::micro::skewed;

use crate::common::{adaptive, engine, time_plan_ms, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let static_parts = engine.n_workers();
    let stealing_parts = (engine.n_workers() * 16).min(128);
    let catalog = skewed::catalog(cfg.micro_rows, cfg.seed);

    let mut table = ExperimentTable::new(
        "Figure 12",
        format!(
            "skewed select, {} rows, {} workers: static {static_parts} parts vs static {stealing_parts} parts (work stealing) vs dynamic (adaptive)",
            cfg.micro_rows,
            engine.n_workers()
        ),
        &[
            "skew_%",
            "static_parts_ms",
            "work_stealing_ms",
            "adaptive_dynamic_ms",
            "adaptive_partitions",
        ],
    );

    for clusters in 1..=5usize {
        let serial = skewed::plan(&catalog, clusters).expect("skewed plan builds");
        let static_plan = heuristic_parallelize(&serial, &catalog, static_parts)
            .expect("static partitioning succeeds");
        let stealing = work_stealing_plan(&serial, &catalog, stealing_parts)
            .expect("work-stealing plan builds");
        let static_ms = time_plan_ms(&engine, &catalog, &static_plan, cfg.measure_reps);
        let stealing_ms = time_plan_ms(&engine, &catalog, &stealing, cfg.measure_reps);
        let report = adaptive(cfg, &engine, &catalog, &serial);
        let adaptive_ms = time_plan_ms(&engine, &catalog, &report.best_plan, cfg.measure_reps)
            .min(us_to_ms(report.best_us));
        table.row(vec![
            format!("{}", clusters * 10),
            fmt_ms(static_ms),
            fmt_ms(stealing_ms),
            fmt_ms(adaptive_ms),
            report.best_plan.count_of("select").to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_one_row_per_skew_level() {
        let tables = run(&ExperimentConfig::smoke());
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].len(), 5);
        assert_eq!(tables[0].rows[0][0], "10");
        assert_eq!(tables[0].rows[4][0], "50");
        // Times are positive numbers.
        for row in &tables[0].rows {
            for cell in &row[1..=3] {
                assert!(cell.parse::<f64>().unwrap() > 0.0);
            }
        }
    }
}
