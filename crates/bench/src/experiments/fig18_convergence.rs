//! Figure 18 (A–D): robustness of the convergence algorithm across repeated
//! adaptive-parallelization invocations of every evaluated TPC-H query.
//!
//! * A — total convergence runs per invocation;
//! * B — the run at which the global minimum (GME) occurs;
//! * C — the global minimum execution time;
//! * D — GME run vs total convergence runs (how quickly the search stops
//!   after finding the minimum).

use apq_workloads::tpch::{self, TpchQuery, TpchScale};

use crate::common::{adaptive, engine, us_to_ms};
use crate::config::ExperimentConfig;
use crate::reporting::{fmt_ms, ExperimentTable};

/// Number of adaptive invocations per query (the paper uses three).
pub const INVOCATIONS: usize = 3;

/// Runs the experiment.
pub fn run(cfg: &ExperimentConfig) -> Vec<ExperimentTable> {
    let engine = engine(cfg);
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), cfg.seed);

    let mut per_invocation = ExperimentTable::new(
        "Figure 18 (A-C)",
        "convergence runs, GME run and GME time per adaptive invocation",
        &["query", "invocation", "convergence_runs", "gme_run", "gme_ms", "best_ms"],
    );
    let mut summary = ExperimentTable::new(
        "Figure 18 (D)",
        "global-minimum run vs total convergence runs (averaged over invocations)",
        &["query", "avg_gme_run", "avg_total_runs"],
    );

    for query in TpchQuery::all() {
        let serial = query.build(&catalog).expect("query builds");
        let mut gme_runs = 0.0;
        let mut total_runs = 0.0;
        for invocation in 1..=INVOCATIONS {
            let report = adaptive(cfg, &engine, &catalog, &serial);
            per_invocation.row(vec![
                query.to_string(),
                invocation.to_string(),
                report.total_runs.to_string(),
                report.gme_run.to_string(),
                fmt_ms(us_to_ms(report.gme_us)),
                fmt_ms(us_to_ms(report.best_us)),
            ]);
            gme_runs += report.gme_run as f64;
            total_runs += report.total_runs as f64;
        }
        summary.row(vec![
            query.to_string(),
            format!("{:.1}", gme_runs / INVOCATIONS as f64),
            format!("{:.1}", total_runs / INVOCATIONS as f64),
        ]);
    }
    vec![per_invocation, summary]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_every_query_and_invocation() {
        let mut cfg = ExperimentConfig::smoke();
        cfg.adaptive_max_runs = 4; // keep the smoke test fast
        let tables = run(&cfg);
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0].len(), 7 * INVOCATIONS);
        assert_eq!(tables[1].len(), 7);
        for row in &tables[1].rows {
            let gme: f64 = row[1].parse().unwrap();
            let total: f64 = row[2].parse().unwrap();
            assert!(gme <= total, "GME run {gme} cannot exceed total runs {total}");
        }
    }
}
