//! Hot-path microbenchmark for the zero-copy stream views: slice + union
//! throughput of windowed `Chunk::Oids` / `Chunk::Join` streams against a
//! materializing reference (the pre-view engine behaviour: `to_vec` per cut,
//! owned-clone-then-pack per union part), plus morsel-mode TPC-H Q6/Q14 wall
//! times on the engine as built.
//!
//! The `typed_access` section covers the other two hot-path claims of the
//! typed-cache PR: repeated typed access through column windows (warm
//! pointer-load path vs cold validate-and-publish path), and a TPC-H
//! Q1-style grouped aggregate executed as a fused pipeline terminal
//! (morsel mode) vs unfused (operator-at-a-time).
//!
//! The `hotpath` binary writes the results as `BENCH_hotpath.json` at the
//! repository root — the before/after trajectory record the ROADMAP asks
//! for. CI runs it in `--smoke` mode so the binary never rots; real numbers
//! come from the default (full) mode.

use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, Column, Oid};
use apq_engine::interpreter::execute_node;
use apq_engine::plan::{OperatorSpec, Plan};
use apq_engine::{Chunk, Engine, EngineConfig, ExecutionMode, SchedulerPolicy};
use apq_operators::{AggFunc, JoinResult};
use apq_workloads::tpch::{self, TpchQuery, TpchScale};

use crate::common::time_plan_ms;

/// Sizing knobs for one run.
#[derive(Debug, Clone, Copy)]
pub struct HotpathConfig {
    /// Candidate-stream length for the slice/union microbench.
    pub stream_rows: usize,
    /// Morsel width the stream is cut into.
    pub morsel_rows: usize,
    /// Timed slice+union round trips per path.
    pub iters: usize,
    /// TPC-H scale factor for the wall-time section.
    pub tpch_sf: f64,
    /// Wall-time repetitions (minimum is reported).
    pub reps: usize,
    /// Workers for the TPC-H section.
    pub workers: usize,
    /// Label recorded in the JSON (`"full"` / `"smoke"`).
    pub mode: &'static str,
}

impl HotpathConfig {
    /// Full-size run: minutes-scale, produces the recorded numbers.
    pub fn full() -> Self {
        HotpathConfig {
            stream_rows: 4_000_000,
            morsel_rows: 64 * 1024,
            iters: 40,
            tpch_sf: 0.02,
            reps: 9,
            workers: 4,
            mode: "full",
        }
    }

    /// Seconds-scale run for CI smoke and unit tests.
    pub fn smoke() -> Self {
        HotpathConfig {
            stream_rows: 200_000,
            morsel_rows: 16 * 1024,
            iters: 4,
            tpch_sf: 0.002,
            reps: 2,
            workers: 2,
            mode: "smoke",
        }
    }
}

/// One slice+union round trip through the engine's interpreter: cut the
/// stream into its morsel grid with `SlicePart`, recombine with
/// `ExchangeUnion`. With windowed views every cut is window arithmetic and
/// the recombination is the widening fast path.
fn windowed_round_trip(cat: &Catalog, stream: &Chunk, morsel: usize) -> Chunk {
    let rows = stream.rows();
    let n = rows.div_ceil(morsel).max(1);
    let parts: Vec<Chunk> = (0..n)
        .map(|i| {
            execute_node(
                0,
                &OperatorSpec::SlicePart { start: i * morsel, len: morsel },
                std::slice::from_ref(stream),
                cat,
            )
            .expect("slice")
        })
        .collect();
    execute_node(1, &OperatorSpec::ExchangeUnion, &parts, cat).expect("union")
}

/// The materializing reference for an oid stream — what the engine did
/// before the view rewrite: every cut copies its window out
/// (`oids[start..end].to_vec()`), and the union clones each part once more
/// before packing (the `as_ref().clone()` the fallback path used to do).
fn materializing_oids_round_trip(oids: &Arc<Vec<Oid>>, morsel: usize) -> Vec<Oid> {
    let rows = oids.len();
    let n = rows.div_ceil(morsel).max(1);
    let parts: Vec<(Vec<Oid>, Oid)> = (0..n)
        .map(|i| {
            let start = (i * morsel).min(rows);
            let end = (start + morsel).min(rows);
            (oids[start..end].to_vec(), start as Oid)
        })
        .collect();
    let owned: Vec<Vec<Oid>> = parts.iter().map(|(p, _)| p.clone()).collect();
    apq_operators::pack_oids(&owned)
}

/// Materializing reference for a join stream: windowed pair copies per cut,
/// owned `JoinResult` clones packed via `concat`.
fn materializing_join_round_trip(result: &Arc<JoinResult>, morsel: usize) -> JoinResult {
    let rows = result.len();
    let n = rows.div_ceil(morsel).max(1);
    let parts: Vec<JoinResult> = (0..n)
        .map(|i| {
            let start = (i * morsel).min(rows);
            let end = (start + morsel).min(rows);
            JoinResult {
                outer_oids: result.outer_oids[start..end].to_vec(),
                inner_oids: result.inner_oids[start..end].to_vec(),
            }
        })
        .collect();
    let owned: Vec<JoinResult> = parts.to_vec();
    JoinResult::concat(&owned)
}

/// Times `iters` runs of `f` (after one warmup), returning total
/// milliseconds.
fn time_ms<R>(iters: usize, mut f: impl FnMut() -> R) -> f64 {
    black_box(f());
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    start.elapsed().as_secs_f64() * 1_000.0
}

fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

/// Rows per column in the typed-access microbench: small enough that the
/// timed cost is the access path (tag match + publish vs pointer load),
/// not memory bandwidth.
const TYPED_WINDOW_ROWS: usize = 64;

/// Typed accesses per timed pass (cold needs one fresh backing each).
fn typed_accesses(cfg: &HotpathConfig) -> usize {
    cfg.iters * 2_500
}

/// Cold path: the first typed access on each of `n` fresh backings — every
/// access pays the tag match, the `OnceLock` publication and the validation
/// counts. The columns are built before the clock starts.
fn typed_cold_ms(n: usize) -> f64 {
    let cols: Vec<Column> =
        (0..n).map(|i| Column::from_i64(vec![i as i64; TYPED_WINDOW_ROWS])).collect();
    let start = Instant::now();
    for c in &cols {
        black_box(c.i64_values().expect("typed access"));
    }
    start.elapsed().as_secs_f64() * 1_000.0
}

/// Warm path: `n` window accesses over one pre-validated backing — the
/// morsel-driver shape (cut a window, read it typed), where every read is a
/// lock-free pointer load plus window arithmetic.
fn typed_warm_ms(n: usize) -> f64 {
    let col = Column::from_i64((0..(n * TYPED_WINDOW_ROWS) as i64).collect());
    black_box(col.i64_values().expect("warm-up access"));
    let start = Instant::now();
    for i in 0..n {
        let w = col.slice(i * TYPED_WINDOW_ROWS, TYPED_WINDOW_ROWS).expect("window");
        black_box(w.i64_values().expect("warm access"));
    }
    start.elapsed().as_secs_f64() * 1_000.0
}

/// TPC-H Q1-style grouped aggregate: `SELECT l_tax, sum(l_extendedprice)
/// FROM lineitem GROUP BY l_tax`. Over range-aligned scans this fuses as a
/// pipeline terminal in morsel mode and runs unfused operator-at-a-time.
fn q1_style_group_plan(catalog: &Catalog) -> Plan {
    let rows = catalog.table("lineitem").expect("tpch lineitem").row_count();
    let mut p = Plan::new();
    let keys = p.add(
        OperatorSpec::ScanColumn {
            table: "lineitem".into(),
            column: "l_tax".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let values = p.add(
        OperatorSpec::ScanColumn {
            table: "lineitem".into(),
            column: "l_extendedprice".into(),
            range: RowRange::new(0, rows),
        },
        vec![],
    );
    let group = p.add(OperatorSpec::GroupAgg { func: AggFunc::Sum }, vec![keys, values]);
    let merge = p.add(OperatorSpec::MergeGrouped, vec![group]);
    p.set_root(merge);
    p
}

/// Runs the full benchmark, returning the report as a JSON string.
pub fn run(cfg: &HotpathConfig) -> String {
    // --- slice + union microbench -------------------------------------
    let cat = Catalog::new();
    let backing: Vec<Oid> = (0..cfg.stream_rows as Oid).collect();
    let oids_chunk = Chunk::oids(backing.clone());
    let oids_arc = Arc::new(backing);
    let join_backing = JoinResult {
        outer_oids: (0..cfg.stream_rows as Oid).collect(),
        inner_oids: (0..cfg.stream_rows as Oid).rev().collect(),
    };
    let join_chunk = Chunk::join(JoinResult {
        outer_oids: join_backing.outer_oids.clone(),
        inner_oids: join_backing.inner_oids.clone(),
    });
    let join_arc = Arc::new(join_backing);

    let oids_windowed =
        time_ms(cfg.iters, || windowed_round_trip(&cat, &oids_chunk, cfg.morsel_rows));
    let oids_materializing =
        time_ms(cfg.iters, || materializing_oids_round_trip(&oids_arc, cfg.morsel_rows));
    let join_windowed =
        time_ms(cfg.iters, || windowed_round_trip(&cat, &join_chunk, cfg.morsel_rows));
    let join_materializing =
        time_ms(cfg.iters, || materializing_join_round_trip(&join_arc, cfg.morsel_rows));

    // --- morsel-mode TPC-H wall times ---------------------------------
    let catalog = tpch::generate(TpchScale::new(cfg.tpch_sf), 1234);
    let oat = Engine::with_workers(cfg.workers);
    let morsel = Engine::new(
        EngineConfig::with_workers(cfg.workers)
            .with_scheduler(SchedulerPolicy::WorkStealing)
            .with_execution_mode(ExecutionMode::MorselDriven)
            .with_morsel_rows(cfg.morsel_rows),
    );
    let tpch_rows: Vec<String> = [TpchQuery::Q6, TpchQuery::Q14]
        .iter()
        .map(|q| {
            let plan = q.build(&catalog).expect("TPC-H plan builds");
            let oat_ms = time_plan_ms(&oat, &catalog, &plan, cfg.reps);
            let morsel_ms = time_plan_ms(&morsel, &catalog, &plan, cfg.reps);
            format!(
                "    {{ \"query\": \"{q}\", \"operator_at_a_time_ms\": {}, \"morsel_ms\": {} }}",
                fmt_ms(oat_ms),
                fmt_ms(morsel_ms)
            )
        })
        .collect();

    // --- typed-access caches + fused GroupAgg -------------------------
    let accesses = typed_accesses(cfg);
    let typed_cold = typed_cold_ms(accesses);
    let typed_warm = typed_warm_ms(accesses);
    let group_plan = q1_style_group_plan(&catalog);
    let group_unfused = time_plan_ms(&oat, &catalog, &group_plan, cfg.reps);
    let group_fused = time_plan_ms(&morsel, &catalog, &group_plan, cfg.reps);

    format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"mode\": \"{mode}\",\n  \"config\": {{ \"stream_rows\": {stream_rows}, \"morsel_rows\": {morsel_rows}, \"iters\": {iters}, \"tpch_sf\": {tpch_sf}, \"reps\": {reps}, \"workers\": {workers} }},\n  \"slice_union_microbench\": {{\n    \"oids\": {{ \"windowed_ms\": {ow}, \"materializing_ms\": {om}, \"speedup\": {os:.2} }},\n    \"join\": {{ \"windowed_ms\": {jw}, \"materializing_ms\": {jm}, \"speedup\": {js:.2} }}\n  }},\n  \"typed_access\": {{\n    \"accesses\": {accesses},\n    \"repeat_window_access\": {{ \"warm_ms\": {tw}, \"cold_ms\": {tc}, \"speedup\": {ts:.2} }},\n    \"groupagg_q1_style\": {{ \"fused_ms\": {gf}, \"unfused_ms\": {gu} }}\n  }},\n  \"tpch_morsel_wall_time\": [\n{tpch}\n  ]\n}}\n",
        mode = cfg.mode,
        stream_rows = cfg.stream_rows,
        morsel_rows = cfg.morsel_rows,
        iters = cfg.iters,
        tpch_sf = cfg.tpch_sf,
        reps = cfg.reps,
        workers = cfg.workers,
        ow = fmt_ms(oids_windowed),
        om = fmt_ms(oids_materializing),
        os = oids_materializing / oids_windowed.max(f64::EPSILON),
        jw = fmt_ms(join_windowed),
        jm = fmt_ms(join_materializing),
        js = join_materializing / join_windowed.max(f64::EPSILON),
        tw = fmt_ms(typed_warm),
        tc = fmt_ms(typed_cold),
        ts = typed_cold / typed_warm.max(f64::EPSILON),
        gf = fmt_ms(group_fused),
        gu = fmt_ms(group_unfused),
        tpch = tpch_rows.join(",\n"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_run_produces_well_formed_report() {
        let json = run(&HotpathConfig::smoke());
        for key in [
            "\"bench\": \"hotpath\"",
            "\"mode\": \"smoke\"",
            "slice_union_microbench",
            "windowed_ms",
            "materializing_ms",
            "typed_access",
            "repeat_window_access",
            "warm_ms",
            "cold_ms",
            "groupagg_q1_style",
            "fused_ms",
            "unfused_ms",
            "tpch_morsel_wall_time",
            "\"query\": \"Q6\"",
            "\"query\": \"Q14\"",
        ] {
            assert!(json.contains(key), "missing {key} in:\n{json}");
        }
        // Balanced braces/brackets — cheap well-formedness check without a
        // JSON parser in the dependency set.
        for (open, close) in [('{', '}'), ('[', ']')] {
            assert_eq!(
                json.matches(open).count(),
                json.matches(close).count(),
                "unbalanced {open}{close}"
            );
        }
    }

    #[test]
    fn round_trips_agree() {
        let cat = Catalog::new();
        let oids: Vec<Oid> = (0..10_000).map(|v| v * 2 + 1).collect();
        let chunk = Chunk::oids(oids.clone());
        let via_engine = windowed_round_trip(&cat, &chunk, 1_024);
        let via_reference = materializing_oids_round_trip(&Arc::new(oids), 1_024);
        match via_engine {
            Chunk::Oids(v) => assert_eq!(v.as_slice(), &via_reference[..]),
            other => panic!("unexpected chunk kind {}", other.kind()),
        }
    }
}
