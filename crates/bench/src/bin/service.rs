//! Writes the service-layer benchmark record (`BENCH_service.json`) at the
//! repository root: session churn throughput through `QueryService` and the
//! staged-departure response-time/DOP-grant series.
//!
//! Usage: `cargo run --release -p apq-bench --bin service [-- --smoke] [--out PATH]`

use apq_bench::service::{self, ServiceBenchConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json").to_string()
        });
    let cfg = if smoke { ServiceBenchConfig::smoke() } else { ServiceBenchConfig::full() };
    eprintln!("service bench: mode={}, writing {out}", cfg.mode);
    let json = service::run(&cfg);
    std::fs::write(&out, &json).expect("write benchmark record");
    print!("{json}");
}
