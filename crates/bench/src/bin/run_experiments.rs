//! Runs the experiments that reproduce the paper's tables and figures and
//! prints the resulting series.
//!
//! Usage:
//!
//! ```text
//! run_experiments                 # every experiment, quick sizes
//! run_experiments --full          # every experiment, larger sizes
//! run_experiments fig12 table5    # a subset
//! run_experiments --list          # list experiment ids
//! ```

use std::time::Instant;

use apq_bench::{run_experiment, ExperimentConfig, EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for (id, description) in EXPERIMENTS {
            println!("{id:<8} {description}");
        }
        return;
    }
    let full = args.iter().any(|a| a == "--full");
    let smoke = args.iter().any(|a| a == "--smoke");
    let cfg = if full {
        ExperimentConfig::full()
    } else if smoke {
        ExperimentConfig::smoke()
    } else {
        ExperimentConfig::quick()
    };
    let requested: Vec<&str> =
        args.iter().filter(|a| !a.starts_with("--")).map(String::as_str).collect();
    let selected: Vec<&str> = if requested.is_empty() {
        EXPERIMENTS.iter().map(|(id, _)| *id).collect()
    } else {
        requested
    };

    println!(
        "adaptive query parallelization — experiment harness ({} mode, {} workers, TPC-H sf {}, TPC-DS sf {}, {} micro rows)",
        if full { "full" } else if smoke { "smoke" } else { "quick" },
        cfg.workers,
        cfg.tpch_sf,
        cfg.tpcds_sf,
        cfg.micro_rows
    );
    println!();

    let total = Instant::now();
    for id in selected {
        let started = Instant::now();
        match run_experiment(id, &cfg) {
            Some(tables) => {
                for table in tables {
                    println!("{}", table.render());
                }
                println!("[{id} completed in {:.1}s]", started.elapsed().as_secs_f64());
                println!();
            }
            None => {
                eprintln!("unknown experiment id '{id}' — use --list to see the available ids");
                std::process::exit(2);
            }
        }
    }
    println!("all requested experiments completed in {:.1}s", total.elapsed().as_secs_f64());
}

fn print_usage() {
    println!("run_experiments [--full|--smoke] [--list] [experiment ids...]");
    println!();
    println!("Reproduces the tables and figures of 'Adaptive query parallelization in");
    println!("multi-core column stores' (EDBT 2016) on the bundled Rust engine.");
    println!();
    for (id, description) in EXPERIMENTS {
        println!("  {id:<8} {description}");
    }
}
