//! Writes the hot-path benchmark record (`BENCH_hotpath.json`) at the
//! repository root: slice+union throughput of windowed stream views vs the
//! materializing reference, and morsel-mode TPC-H Q6/Q14 wall times.
//!
//! Usage: `cargo run --release -p apq-bench --bin hotpath [-- --smoke] [--out PATH]`

use apq_bench::hotpath::{self, HotpathConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1).cloned())
        .unwrap_or_else(|| {
            concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_hotpath.json").to_string()
        });
    let cfg = if smoke { HotpathConfig::smoke() } else { HotpathConfig::full() };
    eprintln!("hotpath bench: mode={}, writing {out}", cfg.mode);
    let json = hotpath::run(&cfg);
    std::fs::write(&out, &json).expect("write benchmark record");
    print!("{json}");
}
