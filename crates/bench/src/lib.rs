//! Experiment harness reproducing every table and figure of the paper's
//! evaluation (§4), plus shared helpers for the Criterion benches.
//!
//! Each experiment lives in its own module under [`experiments`] and returns
//! one or more [`reporting::ExperimentTable`]s whose rows mirror the series
//! the paper plots. The `run_experiments` binary prints them; the Criterion
//! benches under `benches/` additionally measure the key plan executions of
//! each experiment.
//!
//! Absolute numbers are *not* expected to match the paper (the substrate is a
//! laptop-scale Rust engine, not the authors' 32-core MonetDB testbed); the
//! shapes — who wins, by roughly what factor, where the crossovers lie — are
//! what the experiments reproduce. See `EXPERIMENTS.md` at the repository
//! root for the recorded comparison.

pub mod common;
pub mod config;
pub mod experiments;
pub mod hotpath;
pub mod reporting;
pub mod service;

pub use config::ExperimentConfig;
pub use reporting::ExperimentTable;

/// Identifier and short description of every reproducible experiment.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("fig1", "Figure 1: response time vs DOP under a concurrent workload"),
    ("fig11", "Figure 11: adaptive convergence curve of a join plan"),
    ("fig12", "Figure 12: skewed select — static vs dynamic partitioning"),
    ("fig14", "Figure 14: adaptive select plan, size x selectivity sweep"),
    ("table2", "Table 2: select plan speedup, adaptive vs heuristic"),
    ("fig15", "Figure 15: adaptive join plan, input size sweep"),
    ("table3", "Table 3: join plan speedup, adaptive vs heuristic"),
    ("fig16", "Figure 16: TPC-H isolated + concurrent, HP vs AP vs admission-controlled"),
    ("fig17", "Figure 17: TPC-DS isolated, heuristic vs adaptive, two machine configs"),
    ("table5", "Table 5: TPC-H Q14 plan statistics, AP vs HP"),
    ("fig18", "Figure 18: convergence robustness over repeated invocations"),
    ("fig19", "Figures 19/20: multi-core utilization traces of TPC-H Q14"),
];

/// Runs one experiment by id.
pub fn run_experiment(id: &str, cfg: &ExperimentConfig) -> Option<Vec<ExperimentTable>> {
    match id {
        "fig1" => Some(experiments::fig01_dop_variation::run(cfg)),
        "fig11" => Some(experiments::fig11_convergence_curve::run(cfg)),
        "fig12" => Some(experiments::fig12_skew::run(cfg)),
        "fig14" => Some(experiments::fig14_select_adaptation::run(cfg)),
        "table2" => Some(experiments::table2_select_speedup::run(cfg)),
        "fig15" => Some(experiments::fig15_join_adaptation::run(cfg)),
        "table3" => Some(experiments::table3_join_speedup::run(cfg)),
        "fig16" => Some(experiments::fig16_tpch::run(cfg)),
        "fig17" => Some(experiments::fig17_tpcds::run(cfg)),
        "table5" => Some(experiments::table5_plan_stats::run(cfg)),
        "fig18" => Some(experiments::fig18_convergence::run(cfg)),
        "fig19" => Some(experiments::fig19_utilization::run(cfg)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_experiment_is_runnable_by_id() {
        // Only checks the dispatch table; the experiments themselves are
        // exercised by their own tests and by the benches.
        for (id, description) in EXPERIMENTS {
            assert!(!description.is_empty());
            assert!(
                [
                    "fig1", "fig11", "fig12", "fig14", "table2", "fig15", "table3", "fig16",
                    "fig17", "table5", "fig18", "fig19"
                ]
                .contains(id),
                "unknown experiment id {id}"
            );
        }
        assert!(run_experiment("nope", &ExperimentConfig::smoke()).is_none());
    }
}
