//! Table rendering for the experiment harness.

use std::fmt::Write as _;

/// One reproduced table / figure series: an id matching the paper's artefact,
/// headers and string rows.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentTable {
    /// Paper artefact id (`"Figure 12"`, `"Table 2"`, ...).
    pub id: String,
    /// One-line description of what is shown.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

impl ExperimentTable {
    /// Creates a table with headers and no rows yet.
    pub fn new(id: impl Into<String>, title: impl Into<String>, headers: &[&str]) -> Self {
        ExperimentTable {
            id: id.into(),
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringifying each cell).
    pub fn push_row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch in {}", self.id);
        self.rows.push(cells.to_vec());
    }

    /// Convenience for rows built from `&str` / `String` mixes.
    pub fn row(&mut self, cells: Vec<String>) {
        self.push_row(&cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when no data rows were recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as aligned ASCII.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {}", self.id, self.title);
        let header: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:<width$}", width = widths[i]))
            .collect();
        let _ = writeln!(out, "  {}", header.join(" | "));
        let rule: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        let _ = writeln!(out, "  {}", rule.join("-+-"));
        for row in &self.rows {
            let cells: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:<width$}", width = widths[i]))
                .collect();
            let _ = writeln!(out, "  {}", cells.join(" | "));
        }
        out
    }
}

/// Formats milliseconds with three decimals.
pub fn fmt_ms(ms: f64) -> String {
    format!("{ms:.3}")
}

/// Formats a ratio (speedup, utilization) with two decimals.
pub fn fmt_ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Formats a percentage with one decimal.
pub fn fmt_percent(fraction: f64) -> String {
    format!("{:.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let mut t = ExperimentTable::new("Table 2", "select speedup", &["size", "AP", "HP"]);
        assert!(t.is_empty());
        t.row(vec!["10 GB".into(), "16".into(), "11".into()]);
        t.row(vec!["100 GB".into(), "8.5".into(), "10".into()]);
        assert_eq!(t.len(), 2);
        let rendered = t.render();
        assert!(rendered.contains("Table 2"));
        assert!(rendered.contains("select speedup"));
        assert!(rendered.contains("100 GB"));
        // All data lines have the same width (alignment).
        let lines: Vec<&str> = rendered.lines().skip(1).collect();
        assert!(lines.len() >= 4);
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_mismatch_panics() {
        let mut t = ExperimentTable::new("x", "y", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_ms(1.23456), "1.235");
        assert_eq!(fmt_ratio(2.5), "2.50");
        assert_eq!(fmt_percent(0.357), "35.7%");
    }
}
