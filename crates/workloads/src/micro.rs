//! Operator-level micro-benchmarks (paper §4.1).
//!
//! * [`skewed`] — the skewed-column select of Fig. 12/13: static vs. dynamic
//!   partitioning under execution skew.
//! * [`select_sweep`] — the select operator's speedup as a function of input
//!   size and selectivity (Fig. 14 / Table 2).
//! * [`join_sweep`] — the hash-join speedup as a function of outer / inner
//!   input sizes (Fig. 15 / Table 3).

use std::sync::Arc;

use apq_columnar::datagen::{
    self, skew_cluster_value, uniform_i64, SKEW_CLUSTERS, SKEW_CLUSTER_BASE,
};
use apq_columnar::{Catalog, TableBuilder};
use apq_engine::plan::{JoinSide, Plan};
use apq_engine::Result;
use apq_operators::{AggFunc, CmpOp, Predicate};

use crate::builder::PlanBuilder;

/// The skewed select workload of paper Fig. 12 / Fig. 13.
pub mod skewed {
    use super::*;

    /// Catalog with one table `skewed(v, payload)` whose `v` column follows
    /// the Fig. 13 distribution (random first half, five identical-value
    /// clusters in the second half).
    pub fn catalog(rows: usize, seed: u64) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("skewed")
                .i64_column("v", datagen::skewed_column(rows, seed))
                .i64_column("payload", uniform_i64(rows, 0, 1_000, seed.wrapping_add(1)))
                .build()
                .expect("skewed columns are equally long"),
        );
        Arc::new(c)
    }

    /// Serial plan selecting `clusters_selected` of the five identical-value
    /// clusters (each cluster is ~10 % of the rows, so the paper's "% skew"
    /// axis is `clusters_selected × 10`), then summing the matching payload.
    pub fn plan(catalog: &Catalog, clusters_selected: usize) -> Result<Plan> {
        let clusters = clusters_selected.clamp(1, SKEW_CLUSTERS);
        let mut b = PlanBuilder::new(catalog);
        let v = b.scan("skewed", "v")?;
        let selected =
            b.select(v, Predicate::range(SKEW_CLUSTER_BASE, skew_cluster_value(clusters - 1) + 1));
        let payload = b.scan("skewed", "payload")?;
        let values = b.fetch(selected, payload);
        let total = b.scalar_agg(AggFunc::Sum, values);
        b.finish(total)
    }
}

/// The select size / selectivity sweep of paper Fig. 14 / Table 2.
pub mod select_sweep {
    use super::*;

    /// Catalog with one table `sweep(v, price, discount)`; `v` is uniform in
    /// `[0, 100)` so a predicate `v < s` selects exactly `s` percent of the rows.
    pub fn catalog(rows: usize, seed: u64) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("sweep")
                .i64_column("v", uniform_i64(rows, 0, 100, seed))
                .i64_column(
                    "price",
                    datagen::prices_decimal2(rows, 1.0, 1_000.0, seed.wrapping_add(1)),
                )
                .i64_column("discount", uniform_i64(rows, 0, 11, seed.wrapping_add(2)))
                .build()
                .expect("sweep columns are equally long"),
        );
        Arc::new(c)
    }

    /// Serial select plan with `matched_percent` percent of the rows matching
    /// (the paper's "selectivity" axis, where 0 % means *all* rows are output
    /// and 100 % means none): select, reconstruct two columns, compute the
    /// revenue expression and sum it.
    pub fn plan(catalog: &Catalog, matched_percent: i64) -> Result<Plan> {
        let threshold = (100 - matched_percent).clamp(0, 100);
        let mut b = PlanBuilder::new(catalog);
        let v = b.scan("sweep", "v")?;
        let selected = b.select(v, Predicate::cmp(CmpOp::Lt, threshold));
        let price = b.scan("sweep", "price")?;
        let discount = b.scan("sweep", "discount")?;
        let price_f = b.fetch(selected, price);
        let disc_f = b.fetch(selected, discount);
        let revenue = b.revenue(price_f, disc_f);
        let total = b.scalar_agg(AggFunc::Sum, revenue);
        b.finish(total)
    }
}

/// The join size sweep of paper Fig. 15 / Table 3.
pub mod join_sweep {
    use super::*;

    /// Catalog with `outer_t(key, payload)` (`outer_rows` random keys) and
    /// `inner_t(key, payload)` (`inner_rows` dense keys). The outer side is
    /// the larger input that adaptive parallelization partitions; the inner
    /// side is the hash-table build side (paper: "the outer inputs stay
    /// larger than the inner input ... even after 32 partitions").
    pub fn catalog(outer_rows: usize, inner_rows: usize, seed: u64) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("outer_t")
                .i64_column("key", uniform_i64(outer_rows, 0, inner_rows as i64, seed))
                .i64_column("payload", uniform_i64(outer_rows, 0, 1_000, seed.wrapping_add(1)))
                .build()
                .expect("outer columns are equally long"),
        );
        c.register(
            TableBuilder::new("inner_t")
                .i64_column("key", datagen::sequential_i64(inner_rows))
                .i64_column("payload", uniform_i64(inner_rows, 0, 1_000, seed.wrapping_add(2)))
                .build()
                .expect("inner columns are equally long"),
        );
        Arc::new(c)
    }

    /// Serial join plan: build on the inner key column, probe with the outer
    /// key column, reconstruct the outer payload for every match and sum it.
    pub fn plan(catalog: &Catalog) -> Result<Plan> {
        let mut b = PlanBuilder::new(catalog);
        let inner_key = b.scan("inner_t", "key")?;
        let hash = b.hash_build(inner_key);
        let outer_key = b.scan("outer_t", "key")?;
        let join = b.probe(outer_key, hash);
        let outer_side = b.join_side(join, JoinSide::Outer);
        let payload = b.scan("outer_t", "payload")?;
        let values = b.fetch(outer_side, payload);
        let total = b.scalar_agg(AggFunc::Sum, values);
        b.finish(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::ScalarValue;
    use apq_engine::{Engine, QueryOutput};

    #[test]
    fn skewed_select_matches_expected_fraction() {
        let rows = 10_000;
        let cat = skewed::catalog(rows, 3);
        let engine = Engine::with_workers(2);
        // Selecting k clusters must match ~k*10% of the rows; verify through
        // a count plan equivalent by re-running the select on the raw column.
        let v = cat.table("skewed").unwrap().column("v").unwrap();
        for k in 1..=SKEW_CLUSTERS {
            let plan = skewed::plan(&cat, k).unwrap();
            let out = engine.execute(&plan, &cat).unwrap().output;
            assert!(matches!(out, QueryOutput::Scalar(ScalarValue::I64(_))));
            let matches = apq_operators::select(
                v,
                &Predicate::range(SKEW_CLUSTER_BASE, skew_cluster_value(k - 1) + 1),
            )
            .unwrap()
            .len();
            let frac = matches as f64 / rows as f64;
            let expected = k as f64 * 0.1;
            assert!(
                (frac - expected).abs() < 0.03,
                "cluster {k}: fraction {frac} vs expected {expected}"
            );
        }
        // Out-of-range cluster counts are clamped.
        assert!(skewed::plan(&cat, 0).is_ok());
        assert!(skewed::plan(&cat, 99).is_ok());
    }

    #[test]
    fn select_sweep_selectivity_axis() {
        let rows = 20_000;
        let cat = select_sweep::catalog(rows, 5);
        let v = cat.table("sweep").unwrap().column("v").unwrap();
        // matched_percent = 0 -> all rows; 100 -> no rows (paper's convention).
        for (pct, expected) in [(0i64, 1.0f64), (50, 0.5), (100, 0.0)] {
            let matched = apq_operators::select(v, &Predicate::cmp(CmpOp::Lt, 100 - pct))
                .unwrap()
                .len() as f64
                / rows as f64;
            assert!((matched - expected).abs() < 0.03, "{pct}%: {matched} vs {expected}");
        }
        let engine = Engine::with_workers(2);
        let all = engine.execute(&select_sweep::plan(&cat, 0).unwrap(), &cat).unwrap().output;
        let none = engine.execute(&select_sweep::plan(&cat, 100).unwrap(), &cat).unwrap().output;
        match (all, none) {
            (QueryOutput::Scalar(a), QueryOutput::Scalar(n)) => {
                assert!(a.as_i64().unwrap() > 0);
                assert_eq!(n.as_i64().unwrap(), 0);
            }
            other => panic!("unexpected outputs {other:?}"),
        }
    }

    #[test]
    fn join_sweep_produces_one_match_per_outer_row() {
        let cat = join_sweep::catalog(5_000, 256, 7);
        let engine = Engine::with_workers(2);
        let plan = join_sweep::plan(&cat).unwrap();
        let exec = engine.execute(&plan, &cat).unwrap();
        // Every outer key hits exactly one inner row, so the sum equals the
        // sum of all outer payloads.
        let payload = cat.table("outer_t").unwrap().column("payload").unwrap();
        let expected: i64 = payload.i64_values().unwrap().iter().sum();
        assert_eq!(exec.output, QueryOutput::Scalar(ScalarValue::I64(expected)));
    }
}
