//! Synthetic TPC-DS-like data generator (skewed star schema).

use std::sync::Arc;

use apq_columnar::datagen::{pick_strings, prices_decimal2, sequential_i64, uniform_i64, zipf_i64};
use apq_columnar::{Catalog, Table, TableBuilder};

/// Scale factor for the TPC-DS-like schema (`store_sales ≈ 2.88 M × sf`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpcdsScale {
    /// Scale factor.
    pub sf: f64,
}

impl TpcdsScale {
    /// Creates a scale; tiny values are clamped so every table has rows.
    pub fn new(sf: f64) -> Self {
        TpcdsScale { sf: sf.max(1e-4) }
    }

    /// Rows of the `store_sales` fact table.
    pub fn store_sales_rows(&self) -> usize {
        ((2_880_000.0 * self.sf) as usize).max(2_000)
    }

    /// Rows of the `item` dimension.
    pub fn item_rows(&self) -> usize {
        ((18_000.0 * self.sf) as usize).max(100)
    }

    /// Rows of the `date_dim` dimension (5 years of 365 days, fixed).
    pub fn date_rows(&self) -> usize {
        5 * 365
    }

    /// Rows of the `store` dimension.
    pub fn store_rows(&self) -> usize {
        12
    }
}

/// Zipf exponent used for the skewed fact-table foreign keys.
pub const ITEM_SKEW_THETA: f64 = 1.1;
/// Zipf exponent used for the store foreign key.
pub const STORE_SKEW_THETA: f64 = 0.8;

/// Item categories (group-by attribute of several queries).
pub const CATEGORIES: [&str; 10] = [
    "Books",
    "Electronics",
    "Home",
    "Jewelry",
    "Men",
    "Music",
    "Shoes",
    "Sports",
    "Women",
    "Children",
];

/// Store states (filter attribute).
pub const STATES: [&str; 8] = ["TN", "CA", "TX", "WA", "NY", "GA", "OH", "IL"];

fn item(scale: &TpcdsScale, seed: u64) -> Arc<Table> {
    let n = scale.item_rows();
    let brands: Vec<String> = (0..n).map(|i| format!("Brand#{:03}", (i * 7919) % 120)).collect();
    TableBuilder::new("item")
        .i64_column("i_item_sk", sequential_i64(n))
        .str_column("i_brand", brands)
        .str_column("i_category", pick_strings(n, &CATEGORIES, seed ^ 0x71))
        .i64_column("i_manager_id", uniform_i64(n, 0, 100, seed ^ 0x72))
        .build()
        .expect("item columns are equally long")
}

fn date_dim(scale: &TpcdsScale) -> Arc<Table> {
    let n = scale.date_rows();
    // Five years starting 1998-01-01; month lengths are approximated with a
    // fixed 30.44-day month, which is all the evaluated filters need.
    let years: Vec<i64> = (0..n as i64).map(|d| 1998 + d / 365).collect();
    let months: Vec<i64> = (0..n as i64).map(|d| (d % 365) / 31 + 1).collect();
    TableBuilder::new("date_dim")
        .i64_column("d_date_sk", sequential_i64(n))
        .i64_column("d_year", years)
        .i64_column("d_moy", months.iter().map(|&m| m.min(12)).collect())
        .build()
        .expect("date_dim columns are equally long")
}

fn store(scale: &TpcdsScale, seed: u64) -> Arc<Table> {
    let n = scale.store_rows();
    TableBuilder::new("store")
        .i64_column("s_store_sk", sequential_i64(n))
        .str_column("s_state", pick_strings(n, &STATES, seed ^ 0x81))
        .build()
        .expect("store columns are equally long")
}

fn store_sales(scale: &TpcdsScale, seed: u64) -> Arc<Table> {
    let n = scale.store_sales_rows();
    // Fact tables are loaded in date order in practice, so the date foreign
    // key is non-decreasing along the row order. A dimension filter on
    // `date_dim` therefore matches a *contiguous region* of the fact table,
    // which is exactly what creates execution skew under static equi-range
    // partitioning (and what adaptive parallelization balances out).
    let mut sold_dates = uniform_i64(n, 0, scale.date_rows() as i64, seed ^ 0x91);
    sold_dates.sort_unstable();
    TableBuilder::new("store_sales")
        .i64_column("ss_sold_date_sk", sold_dates)
        .i64_column("ss_item_sk", zipf_i64(n, scale.item_rows(), ITEM_SKEW_THETA, seed ^ 0x92))
        .i64_column("ss_store_sk", zipf_i64(n, scale.store_rows(), STORE_SKEW_THETA, seed ^ 0x93))
        .i64_column("ss_quantity", uniform_i64(n, 1, 101, seed ^ 0x94))
        .i64_column("ss_ext_sales_price", prices_decimal2(n, 1.0, 20_000.0, seed ^ 0x95))
        .i64_column("ss_net_profit", prices_decimal2(n, -5_000.0, 10_000.0, seed ^ 0x96))
        .build()
        .expect("store_sales columns are equally long")
}

/// Generates the TPC-DS-like catalog for the given scale factor and seed.
pub fn generate(scale: TpcdsScale, seed: u64) -> Arc<Catalog> {
    let mut catalog = Catalog::new();
    catalog.register(store_sales(&scale, seed));
    catalog.register(item(&scale, seed.wrapping_add(1)));
    catalog.register(date_dim(&scale));
    catalog.register(store(&scale, seed.wrapping_add(2)));
    Arc::new(catalog)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_and_tables() {
        let scale = TpcdsScale::new(0.005);
        let cat = generate(scale, 5);
        for t in ["store_sales", "item", "date_dim", "store"] {
            assert!(cat.has_table(t), "missing {t}");
        }
        assert_eq!(cat.table("store_sales").unwrap().row_count(), scale.store_sales_rows());
        assert_eq!(cat.largest_table().unwrap().0, "store_sales");
        assert_eq!(cat.table("store").unwrap().row_count(), 12);
        assert!(TpcdsScale::new(0.0).store_sales_rows() >= 2_000);
    }

    #[test]
    fn fact_foreign_keys_are_valid_and_skewed() {
        let scale = TpcdsScale::new(0.005);
        let cat = generate(scale, 5);
        let items = cat.table("item").unwrap().row_count() as i64;
        let fact = cat.table("store_sales").unwrap();
        let fk = fact.column("ss_item_sk").unwrap().i64_values().unwrap();
        assert!(fk.iter().all(|&v| v >= 0 && v < items));
        // Skew: the most popular item is referenced far more often than an
        // item from the middle of the domain.
        let popular = fk.iter().filter(|&&v| v == 0).count();
        let median_item = items / 2;
        let unpopular = fk.iter().filter(|&&v| v == median_item).count();
        assert!(popular > unpopular * 5 + 5, "popular {popular} vs unpopular {unpopular}");

        let dates = cat.table("date_dim").unwrap().row_count() as i64;
        let dk = fact.column("ss_sold_date_sk").unwrap().i64_values().unwrap();
        assert!(dk.iter().all(|&v| v >= 0 && v < dates));
    }

    #[test]
    fn date_dim_covers_five_years() {
        let cat = generate(TpcdsScale::new(0.001), 1);
        let years = cat.table("date_dim").unwrap().column("d_year").unwrap();
        let values = years.i64_values().unwrap();
        assert_eq!(*values.first().unwrap(), 1998);
        assert_eq!(*values.last().unwrap(), 2002);
        let moy = cat.table("date_dim").unwrap().column("d_moy").unwrap();
        assert!(moy.i64_values().unwrap().iter().all(|&m| (1..=12).contains(&m)));
    }

    #[test]
    fn determinism() {
        let a = generate(TpcdsScale::new(0.002), 3);
        let b = generate(TpcdsScale::new(0.002), 3);
        assert_eq!(
            a.table("store_sales").unwrap().column("ss_quantity").unwrap().i64_values().unwrap(),
            b.table("store_sales").unwrap().column("ss_quantity").unwrap().i64_values().unwrap()
        );
    }
}
