//! TPC-DS-like workload: a skewed star schema and five report-style queries.
//!
//! Paper §4.2.2 evaluates "a few modified queries ... a subset of the
//! original TPC-DS queries ... chosen such that they contain the large tables
//! and a few smaller dimension tables" on a skewed 100 GB dataset, and
//! attributes the adaptive plans' up-to-5× advantage to "correct partitioning
//! by adaptive parallelization ... and the skewed data distribution".
//!
//! The official dsdgen tool is unavailable offline, so [`datagen`] produces a
//! scaled star schema (`store_sales` fact table plus `item`, `date_dim`,
//! `store` dimensions) whose fact-side foreign keys follow Zipf distributions
//! — popular items/stores dominate — which is what creates the per-partition
//! execution skew the experiment depends on.

pub mod datagen;
pub mod queries;

pub use datagen::{generate, TpcdsScale};
pub use queries::TpcdsQuery;
