//! Serial plans for the five TPC-DS-like report queries.
//!
//! All five follow the star-join shape of the original TPC-DS reporting
//! queries (Q3 / Q7 / Q42 / Q52 / Q55): filter one or two dimensions, join
//! the large `store_sales` fact table against them, and aggregate a measure
//! per brand or category. The skewed `ss_item_sk` / `ss_store_sk` foreign
//! keys make the per-partition work highly non-uniform, which is the property
//! the paper's TPC-DS experiment (Fig. 17) exercises.

use apq_columnar::Catalog;
use apq_engine::plan::{JoinSide, Plan};
use apq_engine::Result;
use apq_operators::{AggFunc, CmpOp, Predicate};

use crate::builder::PlanBuilder;

/// The five evaluated TPC-DS-like queries (numbered 1..5 as in paper Fig. 17).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpcdsQuery {
    /// Books revenue by brand in 2000 (TPC-DS Q3 shape).
    Q1,
    /// Average quantity by category for Tennessee / California stores (Q7 shape).
    Q2,
    /// Revenue by category in November 2001 (Q42 shape).
    Q3,
    /// Revenue by brand in December 2000 (Q52 shape).
    Q4,
    /// Revenue by brand for low-manager-id items in December (Q55 shape).
    Q5,
}

impl TpcdsQuery {
    /// All five queries in paper order.
    pub fn all() -> [TpcdsQuery; 5] {
        [TpcdsQuery::Q1, TpcdsQuery::Q2, TpcdsQuery::Q3, TpcdsQuery::Q4, TpcdsQuery::Q5]
    }

    /// Position (1-based) on the x-axis of paper Fig. 17.
    pub fn number(&self) -> u32 {
        match self {
            TpcdsQuery::Q1 => 1,
            TpcdsQuery::Q2 => 2,
            TpcdsQuery::Q3 => 3,
            TpcdsQuery::Q4 => 4,
            TpcdsQuery::Q5 => 5,
        }
    }

    /// Builds the serial plan for this query over `catalog`.
    pub fn build(&self, catalog: &Catalog) -> Result<Plan> {
        match self {
            TpcdsQuery::Q1 => ds_q1(catalog),
            TpcdsQuery::Q2 => ds_q2(catalog),
            TpcdsQuery::Q3 => ds_q3(catalog),
            TpcdsQuery::Q4 => ds_q4(catalog),
            TpcdsQuery::Q5 => ds_q5(catalog),
        }
    }
}

impl std::fmt::Display for TpcdsQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DS-{}", self.number())
    }
}

/// Shared skeleton: filter `item` and `date_dim`, join the fact table against
/// both, and sum `ss_ext_sales_price` per item attribute.
fn item_date_star(
    catalog: &Catalog,
    item_filter: Option<(&str, Predicate)>,
    date_filter: Vec<Predicate>,
    group_column: &str,
    measure: &str,
    func: AggFunc,
) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);

    // Filtered item side.
    let i_item_sk = b.scan("item", "i_item_sk")?;
    let group_col = b.scan("item", group_column)?;
    let (item_keys, group_f) = match item_filter {
        Some((filter_column, pred)) => {
            let target = b.scan("item", filter_column)?;
            let selected = b.select(target, pred);
            let keys = b.fetch(selected, i_item_sk);
            let group = b.fetch(selected, group_col);
            (keys, group)
        }
        None => (i_item_sk, group_col),
    };
    let item_hash = b.hash_build(item_keys);

    // Filtered date side.
    let d_date_sk = b.scan("date_dim", "d_date_sk")?;
    let date_keys = if date_filter.is_empty() {
        d_date_sk
    } else {
        let year_col = b.scan("date_dim", "d_year")?;
        let moy_col = b.scan("date_dim", "d_moy")?;
        let mut selected = None;
        for (i, pred) in date_filter.into_iter().enumerate() {
            let column = if i == 0 { year_col } else { moy_col };
            selected = Some(match selected {
                None => b.select(column, pred),
                Some(prev) => b.select_with(column, prev, pred),
            });
        }
        let selected = selected.expect("at least one date predicate");
        b.fetch(selected, d_date_sk)
    };
    let date_hash = b.hash_build(date_keys);

    // Fact pipeline.
    let ss_item = b.scan("store_sales", "ss_item_sk")?;
    let join_item = b.probe(ss_item, item_hash);
    let fact_side = b.join_side(join_item, JoinSide::Outer);
    let item_side = b.join_side(join_item, JoinSide::Inner);

    let ss_date = b.scan("store_sales", "ss_sold_date_sk")?;
    let fact_dates = b.fetch(fact_side, ss_date);
    let join_date = b.probe(fact_dates, date_hash);
    let fact2_side = b.join_side(join_date, JoinSide::Outer);

    let measure_col = b.scan("store_sales", measure)?;
    let measure_f = b.fetch(fact_side, measure_col);
    let measure_j = b.fetch(fact2_side, measure_f);

    let group_j1 = b.fetch(item_side, group_f);
    let group_j2 = b.fetch(fact2_side, group_j1);

    let grouped = b.group_agg(func, group_j2, measure_j);
    b.finish(grouped)
}

/// DS-1 (Q3 shape): revenue of `Books` items per brand in the year 2000.
pub fn ds_q1(catalog: &Catalog) -> Result<Plan> {
    item_date_star(
        catalog,
        Some(("i_category", Predicate::cmp(CmpOp::Eq, "Books"))),
        vec![Predicate::cmp(CmpOp::Eq, 2000i64)],
        "i_brand",
        "ss_ext_sales_price",
        AggFunc::Sum,
    )
}

/// DS-2 (Q7 shape): average quantity per item category for stores in
/// Tennessee or California.
pub fn ds_q2(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    // Filtered store side.
    let s_state = b.scan("store", "s_state")?;
    let tn_ca = b.select(s_state, Predicate::InStr(vec!["TN".to_string(), "CA".to_string()]));
    let s_store_sk = b.scan("store", "s_store_sk")?;
    let store_keys = b.fetch(tn_ca, s_store_sk);
    let store_hash = b.hash_build(store_keys);

    // Unfiltered item side (provides the grouping attribute).
    let i_item_sk = b.scan("item", "i_item_sk")?;
    let item_hash = b.hash_build(i_item_sk);
    let i_category = b.scan("item", "i_category")?;

    // Fact pipeline: restrict to the selected stores, then join items.
    let ss_store = b.scan("store_sales", "ss_store_sk")?;
    let join_store = b.probe(ss_store, store_hash);
    let fact_side = b.join_side(join_store, JoinSide::Outer);

    let ss_item = b.scan("store_sales", "ss_item_sk")?;
    let fact_items = b.fetch(fact_side, ss_item);
    let join_item = b.probe(fact_items, item_hash);
    let fact2_side = b.join_side(join_item, JoinSide::Outer);
    let item_side = b.join_side(join_item, JoinSide::Inner);

    let quantity = b.scan("store_sales", "ss_quantity")?;
    let qty_f = b.fetch(fact_side, quantity);
    let qty_j = b.fetch(fact2_side, qty_f);
    let category_j = b.fetch(item_side, i_category);

    let grouped = b.group_agg(AggFunc::Avg, category_j, qty_j);
    b.finish(grouped)
}

/// DS-3 (Q42 shape): revenue per category in November 2001.
pub fn ds_q3(catalog: &Catalog) -> Result<Plan> {
    item_date_star(
        catalog,
        None,
        vec![Predicate::cmp(CmpOp::Eq, 2001i64), Predicate::cmp(CmpOp::Eq, 11i64)],
        "i_category",
        "ss_ext_sales_price",
        AggFunc::Sum,
    )
}

/// DS-4 (Q52 shape): revenue per brand in December 2000.
pub fn ds_q4(catalog: &Catalog) -> Result<Plan> {
    item_date_star(
        catalog,
        None,
        vec![Predicate::cmp(CmpOp::Eq, 2000i64), Predicate::cmp(CmpOp::Eq, 12i64)],
        "i_brand",
        "ss_ext_sales_price",
        AggFunc::Sum,
    )
}

/// DS-5 (Q55 shape): revenue per brand of items managed by managers 0..39,
/// for December sales of any year.
pub fn ds_q5(catalog: &Catalog) -> Result<Plan> {
    item_date_star(
        catalog,
        Some(("i_manager_id", Predicate::cmp(CmpOp::Lt, 40i64))),
        vec![Predicate::cmp(CmpOp::Ge, 1998i64), Predicate::cmp(CmpOp::Eq, 12i64)],
        "i_brand",
        "ss_ext_sales_price",
        AggFunc::Sum,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpcds::datagen::{generate, TpcdsScale};
    use apq_engine::{Engine, QueryOutput};

    #[test]
    fn metadata() {
        assert_eq!(TpcdsQuery::all().len(), 5);
        assert_eq!(TpcdsQuery::Q3.number(), 3);
        assert_eq!(TpcdsQuery::Q5.to_string(), "DS-5");
    }

    #[test]
    fn all_queries_build_and_execute() {
        let cat = generate(TpcdsScale::new(0.002), 31);
        let engine = Engine::with_workers(3);
        for query in TpcdsQuery::all() {
            let plan = query.build(&cat).unwrap_or_else(|e| panic!("{query} failed to build: {e}"));
            plan.validate().unwrap();
            let exec = engine
                .execute(&plan, &cat)
                .unwrap_or_else(|e| panic!("{query} failed to execute: {e}"));
            match exec.output {
                QueryOutput::Groups(groups) => {
                    assert!(!groups.is_empty(), "{query} produced no groups")
                }
                other => panic!("{query} produced unexpected output {other:?}"),
            }
        }
    }

    #[test]
    fn category_query_groups_within_domain() {
        let cat = generate(TpcdsScale::new(0.002), 7);
        let engine = Engine::with_workers(2);
        let out = engine.execute(&ds_q3(&cat).unwrap(), &cat).unwrap().output;
        match out {
            QueryOutput::Groups(groups) => {
                assert!(groups.len() <= super::super::datagen::CATEGORIES.len());
                for (key, value) in groups {
                    assert!(matches!(key, apq_operators::GroupKey::Str(_)));
                    assert!(value.as_i64().unwrap() > 0);
                }
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn average_query_produces_sane_quantities() {
        let cat = generate(TpcdsScale::new(0.002), 9);
        let engine = Engine::with_workers(2);
        let out = engine.execute(&ds_q2(&cat).unwrap(), &cat).unwrap().output;
        match out {
            QueryOutput::Groups(groups) => {
                for (_, avg) in groups {
                    let v = avg.as_f64().unwrap();
                    assert!((1.0..=100.0).contains(&v), "average quantity {v} out of range");
                }
            }
            other => panic!("unexpected output {other:?}"),
        }
    }
}
