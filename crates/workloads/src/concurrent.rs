//! Concurrent workload driver.
//!
//! The paper's concurrent experiments (Fig. 1, Fig. 16, §4.2.3) run "a heavy
//! concurrent CPU bound workload, which ensures 0 % CPU core idleness", with
//! "32 clients invok\[ing\] queries repeatedly", and measure the response time
//! of a query of interest while that background load is active. This module
//! provides exactly that harness:
//!
//! * [`BackgroundLoad`] — `n_clients` threads repeatedly executing random
//!   plans from a pool against the shared engine until stopped;
//! * [`measure_under_load`] — executes a measurement plan a number of times
//!   while the load is running and reports mean / min / max response times
//!   plus the mean queue-wait share (how much of the measured query's
//!   in-system time was spent waiting behind the background load — the
//!   scheduler-interference signal, distinguishable from "the operators were
//!   slow").
//!
//! Worker-level contention counters (local hits / steals / queue wait per
//! worker) are available from [`apq_engine::Engine::scheduler_stats`]; the
//! fig. 19 utilization experiment reports them per policy.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use apq_columnar::Catalog;
use apq_engine::{Engine, Plan, Result};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Handle to a running background workload.
pub struct BackgroundLoad {
    stop: Arc<AtomicBool>,
    executed: Arc<AtomicUsize>,
    handles: Vec<JoinHandle<()>>,
}

impl BackgroundLoad {
    /// Starts `n_clients` client threads, each repeatedly executing a random
    /// plan from `plans` on `engine` until [`BackgroundLoad::stop`] is called.
    ///
    /// Execution errors in background clients are ignored (they would only
    /// stem from plan/catalog mismatches, which the tests rule out); the
    /// purpose of the load is purely to occupy the worker pool.
    pub fn start(
        engine: Arc<Engine>,
        catalog: Arc<Catalog>,
        plans: Vec<Plan>,
        n_clients: usize,
        seed: u64,
    ) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let executed = Arc::new(AtomicUsize::new(0));
        // Plans are shared once and executed via `execute_shared`, so the
        // per-execution deep plan clone of the seed engine is gone from this
        // hot loop.
        let plans: Arc<Vec<Arc<Plan>>> = Arc::new(plans.into_iter().map(Arc::new).collect());
        let mut handles = Vec::with_capacity(n_clients);
        for client in 0..n_clients {
            let engine = Arc::clone(&engine);
            let catalog = Arc::clone(&catalog);
            let plans = Arc::clone(&plans);
            let stop = Arc::clone(&stop);
            let executed = Arc::clone(&executed);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("apq-client-{client}"))
                    .spawn(move || {
                        let mut rng = StdRng::seed_from_u64(seed.wrapping_add(client as u64));
                        while !stop.load(Ordering::Acquire) {
                            if plans.is_empty() {
                                break;
                            }
                            let plan = &plans[rng.gen_range(0..plans.len())];
                            if engine.execute_shared(plan, &catalog).is_ok() {
                                executed.fetch_add(1, Ordering::AcqRel);
                            }
                        }
                    })
                    .expect("failed to spawn client thread"),
            );
        }
        BackgroundLoad { stop, executed, handles }
    }

    /// Number of background queries completed so far.
    pub fn executed_queries(&self) -> usize {
        self.executed.load(Ordering::Acquire)
    }

    /// Number of client threads.
    pub fn clients(&self) -> usize {
        self.handles.len()
    }

    /// Stops the clients and waits for them to finish; returns the total
    /// number of background queries that completed.
    pub fn stop(mut self) -> usize {
        self.stop.store(true, Ordering::Release);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        self.executed.load(Ordering::Acquire)
    }
}

impl Drop for BackgroundLoad {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Response-time statistics of a query measured under load.
#[derive(Debug, Clone, PartialEq)]
pub struct ConcurrentMeasurement {
    /// Number of measured executions.
    pub repetitions: usize,
    /// Mean response time.
    pub mean: Duration,
    /// Fastest response.
    pub min: Duration,
    /// Slowest response.
    pub max: Duration,
    /// Mean total queue wait of the measured query's operators per
    /// execution, microseconds: time ready operators sat behind the
    /// background load before a worker picked them up.
    pub mean_queue_wait_us: f64,
    /// Mean queue-wait share per execution (`0.0` idle .. `1.0` pure wait);
    /// see [`apq_engine::QueryProfile::queue_wait_share`].
    pub mean_queue_wait_share: f64,
}

impl ConcurrentMeasurement {
    /// Mean response time in milliseconds.
    pub fn mean_ms(&self) -> f64 {
        self.mean.as_secs_f64() * 1_000.0
    }
}

/// Executes `plan` `repetitions` times on `engine` (while any background load
/// keeps running) and reports its response-time and queue-wait statistics.
pub fn measure_under_load(
    engine: &Engine,
    catalog: &Arc<Catalog>,
    plan: &Plan,
    repetitions: usize,
) -> Result<ConcurrentMeasurement> {
    let repetitions = repetitions.max(1);
    let plan = Arc::new(plan.clone());
    let mut total = Duration::ZERO;
    let mut min = Duration::MAX;
    let mut max = Duration::ZERO;
    let mut total_wait_us = 0u64;
    let mut total_wait_share = 0.0f64;
    for _ in 0..repetitions {
        let start = Instant::now();
        let exec = engine.execute_shared(&plan, catalog)?;
        let elapsed = start.elapsed();
        total += elapsed;
        min = min.min(elapsed);
        max = max.max(elapsed);
        total_wait_us += exec.profile.total_queue_wait_us();
        total_wait_share += exec.profile.queue_wait_share();
    }
    Ok(ConcurrentMeasurement {
        repetitions,
        mean: total / repetitions as u32,
        min,
        max,
        mean_queue_wait_us: total_wait_us as f64 / repetitions as f64,
        mean_queue_wait_share: total_wait_share / repetitions as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::micro::select_sweep;

    #[test]
    fn background_load_executes_queries_and_stops() {
        let cat = select_sweep::catalog(5_000, 3);
        let engine = Arc::new(Engine::with_workers(2));
        let plans =
            vec![select_sweep::plan(&cat, 10).unwrap(), select_sweep::plan(&cat, 50).unwrap()];
        let load = BackgroundLoad::start(Arc::clone(&engine), Arc::clone(&cat), plans, 3, 42);
        assert_eq!(load.clients(), 3);
        // Give the clients a moment to run.
        std::thread::sleep(Duration::from_millis(50));
        let seen = load.executed_queries();
        let total = load.stop();
        assert!(total >= seen);
        assert!(total > 0, "background clients executed no queries");
    }

    #[test]
    fn measurement_reports_consistent_statistics() {
        let cat = select_sweep::catalog(5_000, 3);
        let engine = Engine::with_workers(2);
        let plan = select_sweep::plan(&cat, 25).unwrap();
        let m = measure_under_load(&engine, &cat, &plan, 5).unwrap();
        assert_eq!(m.repetitions, 5);
        assert!(m.min <= m.mean && m.mean <= m.max);
        assert!(m.mean_ms() > 0.0);
        assert!((0.0..=1.0).contains(&m.mean_queue_wait_share));
        assert!(m.mean_queue_wait_us >= 0.0);
        // Zero repetitions are clamped to one.
        let m1 = measure_under_load(&engine, &cat, &plan, 0).unwrap();
        assert_eq!(m1.repetitions, 1);
    }

    #[test]
    fn load_with_empty_plan_pool_terminates() {
        let cat = select_sweep::catalog(1_000, 1);
        let engine = Arc::new(Engine::with_workers(1));
        let load = BackgroundLoad::start(engine, cat, Vec::new(), 2, 1);
        std::thread::sleep(Duration::from_millis(10));
        assert_eq!(load.stop(), 0);
    }

    #[test]
    fn measurement_under_active_load_still_succeeds() {
        let cat = select_sweep::catalog(8_000, 9);
        let engine = Arc::new(Engine::with_workers(2));
        let background = vec![select_sweep::plan(&cat, 40).unwrap()];
        let load = BackgroundLoad::start(Arc::clone(&engine), Arc::clone(&cat), background, 4, 7);
        let plan = select_sweep::plan(&cat, 20).unwrap();
        let m = measure_under_load(&engine, &cat, &plan, 3).unwrap();
        assert!(m.mean > Duration::ZERO);
        // With 4 background clients on a 2-worker engine, the measured query
        // must have spent *some* time queued behind the load.
        assert!(
            m.mean_queue_wait_us > 0.0,
            "no queue wait recorded under active background load: {m:?}"
        );
        load.stop();
        // The engine's scheduler saw the combined traffic.
        let stats = engine.scheduler_stats();
        assert!(stats.total_executed() > 0);
        assert!(stats.total_queue_wait_us() > 0);
    }
}
