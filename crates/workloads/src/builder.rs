//! A small fluent helper for constructing serial plans against a catalog.
//!
//! The paper assumes "an optimal input serial plan" produced by the SQL
//! compiler; this builder plays that role for the hand-written query plans of
//! the workload crates, keeping them short and uniform.

use apq_columnar::partition::RowRange;
use apq_columnar::{Catalog, ScalarValue};
use apq_engine::plan::{JoinSide, NodeId, OperatorSpec, Plan};
use apq_engine::Result;
use apq_operators::{AggFunc, BinaryOp, Predicate};

/// Incrementally builds a serial [`Plan`] over a catalog.
#[derive(Debug)]
pub struct PlanBuilder<'a> {
    catalog: &'a Catalog,
    plan: Plan,
}

impl<'a> PlanBuilder<'a> {
    /// Starts a builder over `catalog`.
    pub fn new(catalog: &'a Catalog) -> Self {
        PlanBuilder { catalog, plan: Plan::new() }
    }

    /// Adds an arbitrary node.
    pub fn add(&mut self, spec: OperatorSpec, inputs: Vec<NodeId>) -> NodeId {
        self.plan.add(spec, inputs)
    }

    /// Full-range scan of a base-table column.
    pub fn scan(&mut self, table: &str, column: &str) -> Result<NodeId> {
        let rows = self.catalog.table(table)?.row_count();
        Ok(self.plan.add(
            OperatorSpec::ScanColumn {
                table: table.to_string(),
                column: column.to_string(),
                range: RowRange::new(0, rows),
            },
            vec![],
        ))
    }

    /// Predicate selection over a column.
    pub fn select(&mut self, column: NodeId, predicate: Predicate) -> NodeId {
        self.plan.add(OperatorSpec::Select { predicate }, vec![column])
    }

    /// Predicate selection refining a previous candidate list.
    pub fn select_with(
        &mut self,
        column: NodeId,
        candidates: NodeId,
        predicate: Predicate,
    ) -> NodeId {
        self.plan.add(OperatorSpec::Select { predicate }, vec![column, candidates])
    }

    /// Predicate evaluated as a boolean mask column.
    pub fn mask(&mut self, column: NodeId, predicate: Predicate) -> NodeId {
        self.plan.add(OperatorSpec::PredMask { predicate }, vec![column])
    }

    /// `cond ? then : otherwise`.
    pub fn if_then_else(
        &mut self,
        cond: NodeId,
        then: NodeId,
        otherwise: impl Into<ScalarValue>,
    ) -> NodeId {
        self.plan.add(OperatorSpec::IfThenElse { otherwise: otherwise.into() }, vec![cond, then])
    }

    /// Tuple reconstruction (values of `column` at `oids`).
    pub fn fetch(&mut self, oids: NodeId, column: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::Fetch, vec![oids, column])
    }

    /// Hash-table build over a key column.
    pub fn hash_build(&mut self, keys: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::HashBuild, vec![keys])
    }

    /// Hash-join probe.
    pub fn probe(&mut self, outer_keys: NodeId, hash: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::HashProbe, vec![outer_keys, hash])
    }

    /// Semi-join (EXISTS).
    pub fn semi_join(&mut self, outer_keys: NodeId, hash: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::SemiJoin, vec![outer_keys, hash])
    }

    /// Anti-join (NOT EXISTS).
    pub fn anti_join(&mut self, outer_keys: NodeId, hash: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::AntiJoin, vec![outer_keys, hash])
    }

    /// Projects one side of a join result as oids.
    pub fn join_side(&mut self, join: NodeId, side: JoinSide) -> NodeId {
        self.plan.add(OperatorSpec::ProjectJoinSide { side }, vec![join])
    }

    /// Interprets an integer column as an oid list.
    pub fn as_oids(&mut self, column: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::OidsFromColumn, vec![column])
    }

    /// Element-wise `left <op> right`.
    pub fn calc(&mut self, op: BinaryOp, left: NodeId, right: NodeId) -> NodeId {
        self.plan.add(
            OperatorSpec::Calc { op, left_scalar: None, right_scalar: None },
            vec![left, right],
        )
    }

    /// Element-wise `column <op> scalar`.
    pub fn calc_scalar(
        &mut self,
        op: BinaryOp,
        column: NodeId,
        scalar: impl Into<ScalarValue>,
    ) -> NodeId {
        self.plan.add(
            OperatorSpec::Calc { op, left_scalar: None, right_scalar: Some(scalar.into()) },
            vec![column],
        )
    }

    /// Element-wise `scalar <op> column`.
    pub fn scalar_calc(
        &mut self,
        op: BinaryOp,
        scalar: impl Into<ScalarValue>,
        column: NodeId,
    ) -> NodeId {
        self.plan.add(
            OperatorSpec::Calc { op, left_scalar: Some(scalar.into()), right_scalar: None },
            vec![column],
        )
    }

    /// The TPC revenue expression `price × (100 − discount) / 100` over
    /// fixed-point(2) prices and integer-percent discounts.
    pub fn revenue(&mut self, price: NodeId, discount_percent: NodeId) -> NodeId {
        let one_minus = self.scalar_calc(BinaryOp::Sub, 100i64, discount_percent);
        let raw = self.calc(BinaryOp::Mul, price, one_minus);
        self.calc_scalar(BinaryOp::Div, raw, 100i64)
    }

    /// Scalar aggregate followed by its finalizer; returns the finalizer node.
    pub fn scalar_agg(&mut self, func: AggFunc, values: NodeId) -> NodeId {
        let partial = self.plan.add(OperatorSpec::ScalarAgg { func }, vec![values]);
        self.plan.add(OperatorSpec::FinalizeAgg { func }, vec![partial])
    }

    /// Single-attribute grouped aggregate followed by its merger; returns the
    /// merger node.
    pub fn group_agg(&mut self, func: AggFunc, keys: NodeId, values: NodeId) -> NodeId {
        let partial = self.plan.add(OperatorSpec::GroupAgg { func }, vec![keys, values]);
        self.plan.add(OperatorSpec::MergeGrouped, vec![partial])
    }

    /// Arithmetic between two scalar results.
    pub fn calc_scalars(&mut self, op: BinaryOp, left: NodeId, right: NodeId) -> NodeId {
        self.plan.add(OperatorSpec::CalcScalars { op }, vec![left, right])
    }

    /// Finalizes the plan with `root` as its result node.
    pub fn finish(mut self, root: NodeId) -> Result<Plan> {
        self.plan.set_root(root);
        self.plan.validate()?;
        Ok(self.plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::TableBuilder;
    use apq_engine::{Engine, QueryOutput};
    use apq_operators::CmpOp;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("t")
                .i64_column("k", (0..1000).map(|v| v % 10).collect())
                .i64_column("v", (0..1000).collect())
                .i64_column("price", (0..1000).map(|v| v * 100).collect())
                .i64_column("disc", (0..1000).map(|v| v % 10).collect())
                .build()
                .unwrap(),
        );
        c
    }

    #[test]
    fn builds_a_runnable_filter_aggregate_plan() {
        let cat = catalog();
        let mut b = PlanBuilder::new(&cat);
        let k = b.scan("t", "k").unwrap();
        let sel = b.select(k, Predicate::cmp(CmpOp::Eq, 3i64));
        let v = b.scan("t", "v").unwrap();
        let vals = b.fetch(sel, v);
        let total = b.scalar_agg(AggFunc::Count, vals);
        let plan = b.finish(total).unwrap();
        let engine = Engine::with_workers(2);
        let out = engine.execute(&plan, &Arc::new(cat)).unwrap().output;
        assert_eq!(out, QueryOutput::Scalar(ScalarValue::I64(100)));
    }

    #[test]
    fn revenue_expression_and_grouping() {
        let cat = catalog();
        let mut b = PlanBuilder::new(&cat);
        let price = b.scan("t", "price").unwrap();
        let disc = b.scan("t", "disc").unwrap();
        let rev = b.revenue(price, disc);
        let k = b.scan("t", "k").unwrap();
        let grouped = b.group_agg(AggFunc::Sum, k, rev);
        let plan = b.finish(grouped).unwrap();
        let engine = Engine::with_workers(2);
        let out = engine.execute(&plan, &Arc::new(cat)).unwrap().output;
        match out {
            QueryOutput::Groups(g) => assert_eq!(g.len(), 10),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn unknown_table_is_an_error() {
        let cat = catalog();
        let mut b = PlanBuilder::new(&cat);
        assert!(b.scan("missing", "x").is_err());
    }
}
