//! Calendar helpers: dates are stored as `i32` days since 1970-01-01.

/// Days since 1970-01-01 for a proleptic Gregorian calendar date.
///
/// Uses the standard civil-from-days algorithm (Howard Hinnant); valid for
/// the whole TPC date range.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i32 {
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((month + 9) % 12) as i64; // March = 0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146_097 + doe - 719_468) as i32
}

/// Civil date `(year, month, day)` for a days-since-epoch value.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    ((y + i64::from(m <= 2)) as i32, m, d)
}

/// The year of a days-since-epoch value.
pub fn year_of(days: i32) -> i32 {
    civil_from_days(days).0
}

/// Adds (approximately) `months` months to a date expressed in days.
pub fn add_months(days: i32, months: i32) -> i32 {
    let (y, m, d) = civil_from_days(days);
    let total = y * 12 + (m as i32 - 1) + months;
    let ny = total.div_euclid(12);
    let nm = total.rem_euclid(12) as u32 + 1;
    let nd = d.min(28); // clamp to keep the date valid in every month
    days_from_civil(ny, nm, nd)
}

/// First day of the TPC-H date range (1992-01-01).
pub const TPCH_DATE_MIN: i32 = 8035;
/// One past the last shipping date of the TPC-H date range (1998-12-31).
pub const TPCH_DATE_MAX: i32 = 10_592;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_and_known_dates() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1992, 1, 1), 8035);
        assert_eq!(days_from_civil(1998, 12, 31), 10_591);
        assert_eq!(days_from_civil(1995, 9, 1), 9374);
        assert_eq!(TPCH_DATE_MIN, days_from_civil(1992, 1, 1));
        assert_eq!(TPCH_DATE_MAX, days_from_civil(1998, 12, 31) + 1);
    }

    #[test]
    fn civil_round_trip() {
        for days in [-1000, 0, 1, 8035, 9374, 10_591, 20_000] {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "roundtrip for {days}");
            assert!((1..=12).contains(&m));
            assert!((1..=31).contains(&d));
        }
    }

    #[test]
    fn year_extraction_and_month_arithmetic() {
        assert_eq!(year_of(days_from_civil(1994, 6, 15)), 1994);
        let d = days_from_civil(1995, 11, 20);
        assert_eq!(civil_from_days(add_months(d, 1)).1, 12);
        assert_eq!(civil_from_days(add_months(d, 2)).0, 1996);
        assert_eq!(civil_from_days(add_months(d, -11)).1, 12);
        // Clamping keeps the day valid.
        let jan31 = days_from_civil(1996, 1, 31);
        let (_, m, day) = civil_from_days(add_months(jan31, 1));
        assert_eq!(m, 2);
        assert!(day <= 28);
    }
}
