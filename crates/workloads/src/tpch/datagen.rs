//! Synthetic TPC-H-like data generator.

use std::sync::Arc;

use apq_columnar::datagen::{
    fk_uniform, pick_strings, prices_decimal2, rng, sequential_i64, uniform_i64,
};
use apq_columnar::{Catalog, Column, Table, TableBuilder};
use rand::Rng;

use crate::dates::{days_from_civil, TPCH_DATE_MIN};

/// Scale factor: row counts are linear in `sf` like in TPC-H
/// (`lineitem ≈ 6 M × sf`). `sf = 1.0` is the canonical 1 GB database.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TpchScale {
    /// The TPC-H scale factor.
    pub sf: f64,
}

impl TpchScale {
    /// Creates a scale; values below `1e-4` are clamped so every table has rows.
    pub fn new(sf: f64) -> Self {
        TpchScale { sf: sf.max(1e-4) }
    }

    fn scaled(&self, base: f64, minimum: usize) -> usize {
        ((base * self.sf) as usize).max(minimum)
    }

    /// Rows of `lineitem`.
    pub fn lineitem_rows(&self) -> usize {
        self.scaled(6_000_000.0, 1_000)
    }

    /// Rows of `orders`.
    pub fn orders_rows(&self) -> usize {
        self.scaled(1_500_000.0, 250)
    }

    /// Rows of `part`.
    pub fn part_rows(&self) -> usize {
        self.scaled(200_000.0, 100)
    }

    /// Rows of `customer`.
    pub fn customer_rows(&self) -> usize {
        self.scaled(150_000.0, 100)
    }

    /// Rows of `supplier`.
    pub fn supplier_rows(&self) -> usize {
        self.scaled(10_000.0, 25)
    }

    /// Rows of `nation` (fixed).
    pub fn nation_rows(&self) -> usize {
        25
    }
}

/// TPC-H string domains used by the evaluated predicates.
pub mod domains {
    /// First `p_type` word (Q14 filters on the `PROMO` prefix).
    pub const TYPE_SYLLABLE_1: [&str; 6] =
        ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
    /// Second `p_type` word.
    pub const TYPE_SYLLABLE_2: [&str; 5] =
        ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
    /// Third `p_type` word.
    pub const TYPE_SYLLABLE_3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
    /// Ship modes (Q19 filters on AIR / AIR REG).
    pub const SHIP_MODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
    /// Ship instructions (Q19 filters on DELIVER IN PERSON).
    pub const SHIP_INSTRUCTS: [&str; 4] =
        ["DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"];
    /// Order priorities (Q4 groups by this attribute).
    pub const ORDER_PRIORITIES: [&str; 5] =
        ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"];
    /// Customer country codes (Q22 filters on a subset).
    pub const COUNTRY_CODES: [&str; 10] =
        ["10", "11", "13", "17", "18", "21", "23", "29", "30", "31"];
    /// Nation names (Q9 groups by nation).
    pub const NATIONS: [&str; 25] = [
        "ALGERIA",
        "ARGENTINA",
        "BRAZIL",
        "CANADA",
        "EGYPT",
        "ETHIOPIA",
        "FRANCE",
        "GERMANY",
        "INDIA",
        "INDONESIA",
        "IRAN",
        "IRAQ",
        "JAPAN",
        "JORDAN",
        "KENYA",
        "MOROCCO",
        "MOZAMBIQUE",
        "PERU",
        "CHINA",
        "ROMANIA",
        "SAUDI ARABIA",
        "VIETNAM",
        "RUSSIA",
        "UNITED KINGDOM",
        "UNITED STATES",
    ];
}

fn p_types(n: usize, seed: u64) -> Vec<String> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            format!(
                "{} {} {}",
                domains::TYPE_SYLLABLE_1[r.gen_range(0..domains::TYPE_SYLLABLE_1.len())],
                domains::TYPE_SYLLABLE_2[r.gen_range(0..domains::TYPE_SYLLABLE_2.len())],
                domains::TYPE_SYLLABLE_3[r.gen_range(0..domains::TYPE_SYLLABLE_3.len())],
            )
        })
        .collect()
}

fn p_brands(n: usize, seed: u64) -> Vec<String> {
    let mut r = rng(seed);
    (0..n).map(|_| format!("Brand#{}{}", r.gen_range(1..6), r.gen_range(1..6))).collect()
}

fn lineitem(scale: &TpchScale, seed: u64) -> Arc<Table> {
    let n = scale.lineitem_rows();
    let orders = scale.orders_rows();
    let parts = scale.part_rows();
    let suppliers = scale.supplier_rows();
    let ship_min = TPCH_DATE_MIN;
    let ship_max = days_from_civil(1998, 12, 1);

    let shipdate = apq_columnar::datagen::dates(n, ship_min, ship_max, seed);
    let mut r = rng(seed ^ 0x11);
    let commitdate: Vec<i32> = shipdate.iter().map(|&d| d + r.gen_range(-30..45)).collect();
    let receiptdate: Vec<i32> = shipdate.iter().map(|&d| d + r.gen_range(1..30)).collect();

    TableBuilder::new("lineitem")
        .i64_column("l_orderkey", fk_uniform(n, orders, seed ^ 0x21))
        .i64_column("l_partkey", fk_uniform(n, parts, seed ^ 0x22))
        .i64_column("l_suppkey", fk_uniform(n, suppliers, seed ^ 0x23))
        .i64_column("l_quantity", uniform_i64(n, 1, 51, seed ^ 0x24))
        .i64_column("l_extendedprice", prices_decimal2(n, 900.0, 105_000.0, seed ^ 0x25))
        .i64_column("l_discount", uniform_i64(n, 0, 11, seed ^ 0x26))
        .i64_column("l_tax", uniform_i64(n, 0, 9, seed ^ 0x27))
        .i32_column("l_shipdate", shipdate)
        .i32_column("l_commitdate", commitdate)
        .i32_column("l_receiptdate", receiptdate)
        .str_column("l_shipmode", pick_strings(n, &domains::SHIP_MODES, seed ^ 0x28))
        .str_column("l_shipinstruct", pick_strings(n, &domains::SHIP_INSTRUCTS, seed ^ 0x29))
        .build()
        .expect("lineitem columns are equally long")
}

fn orders(scale: &TpchScale, seed: u64) -> Arc<Table> {
    let n = scale.orders_rows();
    let customers = scale.customer_rows();
    let date_min = TPCH_DATE_MIN;
    let date_max = days_from_civil(1998, 8, 2);
    // Like TPC-H, a third of the customers never place an order (dbgen skips
    // custkeys divisible by three); Q22's anti-join depends on this.
    let custkeys: Vec<i64> = fk_uniform(n, customers, seed ^ 0x31)
        .into_iter()
        .map(|k| if k % 3 == 0 { (k + 1) % customers as i64 } else { k })
        .collect();
    TableBuilder::new("orders")
        .i64_column("o_orderkey", sequential_i64(n))
        .i64_column("o_custkey", custkeys)
        .i32_column("o_orderdate", apq_columnar::datagen::dates(n, date_min, date_max, seed ^ 0x32))
        .str_column("o_orderpriority", pick_strings(n, &domains::ORDER_PRIORITIES, seed ^ 0x33))
        .i64_column("o_totalprice", prices_decimal2(n, 800.0, 500_000.0, seed ^ 0x34))
        .build()
        .expect("orders columns are equally long")
}

fn part(scale: &TpchScale, seed: u64) -> Arc<Table> {
    let n = scale.part_rows();
    TableBuilder::new("part")
        .i64_column("p_partkey", sequential_i64(n))
        .str_column("p_type", p_types(n, seed ^ 0x41))
        .str_column("p_brand", p_brands(n, seed ^ 0x42))
        .str_column(
            "p_container",
            pick_strings(
                n,
                &["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE", "LG BOX", "JUMBO PACK"],
                seed ^ 0x43,
            ),
        )
        .i64_column("p_size", uniform_i64(n, 1, 51, seed ^ 0x44))
        .i64_column("p_retailprice", prices_decimal2(n, 900.0, 2_000.0, seed ^ 0x45))
        .build()
        .expect("part columns are equally long")
}

fn customer(scale: &TpchScale, seed: u64) -> Arc<Table> {
    let n = scale.customer_rows();
    TableBuilder::new("customer")
        .i64_column("c_custkey", sequential_i64(n))
        .i64_column("c_nationkey", uniform_i64(n, 0, scale.nation_rows() as i64, seed ^ 0x51))
        .i64_column("c_acctbal", prices_decimal2(n, -999.99, 9_999.99, seed ^ 0x52))
        .str_column("c_cntrycode", pick_strings(n, &domains::COUNTRY_CODES, seed ^ 0x53))
        .build()
        .expect("customer columns are equally long")
}

fn supplier(scale: &TpchScale, seed: u64) -> Arc<Table> {
    let n = scale.supplier_rows();
    TableBuilder::new("supplier")
        .i64_column("s_suppkey", sequential_i64(n))
        .i64_column("s_nationkey", uniform_i64(n, 0, scale.nation_rows() as i64, seed ^ 0x61))
        .i64_column("s_acctbal", prices_decimal2(n, -999.99, 9_999.99, seed ^ 0x62))
        .build()
        .expect("supplier columns are equally long")
}

fn nation(scale: &TpchScale) -> Arc<Table> {
    let n = scale.nation_rows();
    TableBuilder::new("nation")
        .i64_column("n_nationkey", sequential_i64(n))
        .str_column("n_name", domains::NATIONS[..n].to_vec())
        .i64_column("n_regionkey", (0..n as i64).map(|v| v % 5).collect())
        .build()
        .expect("nation columns are equally long")
}

/// Generates the full TPC-H-like catalog for the given scale factor and seed.
pub fn generate(scale: TpchScale, seed: u64) -> Arc<Catalog> {
    let mut catalog = Catalog::new();
    catalog.register(lineitem(&scale, seed));
    catalog.register(orders(&scale, seed.wrapping_add(1)));
    catalog.register(part(&scale, seed.wrapping_add(2)));
    catalog.register(customer(&scale, seed.wrapping_add(3)));
    catalog.register(supplier(&scale, seed.wrapping_add(4)));
    catalog.register(nation(&scale));
    Arc::new(catalog)
}

/// Convenience accessor for a column, used by tests and experiments.
pub fn column<'a>(catalog: &'a Catalog, table: &str, column: &str) -> &'a Column {
    catalog.table(table).expect("table exists").column(column).expect("column exists")
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_operators::{select, selectivity, CmpOp, Predicate};

    #[test]
    fn scale_controls_row_counts() {
        let small = TpchScale::new(0.001);
        let large = TpchScale::new(0.01);
        assert!(large.lineitem_rows() > small.lineitem_rows());
        assert_eq!(TpchScale::new(0.01).lineitem_rows(), 60_000);
        assert_eq!(TpchScale::new(0.01).orders_rows(), 15_000);
        assert_eq!(small.nation_rows(), 25);
        // Clamping keeps tiny scales usable.
        assert!(TpchScale::new(0.0).lineitem_rows() >= 1_000);
    }

    #[test]
    fn generated_catalog_has_all_tables_and_consistent_fks() {
        let scale = TpchScale::new(0.002);
        let cat = generate(scale, 42);
        for t in ["lineitem", "orders", "part", "customer", "supplier", "nation"] {
            assert!(cat.has_table(t), "missing table {t}");
        }
        let li = cat.table("lineitem").unwrap();
        assert_eq!(li.row_count(), scale.lineitem_rows());
        assert_eq!(cat.largest_table().unwrap().0, "lineitem");

        // Foreign keys reference valid parent rows.
        let orders_rows = cat.table("orders").unwrap().row_count() as i64;
        let ok = column(&cat, "lineitem", "l_orderkey").i64_values().unwrap();
        assert!(ok.iter().all(|&v| v >= 0 && v < orders_rows));
        let parts_rows = cat.table("part").unwrap().row_count() as i64;
        let pk = column(&cat, "lineitem", "l_partkey").i64_values().unwrap();
        assert!(pk.iter().all(|&v| v >= 0 && v < parts_rows));
        // o_orderkey and p_partkey are dense row ids.
        assert_eq!(column(&cat, "orders", "o_orderkey").i64_values().unwrap()[5], 5);
        assert_eq!(column(&cat, "part", "p_partkey").i64_values().unwrap()[7], 7);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generate(TpchScale::new(0.002), 7);
        let b = generate(TpchScale::new(0.002), 7);
        let c = generate(TpchScale::new(0.002), 8);
        let qa = column(&a, "lineitem", "l_quantity").i64_values().unwrap();
        let qb = column(&b, "lineitem", "l_quantity").i64_values().unwrap();
        let qc = column(&c, "lineitem", "l_quantity").i64_values().unwrap();
        assert_eq!(qa, qb);
        assert_ne!(qa, qc);
    }

    #[test]
    fn predicate_domains_have_expected_selectivities() {
        let cat = generate(TpchScale::new(0.003), 11);
        // PROMO parts ≈ 1/6 of the part table.
        let ptype = column(&cat, "part", "p_type");
        let promo = selectivity(ptype, &Predicate::like("PROMO%")).unwrap();
        assert!((0.10..0.25).contains(&promo), "promo selectivity {promo}");
        // Quantity < 25 selects roughly half of lineitem.
        let qty = column(&cat, "lineitem", "l_quantity");
        let half = selectivity(qty, &Predicate::cmp(CmpOp::Lt, 25i64)).unwrap();
        assert!((0.4..0.6).contains(&half), "quantity selectivity {half}");
        // A one-year shipdate window selects roughly 1/7 of lineitem.
        let ship = column(&cat, "lineitem", "l_shipdate");
        let y1994 = selectivity(
            ship,
            &Predicate::range(
                days_from_civil(1994, 1, 1) as i64,
                days_from_civil(1995, 1, 1) as i64,
            ),
        )
        .unwrap();
        assert!((0.08..0.22).contains(&y1994), "1994 selectivity {y1994}");
        // Some lineitems satisfy commit < receipt, some do not.
        let commit = column(&cat, "lineitem", "l_commitdate").i32_values().unwrap();
        let receipt = column(&cat, "lineitem", "l_receiptdate").i32_values().unwrap();
        let late = commit.iter().zip(receipt).filter(|(c, r)| c < r).count();
        assert!(late > 0 && late < commit.len());
        // Discounts are integer percents 0..=10.
        let disc = column(&cat, "lineitem", "l_discount");
        assert!(select(disc, &Predicate::cmp(CmpOp::Gt, 10i64)).unwrap().is_empty());
    }

    #[test]
    fn nation_table_is_fixed_and_named() {
        let cat = generate(TpchScale::new(0.001), 1);
        let nation = cat.table("nation").unwrap();
        assert_eq!(nation.row_count(), 25);
        let names = nation.column("n_name").unwrap();
        assert_eq!(names.get(0).unwrap().as_str().map(String::from), Some("ALGERIA".into()));
        assert_eq!(names.get(24).unwrap().as_str().map(String::from), Some("UNITED STATES".into()));
    }
}
