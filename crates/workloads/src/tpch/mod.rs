//! TPC-H-like workload: schema, scaled data generator and the evaluated
//! query subset (paper Table 4: simple = Q6, Q14; complex = Q4, Q8, Q9, Q19,
//! Q22).
//!
//! The official dbgen tool is not available offline, so [`datagen`] produces
//! a synthetic database with the same schema shape (fact table `lineitem`
//! plus `orders`, `part`, `customer`, `supplier`, `nation`), uniform value
//! distributions (TPC-H "has uniformly distributed data", §4.2.1), realistic
//! foreign keys and the string domains the evaluated predicates rely on
//! (`p_type` prefixes for Q14, ship modes for Q19, ...). Row counts scale
//! linearly with the scale factor exactly as in TPC-H (`lineitem ≈ 6 M × SF`).

pub mod datagen;
pub mod queries;

pub use datagen::{generate, TpchScale};
pub use queries::{QueryClass, TpchQuery};
