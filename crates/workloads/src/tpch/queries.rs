//! Serial plans for the evaluated TPC-H query subset.
//!
//! The paper evaluates Q4, Q6, Q8, Q9, Q14, Q19 and Q22 (Table 4), modified
//! "so that they have a single attribute group-by representation". The plans
//! below follow the same spirit: they keep each query's structural skeleton
//! (selective scans over `lineitem`/`orders`, hash joins against the
//! dimension tables, the revenue expression, one grouping attribute) while
//! dropping SQL details that the execution engine does not model (correlated
//! sub-query averages, multi-attribute ordering). Every simplification is
//! noted on the corresponding builder.

use apq_columnar::Catalog;
use apq_engine::plan::{JoinSide, Plan};
use apq_engine::Result;
use apq_operators::{AggFunc, BinaryOp, CmpOp, Predicate};

use crate::builder::PlanBuilder;
use crate::dates::days_from_civil;

/// Classification used by paper Table 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryClass {
    /// Single-table selection/aggregation queries (Q6, Q14).
    Simple,
    /// Multi-join queries (Q4, Q8, Q9, Q19, Q22).
    Complex,
}

/// The evaluated TPC-H query subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TpchQuery {
    /// Order-priority checking (EXISTS semi-join, group by priority).
    Q4,
    /// Forecasting revenue change (selective scan + aggregate).
    Q6,
    /// National market share (two joins, group by order year).
    Q8,
    /// Product-type profit (joins to supplier/nation, group by nation).
    Q9,
    /// Promotion effect (join to part, conditional revenue ratio).
    Q14,
    /// Discounted revenue (string predicates + join to part).
    Q19,
    /// Global sales opportunity (anti-join against orders).
    Q22,
}

impl TpchQuery {
    /// All evaluated queries in paper order.
    pub fn all() -> [TpchQuery; 7] {
        [
            TpchQuery::Q4,
            TpchQuery::Q6,
            TpchQuery::Q8,
            TpchQuery::Q9,
            TpchQuery::Q14,
            TpchQuery::Q19,
            TpchQuery::Q22,
        ]
    }

    /// TPC-H query number.
    pub fn number(&self) -> u32 {
        match self {
            TpchQuery::Q4 => 4,
            TpchQuery::Q6 => 6,
            TpchQuery::Q8 => 8,
            TpchQuery::Q9 => 9,
            TpchQuery::Q14 => 14,
            TpchQuery::Q19 => 19,
            TpchQuery::Q22 => 22,
        }
    }

    /// Simple/complex classification (paper Table 4).
    pub fn class(&self) -> QueryClass {
        match self {
            TpchQuery::Q6 | TpchQuery::Q14 => QueryClass::Simple,
            _ => QueryClass::Complex,
        }
    }

    /// Builds the serial plan for this query over `catalog`.
    pub fn build(&self, catalog: &Catalog) -> Result<Plan> {
        match self {
            TpchQuery::Q4 => q04(catalog),
            TpchQuery::Q6 => q06(catalog),
            TpchQuery::Q8 => q08(catalog),
            TpchQuery::Q9 => q09(catalog),
            TpchQuery::Q14 => q14(catalog),
            TpchQuery::Q19 => q19(catalog),
            TpchQuery::Q22 => q22(catalog),
        }
    }
}

impl std::fmt::Display for TpchQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.number())
    }
}

/// Q6 with the standard parameters (shipdate in 1994, discount 5..7 %,
/// quantity < 24): `sum(l_extendedprice * l_discount)` over the filtered rows.
pub fn q06(catalog: &Catalog) -> Result<Plan> {
    q06_with_quantity(catalog, 24)
}

/// Q6 with a configurable quantity threshold — the knob the paper turns to
/// vary the select operator's selectivity (Fig. 14 / Table 2).
pub fn q06_with_quantity(catalog: &Catalog, quantity_threshold: i64) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    let ship = b.scan("lineitem", "l_shipdate")?;
    let in_1994 = b.select(
        ship,
        Predicate::range(days_from_civil(1994, 1, 1) as i64, days_from_civil(1995, 1, 1) as i64),
    );
    let disc = b.scan("lineitem", "l_discount")?;
    let disc_band = b.select_with(disc, in_1994, Predicate::between(5i64, 7i64));
    let qty = b.scan("lineitem", "l_quantity")?;
    let selected = b.select_with(qty, disc_band, Predicate::cmp(CmpOp::Lt, quantity_threshold));
    let price = b.scan("lineitem", "l_extendedprice")?;
    let price_f = b.fetch(selected, price);
    let disc_f = b.fetch(selected, disc);
    let revenue = b.calc(BinaryOp::Mul, price_f, disc_f);
    let total = b.scalar_agg(AggFunc::Sum, revenue);
    b.finish(total)
}

/// Q14: promotion effect — the share of revenue coming from `PROMO` parts in
/// one shipping month. Returns the ratio `promo_revenue / total_revenue`.
pub fn q14(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    let ship = b.scan("lineitem", "l_shipdate")?;
    let month = b.select(
        ship,
        Predicate::range(days_from_civil(1995, 9, 1) as i64, days_from_civil(1995, 10, 1) as i64),
    );
    let l_partkey = b.scan("lineitem", "l_partkey")?;
    let keys = b.fetch(month, l_partkey);
    let p_partkey = b.scan("part", "p_partkey")?;
    let hash = b.hash_build(p_partkey);
    let join = b.probe(keys, hash);
    let lineitem_side = b.join_side(join, JoinSide::Outer);
    let part_side = b.join_side(join, JoinSide::Inner);

    let price = b.scan("lineitem", "l_extendedprice")?;
    let disc = b.scan("lineitem", "l_discount")?;
    let price_f = b.fetch(month, price);
    let disc_f = b.fetch(month, disc);
    let price_j = b.fetch(lineitem_side, price_f);
    let disc_j = b.fetch(lineitem_side, disc_f);
    let revenue = b.revenue(price_j, disc_j);

    let p_type = b.scan("part", "p_type")?;
    let type_j = b.fetch(part_side, p_type);
    let promo_mask = b.mask(type_j, Predicate::like("PROMO%"));
    let promo_revenue = b.if_then_else(promo_mask, revenue, 0i64);

    let promo_total = b.scalar_agg(AggFunc::Sum, promo_revenue);
    let total = b.scalar_agg(AggFunc::Sum, revenue);
    let share = b.calc_scalars(BinaryOp::Div, promo_total, total);
    b.finish(share)
}

/// Q4: order-priority checking — orders placed in one quarter that have at
/// least one late lineitem (`l_commitdate < l_receiptdate`), counted per
/// order priority.
pub fn q04(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    // Late lineitems: receipt - commit > 0.
    let commit = b.scan("lineitem", "l_commitdate")?;
    let receipt = b.scan("lineitem", "l_receiptdate")?;
    let lateness = b.calc(BinaryOp::Sub, receipt, commit);
    let late = b.select(lateness, Predicate::cmp(CmpOp::Gt, 0i64));
    let l_orderkey = b.scan("lineitem", "l_orderkey")?;
    let late_orders = b.fetch(late, l_orderkey);
    let hash = b.hash_build(late_orders);

    // Orders of 1993 Q3.
    let orderdate = b.scan("orders", "o_orderdate")?;
    let quarter = b.select(
        orderdate,
        Predicate::range(days_from_civil(1993, 7, 1) as i64, days_from_civil(1993, 10, 1) as i64),
    );
    let o_orderkey = b.scan("orders", "o_orderkey")?;
    let okeys = b.fetch(quarter, o_orderkey);
    let with_late_item = b.semi_join(okeys, hash);

    let priority = b.scan("orders", "o_orderpriority")?;
    let priority_f = b.fetch(quarter, priority);
    let priority_j = b.fetch(with_late_item, priority_f);
    let counts = b.group_agg(AggFunc::Count, priority_j, priority_j);
    b.finish(counts)
}

/// Q8 (simplified national market share): revenue from `ECONOMY ANODIZED
/// STEEL` parts ordered in 1995–1996, grouped by the order year.
///
/// Simplification: the paper's customer/nation/region chain that restricts
/// the market to one region and the final per-nation share division are
/// dropped; the join skeleton (lineitem ⋈ part ⋈ orders) and the per-year
/// grouping are kept.
pub fn q08(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    // Filtered part side.
    let p_type = b.scan("part", "p_type")?;
    let steel = b.select(p_type, Predicate::cmp(CmpOp::Eq, "ECONOMY ANODIZED STEEL"));
    let p_partkey = b.scan("part", "p_partkey")?;
    let part_keys = b.fetch(steel, p_partkey);
    let part_hash = b.hash_build(part_keys);

    // Filtered orders side (1995-01-01 .. 1996-12-31), with the order year.
    let orderdate = b.scan("orders", "o_orderdate")?;
    let window = b.select(
        orderdate,
        Predicate::range(days_from_civil(1995, 1, 1) as i64, days_from_civil(1997, 1, 1) as i64),
    );
    let o_orderkey = b.scan("orders", "o_orderkey")?;
    let order_keys = b.fetch(window, o_orderkey);
    let order_hash = b.hash_build(order_keys);
    let dates_f = b.fetch(window, orderdate);
    let order_year = b.calc_scalar(BinaryOp::Div, dates_f, 365i64);

    // Lineitem pipeline: join to part, then to the filtered orders.
    let l_partkey = b.scan("lineitem", "l_partkey")?;
    let join_part = b.probe(l_partkey, part_hash);
    let li_side = b.join_side(join_part, JoinSide::Outer);
    let l_orderkey = b.scan("lineitem", "l_orderkey")?;
    let li_orderkeys = b.fetch(li_side, l_orderkey);
    let join_orders = b.probe(li_orderkeys, order_hash);
    let li2_side = b.join_side(join_orders, JoinSide::Outer);
    let orders_side = b.join_side(join_orders, JoinSide::Inner);

    let price = b.scan("lineitem", "l_extendedprice")?;
    let disc = b.scan("lineitem", "l_discount")?;
    let price_f = b.fetch(li_side, price);
    let disc_f = b.fetch(li_side, disc);
    let revenue = b.revenue(price_f, disc_f);
    let revenue_j = b.fetch(li2_side, revenue);
    let year_j = b.fetch(orders_side, order_year);

    let by_year = b.group_agg(AggFunc::Sum, year_j, revenue_j);
    b.finish(by_year)
}

/// Q9 (simplified product-type profit): revenue of lineitems whose part type
/// contains `BRUSHED`, grouped by the supplier's nation.
///
/// Simplification: the `partsupp` supply-cost term of the profit expression
/// and the order-year grouping attribute are dropped (single-attribute
/// group-by, as the paper requires); the lineitem ⋈ part ⋈ supplier ⋈ nation
/// join chain is kept.
pub fn q09(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    let p_type = b.scan("part", "p_type")?;
    let brushed = b.select(p_type, Predicate::like("%BRUSHED%"));
    let p_partkey = b.scan("part", "p_partkey")?;
    let part_keys = b.fetch(brushed, p_partkey);
    let part_hash = b.hash_build(part_keys);

    let l_partkey = b.scan("lineitem", "l_partkey")?;
    let join_part = b.probe(l_partkey, part_hash);
    let li_side = b.join_side(join_part, JoinSide::Outer);

    let l_suppkey = b.scan("lineitem", "l_suppkey")?;
    let li_suppkeys = b.fetch(li_side, l_suppkey);
    let s_suppkey = b.scan("supplier", "s_suppkey")?;
    let supp_hash = b.hash_build(s_suppkey);
    let join_supp = b.probe(li_suppkeys, supp_hash);
    let li2_side = b.join_side(join_supp, JoinSide::Outer);
    let supp_side = b.join_side(join_supp, JoinSide::Inner);

    let s_nationkey = b.scan("supplier", "s_nationkey")?;
    let nation_keys = b.fetch(supp_side, s_nationkey);
    let nation_oids = b.as_oids(nation_keys);
    let n_name = b.scan("nation", "n_name")?;
    let nation_names = b.fetch(nation_oids, n_name);

    let price = b.scan("lineitem", "l_extendedprice")?;
    let disc = b.scan("lineitem", "l_discount")?;
    let price_f = b.fetch(li_side, price);
    let disc_f = b.fetch(li_side, disc);
    let revenue = b.revenue(price_f, disc_f);
    let revenue_j = b.fetch(li2_side, revenue);

    let by_nation = b.group_agg(AggFunc::Sum, nation_names, revenue_j);
    b.finish(by_nation)
}

/// Q19 (simplified discounted revenue): revenue of air-shipped, in-person
/// delivered lineitems of one brand within a quantity band.
///
/// Simplification: the three OR-ed brand/container/quantity branches of the
/// original query are collapsed into one branch; the characteristic string
/// predicates and the part join are kept.
pub fn q19(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    let p_brand = b.scan("part", "p_brand")?;
    let brand = b.select(p_brand, Predicate::cmp(CmpOp::Eq, "Brand#23"));
    let p_partkey = b.scan("part", "p_partkey")?;
    let part_keys = b.fetch(brand, p_partkey);
    let part_hash = b.hash_build(part_keys);

    let shipmode = b.scan("lineitem", "l_shipmode")?;
    let air = b.select(shipmode, Predicate::InStr(vec!["AIR".to_string(), "REG AIR".to_string()]));
    let instruct = b.scan("lineitem", "l_shipinstruct")?;
    let in_person = b.select_with(instruct, air, Predicate::cmp(CmpOp::Eq, "DELIVER IN PERSON"));
    let qty = b.scan("lineitem", "l_quantity")?;
    let in_band = b.select_with(qty, in_person, Predicate::between(1i64, 30i64));

    let l_partkey = b.scan("lineitem", "l_partkey")?;
    let keys = b.fetch(in_band, l_partkey);
    let join = b.probe(keys, part_hash);
    let li_side = b.join_side(join, JoinSide::Outer);

    let price = b.scan("lineitem", "l_extendedprice")?;
    let disc = b.scan("lineitem", "l_discount")?;
    let price_f = b.fetch(in_band, price);
    let disc_f = b.fetch(in_band, disc);
    let price_j = b.fetch(li_side, price_f);
    let disc_j = b.fetch(li_side, disc_f);
    let revenue = b.revenue(price_j, disc_j);
    let total = b.scalar_agg(AggFunc::Sum, revenue);
    b.finish(total)
}

/// Q22 (simplified global sales opportunity): positive-balance customers from
/// a set of country codes with no orders, their account balance summed per
/// country code.
///
/// Simplification: the average-balance correlated sub-query is replaced by a
/// constant threshold (balance > 0); the characteristic anti-join against
/// `orders` — "the join operator is always the most expensive operator"
/// (paper §4.3) — is kept.
pub fn q22(catalog: &Catalog) -> Result<Plan> {
    let mut b = PlanBuilder::new(catalog);
    let cntry = b.scan("customer", "c_cntrycode")?;
    let in_codes = b.select(
        cntry,
        Predicate::InStr(vec![
            "13".to_string(),
            "31".to_string(),
            "23".to_string(),
            "29".to_string(),
            "30".to_string(),
            "18".to_string(),
            "17".to_string(),
        ]),
    );
    let acctbal = b.scan("customer", "c_acctbal")?;
    let positive = b.select_with(acctbal, in_codes, Predicate::cmp(CmpOp::Gt, 0i64));
    let c_custkey = b.scan("customer", "c_custkey")?;
    let cust_keys = b.fetch(positive, c_custkey);

    let o_custkey = b.scan("orders", "o_custkey")?;
    let orders_hash = b.hash_build(o_custkey);
    let without_orders = b.anti_join(cust_keys, orders_hash);

    let cntry_f = b.fetch(positive, cntry);
    let bal_f = b.fetch(positive, acctbal);
    let cntry_j = b.fetch(without_orders, cntry_f);
    let bal_j = b.fetch(without_orders, bal_f);
    let by_code = b.group_agg(AggFunc::Sum, cntry_j, bal_j);
    b.finish(by_code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::datagen::{generate, TpchScale};
    use apq_engine::{Engine, QueryOutput};

    fn engine() -> Engine {
        Engine::with_workers(3)
    }

    #[test]
    fn metadata() {
        assert_eq!(TpchQuery::all().len(), 7);
        assert_eq!(TpchQuery::Q14.number(), 14);
        assert_eq!(TpchQuery::Q14.to_string(), "Q14");
        assert_eq!(TpchQuery::Q6.class(), QueryClass::Simple);
        assert_eq!(TpchQuery::Q14.class(), QueryClass::Simple);
        assert_eq!(TpchQuery::Q9.class(), QueryClass::Complex);
        assert_eq!(TpchQuery::Q22.class(), QueryClass::Complex);
    }

    #[test]
    fn all_queries_build_and_execute() {
        let cat = generate(TpchScale::new(0.002), 17);
        let engine = engine();
        for query in TpchQuery::all() {
            let plan = query.build(&cat).unwrap_or_else(|e| panic!("{query} failed to build: {e}"));
            plan.validate().unwrap();
            let exec = engine
                .execute(&plan, &cat)
                .unwrap_or_else(|e| panic!("{query} failed to execute: {e}"));
            assert!(exec.output.rows() > 0, "{query} produced an empty result");
        }
    }

    #[test]
    fn q6_produces_a_positive_revenue_scalar() {
        let cat = generate(TpchScale::new(0.002), 3);
        let plan = q06(&cat).unwrap();
        let out = engine().execute(&plan, &cat).unwrap().output;
        match out {
            QueryOutput::Scalar(v) => assert!(v.as_i64().unwrap() > 0),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn q6_selectivity_knob_is_monotonic() {
        let cat = generate(TpchScale::new(0.002), 3);
        let engine = engine();
        let mut previous = None;
        for qty in [10i64, 30, 51] {
            let plan = q06_with_quantity(&cat, qty).unwrap();
            let out = engine.execute(&plan, &cat).unwrap().output;
            let value = match out {
                QueryOutput::Scalar(v) => v.as_i64().unwrap(),
                other => panic!("unexpected output {other:?}"),
            };
            if let Some(prev) = previous {
                assert!(value >= prev, "revenue must grow with the quantity threshold");
            }
            previous = Some(value);
        }
    }

    #[test]
    fn q14_ratio_is_a_sane_fraction() {
        let cat = generate(TpchScale::new(0.002), 5);
        let plan = q14(&cat).unwrap();
        let out = engine().execute(&plan, &cat).unwrap().output;
        match out {
            QueryOutput::Scalar(v) => {
                let ratio = v.as_f64().unwrap();
                assert!((0.0..=1.0).contains(&ratio), "promo share {ratio} outside [0, 1]");
                assert!(ratio > 0.01, "promo share {ratio} suspiciously small");
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn q4_counts_every_priority() {
        let cat = generate(TpchScale::new(0.002), 9);
        let plan = q04(&cat).unwrap();
        let out = engine().execute(&plan, &cat).unwrap().output;
        match out {
            QueryOutput::Groups(groups) => {
                assert!(!groups.is_empty() && groups.len() <= 5);
                for (_, count) in groups {
                    assert!(count.as_i64().unwrap() > 0);
                }
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn q9_groups_by_nation_names() {
        let cat = generate(TpchScale::new(0.002), 13);
        let plan = q09(&cat).unwrap();
        let out = engine().execute(&plan, &cat).unwrap().output;
        match out {
            QueryOutput::Groups(groups) => {
                assert!(groups.len() > 5 && groups.len() <= 25);
                assert!(groups.iter().all(|(k, _)| matches!(k, apq_operators::GroupKey::Str(_))));
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn q8_groups_by_year_bucket() {
        let cat = generate(TpchScale::new(0.002), 21);
        let plan = q08(&cat).unwrap();
        let out = engine().execute(&plan, &cat).unwrap().output;
        match out {
            QueryOutput::Groups(groups) => {
                // Two calendar years fall in the window; with day/365 bucketing
                // the boundary may add one extra bucket.
                assert!((1..=3).contains(&groups.len()), "{} year buckets", groups.len());
            }
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn q22_balances_are_positive_sums() {
        let cat = generate(TpchScale::new(0.002), 23);
        let plan = q22(&cat).unwrap();
        let out = engine().execute(&plan, &cat).unwrap().output;
        match out {
            QueryOutput::Groups(groups) => {
                assert!(!groups.is_empty() && groups.len() <= 7);
                for (_, sum) in groups {
                    assert!(sum.as_i64().unwrap() > 0);
                }
            }
            other => panic!("unexpected output {other:?}"),
        }
    }
}
