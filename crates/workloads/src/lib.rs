//! Synthetic workloads reproducing the paper's evaluation inputs.
//!
//! * [`tpch`] — a TPC-H-like schema, data generator (uniform value
//!   distributions, scale-factor controlled sizes) and serial plans for the
//!   evaluated query subset (Q4, Q6, Q8, Q9, Q14, Q19, Q22 — paper Table 4).
//! * [`tpcds`] — a TPC-DS-like star schema with *skewed* fact-table foreign
//!   keys and five report-style queries (paper §4.2.2 uses "a few modified
//!   queries ... chosen such that they contain the large tables and a few
//!   smaller dimension tables").
//! * [`micro`] — the operator-level micro-benchmarks: the skewed-column
//!   select of Fig. 12/13, the selectivity/size select sweep of Fig. 14 /
//!   Table 2, and the join size sweep of Fig. 15 / Table 3.
//! * [`concurrent`] — the concurrent-workload driver (32 clients firing
//!   random queries) used by Figs. 1 and 16.
//! * [`builder`] / [`dates`] — shared plan-construction and calendar helpers.

#![warn(missing_docs)]

pub mod builder;
pub mod concurrent;
pub mod dates;
pub mod micro;
pub mod tpcds;
pub mod tpch;

pub use builder::PlanBuilder;
pub use concurrent::{measure_under_load, BackgroundLoad, ConcurrentMeasurement};
pub use tpcds::{TpcdsQuery, TpcdsScale};
pub use tpch::{TpchQuery, TpchScale};
