//! Property-based tests for the operator algebra the adaptive parallelizer
//! depends on: for every operator, executing it per-partition and combining
//! with the matching combiner must equal executing it once over the whole
//! input. This is exactly the correctness obligation of the basic / advanced
//! mutations.

use apq_columnar::Column;
use apq_operators::{
    calc_col_col, grouped_agg, merge_grouped, pack_oids, scalar_agg, select, AggFunc, AggState,
    BinaryOp, CmpOp, JoinHashTable, JoinResult, Predicate,
};
use proptest::prelude::*;

fn partition_points(n: usize, cuts: &[usize]) -> Vec<usize> {
    let mut points: Vec<usize> = cuts.iter().map(|c| c % (n + 1)).collect();
    points.push(0);
    points.push(n);
    points.sort_unstable();
    points.dedup();
    points
}

proptest! {
    /// Partitioned select + exchange union == serial select.
    #[test]
    fn partitioned_select_equals_serial(values in prop::collection::vec(-100i64..100, 1..500),
                                        threshold in -100i64..100,
                                        cuts in prop::collection::vec(0usize..500, 0..5)) {
        let col = Column::from_i64(values.clone());
        let pred = Predicate::cmp(CmpOp::Lt, threshold);
        let serial = select(&col, &pred).unwrap();
        let points = partition_points(values.len(), &cuts);
        let mut parts = Vec::new();
        for w in points.windows(2) {
            if w[1] > w[0] {
                let slice = col.slice(w[0], w[1] - w[0]).unwrap();
                parts.push(select(&slice, &pred).unwrap());
            }
        }
        prop_assert_eq!(pack_oids(&parts), serial);
    }

    /// Partitioned probe + concat == serial probe (outer-partitioned hash join).
    #[test]
    fn partitioned_join_equals_serial(inner in prop::collection::vec(0i64..50, 1..100),
                                      outer in prop::collection::vec(0i64..50, 1..400),
                                      cuts in prop::collection::vec(0usize..400, 0..5)) {
        let inner_col = Column::from_i64(inner);
        let outer_col = Column::from_i64(outer.clone());
        let ht = JoinHashTable::build(&inner_col).unwrap();
        let serial = ht.probe(&outer_col).unwrap();
        let points = partition_points(outer.len(), &cuts);
        let mut parts = Vec::new();
        for w in points.windows(2) {
            if w[1] > w[0] {
                parts.push(ht.probe(&outer_col.slice(w[0], w[1] - w[0]).unwrap()).unwrap());
            }
        }
        prop_assert_eq!(JoinResult::concat(&parts), serial);
    }

    /// Partial scalar aggregates merge to the whole-column aggregate.
    #[test]
    fn partial_aggregates_merge(values in prop::collection::vec(-1000i64..1000, 1..500),
                                cuts in prop::collection::vec(0usize..500, 0..5)) {
        let col = Column::from_i64(values.clone());
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let expected = scalar_agg(func, &col).unwrap().finish();
            let points = partition_points(values.len(), &cuts);
            let mut merged = AggState::new(func);
            for w in points.windows(2) {
                if w[1] > w[0] {
                    let slice = col.slice(w[0], w[1] - w[0]).unwrap();
                    merged.merge(&scalar_agg(func, &slice).unwrap()).unwrap();
                }
            }
            prop_assert_eq!(merged.finish(), expected);
        }
    }

    /// Partial grouped aggregates merge to the whole-column grouped aggregate.
    #[test]
    fn partial_grouped_aggregates_merge(rows in prop::collection::vec((0i64..10, -50i64..50), 1..400),
                                        cuts in prop::collection::vec(0usize..400, 0..4)) {
        let keys: Vec<i64> = rows.iter().map(|r| r.0).collect();
        let vals: Vec<i64> = rows.iter().map(|r| r.1).collect();
        let kcol = Column::from_i64(keys);
        let vcol = Column::from_i64(vals);
        let whole = grouped_agg(AggFunc::Sum, &kcol, &vcol).unwrap();
        let points = partition_points(rows.len(), &cuts);
        let mut parts = Vec::new();
        for w in points.windows(2) {
            if w[1] > w[0] {
                parts.push(
                    grouped_agg(
                        AggFunc::Sum,
                        &kcol.slice(w[0], w[1] - w[0]).unwrap(),
                        &vcol.slice(w[0], w[1] - w[0]).unwrap(),
                    )
                    .unwrap(),
                );
            }
        }
        let merged = merge_grouped(&parts).unwrap();
        prop_assert_eq!(merged.finish_sorted(), whole.finish_sorted());
    }

    /// calc is element-wise: slicing inputs and concatenating outputs equals
    /// computing over the whole columns.
    #[test]
    fn calc_is_elementwise(pairs in prop::collection::vec((-1000i64..1000, -1000i64..1000), 1..300),
                           cut in 0usize..300) {
        let a: Vec<i64> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<i64> = pairs.iter().map(|p| p.1).collect();
        let ca = Column::from_i64(a);
        let cb = Column::from_i64(b);
        let whole = calc_col_col(BinaryOp::Mul, &ca, &cb).unwrap();
        let cut = cut % (pairs.len() + 1);
        let mut parts = Vec::new();
        if cut > 0 {
            parts.push(calc_col_col(BinaryOp::Mul,
                &ca.slice(0, cut).unwrap(), &cb.slice(0, cut).unwrap()).unwrap());
        }
        if cut < pairs.len() {
            parts.push(calc_col_col(BinaryOp::Mul,
                &ca.slice(cut, pairs.len() - cut).unwrap(),
                &cb.slice(cut, pairs.len() - cut).unwrap()).unwrap());
        }
        let packed = Column::concat(&parts).unwrap();
        prop_assert_eq!(packed.i64_values().unwrap(), whole.i64_values().unwrap());
    }
}
