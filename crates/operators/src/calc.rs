//! Vectorized arithmetic (`batcalc.*` in the paper's plans).
//!
//! TPC-H expressions such as `l_extendedprice * (1 - l_discount)` (Q6, Q14,
//! Q19) are evaluated by element-wise operations over columns and scalars.
//! Integer columns use fixed-point(2) decimal semantics: multiplication of
//! two fixed-point(2) values is rescaled back to fixed-point(2) by the
//! workload layer (the operator itself is plain integer arithmetic, exactly
//! like MonetDB's `batcalc.*` on `lng` decimals).

use apq_columnar::{Column, DataType, ScalarValue};

use crate::error::{OperatorError, Result};

/// Element-wise binary operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (errors on a zero divisor).
    Div,
}

impl BinaryOp {
    fn apply_i64(self, a: i64, b: i64) -> Result<i64> {
        Ok(match self {
            BinaryOp::Add => a.wrapping_add(b),
            BinaryOp::Sub => a.wrapping_sub(b),
            BinaryOp::Mul => a.wrapping_mul(b),
            BinaryOp::Div => {
                if b == 0 {
                    return Err(OperatorError::DivisionByZero);
                }
                a / b
            }
        })
    }

    fn apply_f64(self, a: f64, b: f64) -> Result<f64> {
        Ok(match self {
            BinaryOp::Add => a + b,
            BinaryOp::Sub => a - b,
            BinaryOp::Mul => a * b,
            BinaryOp::Div => {
                if b == 0.0 {
                    return Err(OperatorError::DivisionByZero);
                }
                a / b
            }
        })
    }

    /// Short symbol for plan pretty-printing.
    pub fn symbol(self) -> &'static str {
        match self {
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        }
    }
}

fn numeric_error(left: DataType, right: DataType) -> OperatorError {
    OperatorError::InvalidCalc(format!(
        "calc requires numeric inputs of matching class, got {left} and {right}"
    ))
}

/// `out[i] = left[i] <op> right[i]` for two equally long numeric columns.
///
/// Both `Int64` (fixed-point) and `Float64` columns are supported; the two
/// inputs must belong to the same numeric class. `Int32` inputs are widened
/// to `Int64`.
pub fn calc_col_col(op: BinaryOp, left: &Column, right: &Column) -> Result<Column> {
    if left.len() != right.len() {
        return Err(OperatorError::LengthMismatch { left: left.len(), right: right.len() });
    }
    match (left.data_type(), right.data_type()) {
        (DataType::Float64, DataType::Float64) => {
            let l = left.f64_values()?;
            let r = right.f64_values()?;
            let mut out = Vec::with_capacity(l.len());
            for (a, b) in l.iter().zip(r) {
                out.push(op.apply_f64(*a, *b)?);
            }
            Ok(Column::from_f64(out))
        }
        (lt, rt) if is_int(lt) && is_int(rt) => {
            let l = widened_i64(left)?;
            let r = widened_i64(right)?;
            let mut out = Vec::with_capacity(l.len());
            for (a, b) in l.iter().zip(r.iter()) {
                out.push(op.apply_i64(*a, *b)?);
            }
            Ok(Column::from_i64(out))
        }
        (lt, rt) => Err(numeric_error(lt, rt)),
    }
}

/// `out[i] = left[i] <op> scalar`.
pub fn calc_col_scalar(op: BinaryOp, left: &Column, scalar: &ScalarValue) -> Result<Column> {
    match left.data_type() {
        DataType::Float64 => {
            let rhs = scalar
                .as_f64()
                .ok_or_else(|| numeric_error(DataType::Float64, scalar.data_type()))?;
            let l = left.f64_values()?;
            let mut out = Vec::with_capacity(l.len());
            for a in l {
                out.push(op.apply_f64(*a, rhs)?);
            }
            Ok(Column::from_f64(out))
        }
        lt if is_int(lt) => {
            let rhs = scalar.as_i64().ok_or_else(|| numeric_error(lt, scalar.data_type()))?;
            let l = widened_i64(left)?;
            let mut out = Vec::with_capacity(l.len());
            for a in l.iter() {
                out.push(op.apply_i64(*a, rhs)?);
            }
            Ok(Column::from_i64(out))
        }
        lt => Err(numeric_error(lt, scalar.data_type())),
    }
}

/// `out[i] = scalar <op> right[i]` (needed for `1 - l_discount` style expressions).
pub fn calc_scalar_col(op: BinaryOp, scalar: &ScalarValue, right: &Column) -> Result<Column> {
    match right.data_type() {
        DataType::Float64 => {
            let lhs = scalar
                .as_f64()
                .ok_or_else(|| numeric_error(scalar.data_type(), DataType::Float64))?;
            let r = right.f64_values()?;
            let mut out = Vec::with_capacity(r.len());
            for b in r {
                out.push(op.apply_f64(lhs, *b)?);
            }
            Ok(Column::from_f64(out))
        }
        rt if is_int(rt) => {
            let lhs = scalar.as_i64().ok_or_else(|| numeric_error(scalar.data_type(), rt))?;
            let r = widened_i64(right)?;
            let mut out = Vec::with_capacity(r.len());
            for b in r.iter() {
                out.push(op.apply_i64(lhs, *b)?);
            }
            Ok(Column::from_i64(out))
        }
        rt => Err(numeric_error(scalar.data_type(), rt)),
    }
}

fn is_int(t: DataType) -> bool {
    matches!(t, DataType::Int64 | DataType::Int32)
}

/// Widens an integer column's visible values to `i64`, borrowing when the
/// column is already `Int64`.
fn widened_i64(col: &Column) -> Result<std::borrow::Cow<'_, [i64]>> {
    match col.data_type() {
        DataType::Int64 => Ok(std::borrow::Cow::Borrowed(col.i64_values()?)),
        DataType::Int32 => {
            Ok(std::borrow::Cow::Owned(col.i32_values()?.iter().map(|&v| v as i64).collect()))
        }
        other => Err(numeric_error(other, other)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn col_col_int() {
        let a = Column::from_i64(vec![10, 20, 30]);
        let b = Column::from_i64(vec![1, 2, 3]);
        assert_eq!(
            calc_col_col(BinaryOp::Add, &a, &b).unwrap().i64_values().unwrap(),
            &[11, 22, 33]
        );
        assert_eq!(
            calc_col_col(BinaryOp::Sub, &a, &b).unwrap().i64_values().unwrap(),
            &[9, 18, 27]
        );
        assert_eq!(
            calc_col_col(BinaryOp::Mul, &a, &b).unwrap().i64_values().unwrap(),
            &[10, 40, 90]
        );
        assert_eq!(
            calc_col_col(BinaryOp::Div, &a, &b).unwrap().i64_values().unwrap(),
            &[10, 10, 10]
        );
    }

    #[test]
    fn col_col_float_and_mixed_int() {
        let a = Column::from_f64(vec![1.5, 2.5]);
        let b = Column::from_f64(vec![0.5, 0.5]);
        assert_eq!(
            calc_col_col(BinaryOp::Mul, &a, &b).unwrap().f64_values().unwrap(),
            &[0.75, 1.25]
        );
        let a = Column::from_i32(vec![1, 2]);
        let b = Column::from_i64(vec![10, 20]);
        assert_eq!(calc_col_col(BinaryOp::Add, &a, &b).unwrap().i64_values().unwrap(), &[11, 22]);
    }

    #[test]
    fn scalar_variants() {
        let a = Column::from_i64(vec![100, 200]);
        assert_eq!(
            calc_col_scalar(BinaryOp::Div, &a, &ScalarValue::I64(10))
                .unwrap()
                .i64_values()
                .unwrap(),
            &[10, 20]
        );
        assert_eq!(
            calc_scalar_col(BinaryOp::Sub, &ScalarValue::I64(100), &a)
                .unwrap()
                .i64_values()
                .unwrap(),
            &[0, -100]
        );
        let f = Column::from_f64(vec![0.1, 0.2]);
        assert_eq!(
            calc_scalar_col(BinaryOp::Sub, &ScalarValue::F64(1.0), &f)
                .unwrap()
                .f64_values()
                .unwrap(),
            &[0.9, 0.8]
        );
    }

    #[test]
    fn division_by_zero() {
        let a = Column::from_i64(vec![1]);
        let b = Column::from_i64(vec![0]);
        assert_eq!(calc_col_col(BinaryOp::Div, &a, &b).unwrap_err(), OperatorError::DivisionByZero);
        let f = Column::from_f64(vec![1.0]);
        assert_eq!(
            calc_col_scalar(BinaryOp::Div, &f, &ScalarValue::F64(0.0)).unwrap_err(),
            OperatorError::DivisionByZero
        );
    }

    #[test]
    fn errors_on_bad_inputs() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_i64(vec![1]);
        assert!(matches!(
            calc_col_col(BinaryOp::Add, &a, &b).unwrap_err(),
            OperatorError::LengthMismatch { .. }
        ));
        let s = Column::from_strings(["x", "y"]);
        assert!(calc_col_col(BinaryOp::Add, &a, &s).is_err());
        assert!(calc_col_scalar(BinaryOp::Add, &s, &ScalarValue::I64(1)).is_err());
        assert!(calc_col_scalar(BinaryOp::Add, &a, &ScalarValue::Str("x".into())).is_err());
        assert!(calc_scalar_col(BinaryOp::Add, &ScalarValue::I64(1), &s).is_err());
    }

    #[test]
    fn fixed_point_revenue_expression() {
        // revenue = extendedprice * (1 - discount), prices fixed-point(2),
        // discount fixed-point(2) as well: (100 - disc) then rescale by /100.
        let price = Column::from_i64(vec![10_00, 20_00]); // 10.00, 20.00
        let disc = Column::from_i64(vec![10, 25]); // 0.10, 0.25
        let one_minus = calc_scalar_col(BinaryOp::Sub, &ScalarValue::I64(100), &disc).unwrap();
        let raw = calc_col_col(BinaryOp::Mul, &price, &one_minus).unwrap();
        let revenue = calc_col_scalar(BinaryOp::Div, &raw, &ScalarValue::I64(100)).unwrap();
        assert_eq!(revenue.i64_values().unwrap(), &[9_00, 15_00]);
    }
}
