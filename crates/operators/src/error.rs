//! Error type for the operator layer.

use std::fmt;

use apq_columnar::ColumnarError;

/// Convenience alias used throughout the operators crate.
pub type Result<T> = std::result::Result<T, OperatorError>;

/// Errors raised while evaluating a physical operator.
#[derive(Debug, Clone, PartialEq)]
pub enum OperatorError {
    /// An error bubbled up from the storage layer.
    Columnar(ColumnarError),
    /// The predicate cannot be applied to the column's type.
    PredicateTypeMismatch {
        /// Type of the column being filtered.
        column_type: &'static str,
        /// Description of the predicate.
        predicate: String,
    },
    /// An arithmetic operator received incompatible inputs.
    InvalidCalc(String),
    /// The operator received inputs of mismatching lengths.
    LengthMismatch {
        /// Length of the left input.
        left: usize,
        /// Length of the right input.
        right: usize,
    },
    /// An aggregate was asked to combine incompatible partial states.
    IncompatibleAggregates(String),
    /// The join received a key column of an unsupported type.
    UnsupportedJoinKey(&'static str),
    /// Division by zero during `calc` evaluation.
    DivisionByZero,
    /// An operator that requires at least one input got none.
    EmptyInput(&'static str),
}

impl fmt::Display for OperatorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OperatorError::Columnar(e) => write!(f, "storage error: {e}"),
            OperatorError::PredicateTypeMismatch { column_type, predicate } => {
                write!(f, "predicate {predicate} cannot be applied to {column_type} column")
            }
            OperatorError::InvalidCalc(msg) => write!(f, "invalid calc: {msg}"),
            OperatorError::LengthMismatch { left, right } => {
                write!(f, "operator input length mismatch: {left} vs {right}")
            }
            OperatorError::IncompatibleAggregates(msg) => {
                write!(f, "incompatible aggregate states: {msg}")
            }
            OperatorError::UnsupportedJoinKey(ty) => {
                write!(f, "unsupported join key type: {ty}")
            }
            OperatorError::DivisionByZero => write!(f, "division by zero"),
            OperatorError::EmptyInput(op) => write!(f, "operator {op} requires at least one input"),
        }
    }
}

impl std::error::Error for OperatorError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            OperatorError::Columnar(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ColumnarError> for OperatorError {
    fn from(e: ColumnarError) -> Self {
        OperatorError::Columnar(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_columnar_errors() {
        let e: OperatorError = ColumnarError::UnknownColumn("x".into()).into();
        assert!(matches!(e, OperatorError::Columnar(_)));
        assert!(e.to_string().contains("storage error"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn display_variants() {
        assert!(OperatorError::DivisionByZero.to_string().contains("zero"));
        assert!(OperatorError::EmptyInput("pack").to_string().contains("pack"));
        assert!(OperatorError::UnsupportedJoinKey("bool").to_string().contains("bool"));
        let e = OperatorError::LengthMismatch { left: 3, right: 5 };
        assert!(e.to_string().contains('3') && e.to_string().contains('5'));
    }
}
