//! Tuple reconstruction (MonetDB `leftfetchjoin`).
//!
//! Column stores project attributes lazily: a select produces a list of oids
//! and the values of other columns are *fetched* afterwards by using those
//! oids as positions into the (possibly sliced) value column. Paper §2.3
//! explains the alignment hazard this creates under dynamically sized
//! partitions: if the oid list's boundaries overshoot the value slice's
//! boundaries, the lookup is an invalid access. [`fetch`] enforces strict
//! alignment (any overshoot is an error); [`fetch_clamped`] implements the
//! paper's boundary adjustment, dropping overshooting oids and reporting how
//! many were dropped.

use apq_columnar::partition::RowRange;
use apq_columnar::{Column, Oid};

use crate::error::Result;

/// Fetches `column[oid]` for every oid, producing a dense value column.
///
/// Every oid must lie inside the column view's `[base_oid, end_oid)` range;
/// otherwise a `MisalignedOid` storage error is returned (the paper's
/// "invalid access").
pub fn fetch(column: &Column, oids: &[Oid]) -> Result<Column> {
    Ok(column.gather_oids(oids)?)
}

/// Fetch with boundary clamping: oids outside the column view are dropped
/// (the paper's "the lower boundary of LT is adjusted ... to match the lower
/// boundary of RH"). Returns the fetched column, the clamped oid list and the
/// number of oids that were dropped.
pub fn fetch_clamped(column: &Column, oids: &[Oid]) -> Result<(Column, Vec<Oid>, usize)> {
    let range = RowRange::new(column.base_oid() as usize, column.end_oid() as usize);
    let clamped: Vec<Oid> = oids.iter().copied().filter(|&o| range.contains(o as usize)).collect();
    let dropped = oids.len() - clamped.len();
    let fetched = column.gather_oids(&clamped)?;
    Ok((fetched, clamped, dropped))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::ColumnarError;

    #[test]
    fn fetch_reconstructs_values() {
        let c = Column::from_i64(vec![100, 200, 300, 400, 500]);
        let out = fetch(&c, &[4, 0, 2]).unwrap();
        assert_eq!(out.i64_values().unwrap(), &[500, 100, 300]);
    }

    #[test]
    fn fetch_from_slice_uses_absolute_oids() {
        let base = Column::from_i64((0..100).map(|v| v * 10).collect());
        let part = base.slice(50, 50).unwrap();
        let out = fetch(&part, &[50, 75, 99]).unwrap();
        assert_eq!(out.i64_values().unwrap(), &[500, 750, 990]);
    }

    #[test]
    fn misaligned_fetch_is_invalid_access() {
        let base = Column::from_i64((0..100).collect());
        let part = base.slice(0, 50).unwrap();
        let err = fetch(&part, &[10, 60]).unwrap_err();
        assert!(matches!(
            err,
            crate::OperatorError::Columnar(ColumnarError::MisalignedOid { oid: 60, .. })
        ));
    }

    #[test]
    fn clamped_fetch_adjusts_boundaries() {
        // Mirrors the paper's Fig. 10 example: LT holds oids {2,4,5,7,8} but the
        // value slice covers oids [1,8); oid 8 overshoots and must be dropped.
        let base = Column::from_i64(vec![0, 11, 12, 13, 14, 20, 16, 13, 99]);
        let rh = base.slice(1, 7).unwrap(); // oids [1, 8)
        let lt = vec![2u64, 4, 5, 7, 8];
        let (vals, clamped, dropped) = fetch_clamped(&rh, &lt).unwrap();
        assert_eq!(clamped, vec![2, 4, 5, 7]);
        assert_eq!(dropped, 1);
        assert_eq!(vals.i64_values().unwrap(), &[12, 14, 20, 13]);
    }

    #[test]
    fn clamped_fetch_with_fully_aligned_input_drops_nothing() {
        let base = Column::from_i64((0..10).collect());
        let (vals, clamped, dropped) = fetch_clamped(&base, &[0, 9, 5]).unwrap();
        assert_eq!(dropped, 0);
        assert_eq!(clamped, vec![0, 9, 5]);
        assert_eq!(vals.i64_values().unwrap(), &[0, 9, 5]);
    }

    #[test]
    fn fetch_strings() {
        let c = Column::from_strings(["a", "b", "c", "d"]);
        let out = fetch(&c, &[3, 1]).unwrap();
        assert_eq!(out.get(0).unwrap().as_str().map(String::from), Some("d".into()));
        assert_eq!(out.get(1).unwrap().as_str().map(String::from), Some("b".into()));
    }
}
