//! The exchange-union operator (`mat.pack`).
//!
//! The exchange-union combines the results of cloned operators running on
//! different partitions back into a single intermediate (paper §2.1). Its
//! cost is proportional to the amount of data being packed, which is why the
//! paper treats it as a first-class operator that can itself become the most
//! expensive one (triggering the *medium mutation*) and why low-selectivity
//! plans push it as high as possible (§4.1.2).
//!
//! Packing preserves the argument order; because clones are appended to the
//! union in mutation-sequence order, this is exactly the ordering guarantee
//! the paper relies on ("the correct ordering is maintained, as the operators
//! whose results are packed follow the mutation sequence order").

use apq_columnar::{Column, Oid};

use crate::error::{OperatorError, Result};

/// Packs per-partition candidate lists into one list, in argument order.
///
/// Parts are borrowed (`&[Oid]` slices, owned `Vec`s, or anything slice-like)
/// so callers holding windowed views pack straight from the shared backing —
/// one allocation for the output, no per-part intermediate copies.
pub fn pack_oids<S: AsRef<[Oid]>>(parts: &[S]) -> Vec<Oid> {
    let total: usize = parts.iter().map(|p| p.as_ref().len()).sum();
    let mut out = Vec::with_capacity(total);
    for p in parts {
        out.extend_from_slice(p.as_ref());
    }
    out
}

/// Packs per-partition value columns into one dense column, in argument order.
pub fn pack_columns(parts: &[Column]) -> Result<Column> {
    if parts.is_empty() {
        return Err(OperatorError::EmptyInput("pack_columns"));
    }
    Ok(Column::concat(parts)?)
}

/// Number of bytes an exchange union moving these columns would copy — the
/// "intermediate data copying due to low selectivity input" the medium
/// mutation reacts to. Exposed for the profiler's memory claims.
pub fn pack_cost_bytes(parts: &[Column]) -> usize {
    parts.iter().map(Column::byte_size).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_oids_preserves_partition_order() {
        let a = vec![1u64, 2, 3];
        let b = vec![10u64];
        let c = vec![];
        let d = vec![20u64, 21];
        assert_eq!(pack_oids(&[a, b, c, d]), vec![1, 2, 3, 10, 20, 21]);
        assert!(pack_oids::<Vec<Oid>>(&[]).is_empty());
    }

    #[test]
    fn pack_oids_packs_from_borrowed_slices() {
        // Windowed callers pack straight from a shared backing: slices of
        // one vector, no per-part owned clones.
        let backing: Vec<Oid> = (0..10).collect();
        let parts: [&[Oid]; 3] = [&backing[0..4], &backing[4..4], &backing[4..10]];
        assert_eq!(pack_oids(&parts), backing);
    }

    #[test]
    fn pack_columns_concatenates() {
        let a = Column::from_i64(vec![1, 2]);
        let b = Column::from_i64(vec![3]);
        let out = pack_columns(&[a, b]).unwrap();
        assert_eq!(out.i64_values().unwrap(), &[1, 2, 3]);
        assert!(pack_columns(&[]).is_err());
    }

    #[test]
    fn pack_cost_tracks_bytes() {
        let a = Column::from_i64(vec![1, 2, 3]);
        let b = Column::from_i64(vec![4]);
        assert_eq!(pack_cost_bytes(&[a, b]), 32);
        assert_eq!(pack_cost_bytes(&[]), 0);
    }
}
