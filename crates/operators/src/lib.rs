//! Physical relational operators for the adaptive-parallelization engine.
//!
//! These are MonetDB-style *operator-at-a-time* primitives: each call
//! consumes whole columns (or column slices) and materializes its complete
//! result. The execution engine wraps them into dataflow plan nodes; the
//! adaptive parallelizer clones them over dynamically sized range partitions.
//!
//! Operator inventory (paper §2.1/§2.2):
//!
//! * [`mod@select`] — predicate evaluation producing a candidate oid list
//!   (`algebra.select` / `uselect`), optionally restricted by a previous
//!   candidate list (the "filter operator which ... accepts column and also a
//!   bit vector from another selection operator's output").
//! * [`mod@fetch`] — tuple reconstruction (`algebra.leftfetchjoin`) with the
//!   boundary-alignment handling of paper Fig. 9/10.
//! * [`join`] — hash join build and probe; only the outer side is ever
//!   partitioned, matching the paper's join parallelization.
//! * [`calc`] — vectorized arithmetic (`batcalc.*`).
//! * [`aggregate`] — scalar and single-attribute grouped aggregation with
//!   mergeable partial states (`aggr.sum`, `group.*`).
//! * [`exchange`] — the exchange-union operator (`mat.pack`) combining the
//!   results of cloned operators while preserving the mutation order.
//! * [`sort`] — order-by / top-n helpers.

#![warn(missing_docs)]

pub mod aggregate;
pub mod calc;
pub mod error;
pub mod exchange;
pub mod fetch;
pub mod join;
pub mod predicate;
pub mod select;
pub mod sort;

pub use aggregate::{
    grouped_agg, merge_grouped, scalar_agg, AggFunc, AggState, GroupKey, GroupedAgg,
};
pub use calc::{calc_col_col, calc_col_scalar, calc_scalar_col, BinaryOp};
pub use error::{OperatorError, Result};
pub use exchange::{pack_columns, pack_oids};
pub use fetch::{fetch, fetch_clamped};
pub use join::{JoinHashTable, JoinResult};
pub use predicate::{CmpOp, Predicate};
pub use select::{select, select_with_candidates, selectivity};
pub use sort::{sort_column, top_n_oids};
