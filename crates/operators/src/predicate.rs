//! Selection predicates.
//!
//! A [`Predicate`] describes the condition a select operator evaluates over a
//! column. Predicates are self-contained values (no closures) so that plan
//! nodes can be cloned freely during plan mutation and compared in tests.

use std::fmt;

use apq_columnar::strings::like_match;
use apq_columnar::{Column, DataType, ScalarValue};

use crate::error::{OperatorError, Result};

/// Comparison operator of a simple predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    fn holds<T: PartialOrd>(self, left: T, right: T) -> bool {
        match self {
            CmpOp::Eq => left == right,
            CmpOp::Ne => left != right,
            CmpOp::Lt => left < right,
            CmpOp::Le => left <= right,
            CmpOp::Gt => left > right,
            CmpOp::Ge => left >= right,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A predicate over a single column.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `column <op> constant`.
    Compare {
        /// Comparison operator.
        op: CmpOp,
        /// Constant compared against.
        value: ScalarValue,
    },
    /// `lo <= column <= hi` (bounds inclusive/exclusive per flags).
    Between {
        /// Lower bound.
        lo: ScalarValue,
        /// Upper bound.
        hi: ScalarValue,
        /// Whether the lower bound itself matches.
        lo_inclusive: bool,
        /// Whether the upper bound itself matches.
        hi_inclusive: bool,
    },
    /// SQL `LIKE` on a string column.
    Like {
        /// Pattern with `%` / `_` wildcards.
        pattern: String,
    },
    /// Membership in a set of integer values.
    InI64(Vec<i64>),
    /// Membership in a set of string values.
    InStr(Vec<String>),
    /// The column is a boolean column and the row is `true`.
    IsTrue,
    /// Both sub-predicates hold.
    And(Box<Predicate>, Box<Predicate>),
    /// At least one sub-predicate holds.
    Or(Box<Predicate>, Box<Predicate>),
    /// The sub-predicate does not hold.
    Not(Box<Predicate>),
}

impl Predicate {
    /// Convenience constructor for `column <op> value`.
    pub fn cmp(op: CmpOp, value: impl Into<ScalarValue>) -> Self {
        Predicate::Compare { op, value: value.into() }
    }

    /// Convenience constructor for an inclusive between.
    pub fn between(lo: impl Into<ScalarValue>, hi: impl Into<ScalarValue>) -> Self {
        Predicate::Between { lo: lo.into(), hi: hi.into(), lo_inclusive: true, hi_inclusive: true }
    }

    /// Convenience constructor for a half-open range `[lo, hi)`, which is how
    /// TPC-H date predicates (`>= date AND < date + interval`) are expressed.
    pub fn range(lo: impl Into<ScalarValue>, hi: impl Into<ScalarValue>) -> Self {
        Predicate::Between { lo: lo.into(), hi: hi.into(), lo_inclusive: true, hi_inclusive: false }
    }

    /// Convenience constructor for `LIKE`.
    pub fn like(pattern: impl Into<String>) -> Self {
        Predicate::Like { pattern: pattern.into() }
    }

    /// Conjunction helper.
    pub fn and(self, other: Predicate) -> Self {
        Predicate::And(Box::new(self), Box::new(other))
    }

    /// Disjunction helper.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Negation helper.
    pub fn negate(self) -> Self {
        Predicate::Not(Box::new(self))
    }

    /// Short human-readable description (used in plan pretty-printing).
    pub fn describe(&self) -> String {
        match self {
            Predicate::Compare { op, value } => format!("x {op} {value}"),
            Predicate::Between { lo, hi, lo_inclusive, hi_inclusive } => format!(
                "x in {}{lo}, {hi}{}",
                if *lo_inclusive { "[" } else { "(" },
                if *hi_inclusive { "]" } else { ")" }
            ),
            Predicate::Like { pattern } => format!("x LIKE '{pattern}'"),
            Predicate::InI64(v) => format!("x IN {v:?}"),
            Predicate::InStr(v) => format!("x IN {v:?}"),
            Predicate::IsTrue => "x".to_string(),
            Predicate::And(a, b) => format!("({}) AND ({})", a.describe(), b.describe()),
            Predicate::Or(a, b) => format!("({}) OR ({})", a.describe(), b.describe()),
            Predicate::Not(a) => format!("NOT ({})", a.describe()),
        }
    }

    /// Evaluates the predicate over every visible row of `column`, returning
    /// one boolean per row.
    ///
    /// The select operator uses this to build candidate lists; keeping the
    /// row-mask evaluation here keeps the select operator oblivious to types.
    pub fn eval_mask(&self, column: &Column) -> Result<Vec<bool>> {
        match self {
            Predicate::And(a, b) => {
                let mut m = a.eval_mask(column)?;
                let mb = b.eval_mask(column)?;
                for (x, y) in m.iter_mut().zip(mb) {
                    *x = *x && y;
                }
                Ok(m)
            }
            Predicate::Or(a, b) => {
                let mut m = a.eval_mask(column)?;
                let mb = b.eval_mask(column)?;
                for (x, y) in m.iter_mut().zip(mb) {
                    *x = *x || y;
                }
                Ok(m)
            }
            Predicate::Not(a) => {
                let mut m = a.eval_mask(column)?;
                for x in m.iter_mut() {
                    *x = !*x;
                }
                Ok(m)
            }
            _ => self.eval_leaf(column),
        }
    }

    fn type_error(&self, column: &Column) -> OperatorError {
        OperatorError::PredicateTypeMismatch {
            column_type: column.data_type().name(),
            predicate: self.describe(),
        }
    }

    fn eval_leaf(&self, column: &Column) -> Result<Vec<bool>> {
        match column.data_type() {
            DataType::Int64 => self.eval_i64(column.i64_values()?, column),
            DataType::Int32 => {
                let vals = column.i32_values()?;
                // Re-use the i64 paths by widening; predicates on dates are i32.
                self.eval_i64_iter(vals.iter().map(|&v| v as i64), vals.len(), column)
            }
            DataType::Float64 => self.eval_f64(column.f64_values()?, column),
            DataType::Bool => self.eval_bool(column.bool_values()?, column),
            DataType::Str => self.eval_str(column),
        }
    }

    fn eval_i64(&self, values: &[i64], column: &Column) -> Result<Vec<bool>> {
        self.eval_i64_iter(values.iter().copied(), values.len(), column)
    }

    fn eval_i64_iter<I: Iterator<Item = i64>>(
        &self,
        values: I,
        len: usize,
        column: &Column,
    ) -> Result<Vec<bool>> {
        let mut out = Vec::with_capacity(len);
        match self {
            Predicate::Compare { op, value } => {
                let rhs = value.as_i64().ok_or_else(|| self.type_error(column))?;
                out.extend(values.map(|v| op.holds(v, rhs)));
            }
            Predicate::Between { lo, hi, lo_inclusive, hi_inclusive } => {
                let lo = lo.as_i64().ok_or_else(|| self.type_error(column))?;
                let hi = hi.as_i64().ok_or_else(|| self.type_error(column))?;
                out.extend(values.map(|v| {
                    let ge = if *lo_inclusive { v >= lo } else { v > lo };
                    let le = if *hi_inclusive { v <= hi } else { v < hi };
                    ge && le
                }));
            }
            Predicate::InI64(set) => {
                out.extend(values.map(|v| set.contains(&v)));
            }
            _ => return Err(self.type_error(column)),
        }
        Ok(out)
    }

    fn eval_f64(&self, values: &[f64], column: &Column) -> Result<Vec<bool>> {
        let mut out = Vec::with_capacity(values.len());
        match self {
            Predicate::Compare { op, value } => {
                let rhs = value.as_f64().ok_or_else(|| self.type_error(column))?;
                out.extend(values.iter().map(|&v| op.holds(v, rhs)));
            }
            Predicate::Between { lo, hi, lo_inclusive, hi_inclusive } => {
                let lo = lo.as_f64().ok_or_else(|| self.type_error(column))?;
                let hi = hi.as_f64().ok_or_else(|| self.type_error(column))?;
                out.extend(values.iter().map(|&v| {
                    let ge = if *lo_inclusive { v >= lo } else { v > lo };
                    let le = if *hi_inclusive { v <= hi } else { v < hi };
                    ge && le
                }));
            }
            _ => return Err(self.type_error(column)),
        }
        Ok(out)
    }

    fn eval_bool(&self, values: &[bool], column: &Column) -> Result<Vec<bool>> {
        match self {
            Predicate::IsTrue => Ok(values.to_vec()),
            Predicate::Compare { op: CmpOp::Eq, value: ScalarValue::Bool(b) } => {
                Ok(values.iter().map(|&v| v == *b).collect())
            }
            _ => Err(self.type_error(column)),
        }
    }

    fn eval_str(&self, column: &Column) -> Result<Vec<bool>> {
        let (codes, dict) = column.str_codes()?;
        // Evaluate the predicate once per dictionary entry, then map codes.
        let dict_mask: Vec<bool> = match self {
            Predicate::Compare { op, value } => {
                let rhs = value.as_str().ok_or_else(|| self.type_error(column))?;
                dict.iter().map(|s| op.holds(s.as_str(), rhs)).collect()
            }
            Predicate::Like { pattern } => dict.iter().map(|s| like_match(pattern, s)).collect(),
            Predicate::InStr(set) => dict.iter().map(|s| set.iter().any(|x| x == s)).collect(),
            _ => return Err(self.type_error(column)),
        };
        Ok(codes.iter().map(|&c| dict_mask[c as usize]).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_i64() {
        let c = Column::from_i64(vec![1, 5, 10, 15]);
        let m = Predicate::cmp(CmpOp::Lt, 10i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![true, true, false, false]);
        let m = Predicate::cmp(CmpOp::Ge, 10i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, false, true, true]);
        let m = Predicate::cmp(CmpOp::Eq, 5i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, true, false, false]);
        let m = Predicate::cmp(CmpOp::Ne, 5i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![true, false, true, true]);
    }

    #[test]
    fn between_and_range() {
        let c = Column::from_i64(vec![1, 5, 10, 15]);
        let m = Predicate::between(5i64, 10i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, true, true, false]);
        let m = Predicate::range(5i64, 10i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, true, false, false]);
    }

    #[test]
    fn i32_dates_widen() {
        let c = Column::from_i32(vec![8035, 8400, 9000]);
        let m = Predicate::range(8035i64, 8400i64).eval_mask(&c).unwrap();
        assert_eq!(m, vec![true, false, false]);
    }

    #[test]
    fn float_predicates() {
        let c = Column::from_f64(vec![0.04, 0.05, 0.06, 0.07]);
        let m = Predicate::between(0.05, 0.07).eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, true, true, true]);
        let m = Predicate::cmp(CmpOp::Lt, 0.06).eval_mask(&c).unwrap();
        assert_eq!(m, vec![true, true, false, false]);
    }

    #[test]
    fn in_lists() {
        let c = Column::from_i64(vec![1, 2, 3, 4]);
        let m = Predicate::InI64(vec![2, 4]).eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, true, false, true]);

        let s = Column::from_strings(["AIR", "RAIL", "SHIP"]);
        let m = Predicate::InStr(vec!["AIR".into(), "SHIP".into()]).eval_mask(&s).unwrap();
        assert_eq!(m, vec![true, false, true]);
    }

    #[test]
    fn string_like_and_eq() {
        let c = Column::from_strings(["PROMO BRUSHED", "STANDARD", "PROMO PLATED"]);
        let m = Predicate::like("PROMO%").eval_mask(&c).unwrap();
        assert_eq!(m, vec![true, false, true]);
        let m = Predicate::cmp(CmpOp::Eq, "STANDARD").eval_mask(&c).unwrap();
        assert_eq!(m, vec![false, true, false]);
    }

    #[test]
    fn boolean_columns() {
        let c = Column::from_bool(vec![true, false, true]);
        assert_eq!(Predicate::IsTrue.eval_mask(&c).unwrap(), vec![true, false, true]);
        assert_eq!(
            Predicate::cmp(CmpOp::Eq, false).eval_mask(&c).unwrap(),
            vec![false, true, false]
        );
    }

    #[test]
    fn logical_combinators() {
        let c = Column::from_i64(vec![1, 5, 10, 15]);
        let p = Predicate::cmp(CmpOp::Gt, 1i64).and(Predicate::cmp(CmpOp::Lt, 15i64));
        assert_eq!(p.eval_mask(&c).unwrap(), vec![false, true, true, false]);
        let p = Predicate::cmp(CmpOp::Eq, 1i64).or(Predicate::cmp(CmpOp::Eq, 15i64));
        assert_eq!(p.eval_mask(&c).unwrap(), vec![true, false, false, true]);
        let p = Predicate::cmp(CmpOp::Eq, 1i64).negate();
        assert_eq!(p.eval_mask(&c).unwrap(), vec![false, true, true, true]);
    }

    #[test]
    fn type_mismatches_are_errors() {
        let c = Column::from_i64(vec![1]);
        assert!(Predicate::like("%x%").eval_mask(&c).is_err());
        assert!(Predicate::cmp(CmpOp::Eq, "str").eval_mask(&c).is_err());
        let s = Column::from_strings(["a"]);
        assert!(Predicate::between(1i64, 2i64).eval_mask(&s).is_err());
        let b = Column::from_bool(vec![true]);
        assert!(Predicate::cmp(CmpOp::Lt, 1i64).eval_mask(&b).is_err());
    }

    #[test]
    fn describe_is_readable() {
        assert_eq!(Predicate::cmp(CmpOp::Lt, 3i64).describe(), "x < 3");
        assert!(Predicate::range(1i64, 2i64).describe().contains('['));
        assert!(Predicate::like("%P%").describe().contains("LIKE"));
        assert!(Predicate::cmp(CmpOp::Eq, 1i64)
            .and(Predicate::cmp(CmpOp::Eq, 2i64))
            .describe()
            .contains("AND"));
    }
}
