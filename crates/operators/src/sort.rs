//! Sorting and top-n helpers.
//!
//! The evaluated queries only need ordering of (small) aggregation results
//! and top-n style output; the operators are nevertheless implemented over
//! arbitrary columns so that the advanced-mutation path for `sort` has a real
//! operator to clone (per-partition sort + k-way merge).

use apq_columnar::{Column, DataType, Oid};

use crate::error::{OperatorError, Result};

/// Sorts the visible rows of a column and returns the sorted column together
/// with the permutation (as absolute oids) that produced it.
pub fn sort_column(column: &Column, descending: bool) -> Result<(Column, Vec<Oid>)> {
    let n = column.len();
    let mut perm: Vec<usize> = (0..n).collect();
    match column.data_type() {
        DataType::Int64 => {
            let v = column.i64_values()?;
            perm.sort_by_key(|&i| v[i]);
        }
        DataType::Int32 => {
            let v = column.i32_values()?;
            perm.sort_by_key(|&i| v[i]);
        }
        DataType::Float64 => {
            let v = column.f64_values()?;
            perm.sort_by(|&a, &b| v[a].total_cmp(&v[b]));
        }
        DataType::Bool => {
            let v = column.bool_values()?;
            perm.sort_by_key(|&i| v[i]);
        }
        DataType::Str => {
            let (codes, dict) = column.str_codes()?;
            perm.sort_by(|&a, &b| dict[codes[a] as usize].cmp(&dict[codes[b] as usize]));
        }
    }
    if descending {
        perm.reverse();
    }
    let sorted = column.gather_positions(&perm)?;
    let base = column.base_oid();
    Ok((sorted, perm.into_iter().map(|p| base + p as Oid).collect()))
}

/// Returns the absolute oids of the `n` largest (or smallest) values.
pub fn top_n_oids(column: &Column, n: usize, largest: bool) -> Result<Vec<Oid>> {
    if n == 0 {
        return Err(OperatorError::EmptyInput("top_n"));
    }
    let (_, order) = sort_column(column, largest)?;
    Ok(order.into_iter().take(n).collect())
}

/// Merges per-partition sorted columns into one globally sorted column
/// (the combiner of a parallelized sort).
pub fn merge_sorted(parts: &[Column], descending: bool) -> Result<Column> {
    if parts.is_empty() {
        return Err(OperatorError::EmptyInput("merge_sorted"));
    }
    // The partition results are small relative to the base data (they are
    // produced after filtering), so concatenate + re-sort keeps the code
    // simple and is within a small constant of a k-way merge.
    let packed = Column::concat(parts)?;
    let (sorted, _) = sort_column(&packed, descending)?;
    Ok(sorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_ints_and_reports_order() {
        let c = Column::from_i64(vec![30, 10, 20]);
        let (sorted, order) = sort_column(&c, false).unwrap();
        assert_eq!(sorted.i64_values().unwrap(), &[10, 20, 30]);
        assert_eq!(order, vec![1, 2, 0]);
        let (sorted, order) = sort_column(&c, true).unwrap();
        assert_eq!(sorted.i64_values().unwrap(), &[30, 20, 10]);
        assert_eq!(order, vec![0, 2, 1]);
    }

    #[test]
    fn sort_respects_slice_oids() {
        let base = Column::from_i64(vec![9, 8, 7, 3, 2, 1]);
        let part = base.slice(3, 3).unwrap();
        let (_, order) = sort_column(&part, false).unwrap();
        assert_eq!(order, vec![5, 4, 3]);
    }

    #[test]
    fn sorts_floats_strings_bools() {
        let f = Column::from_f64(vec![2.5, 1.5]);
        assert_eq!(sort_column(&f, false).unwrap().0.f64_values().unwrap(), &[1.5, 2.5]);
        let s = Column::from_strings(["b", "a", "c"]);
        let (sorted, _) = sort_column(&s, false).unwrap();
        assert_eq!(sorted.get(0).unwrap().as_str().map(String::from), Some("a".into()));
        let b = Column::from_bool(vec![true, false]);
        assert_eq!(sort_column(&b, false).unwrap().0.bool_values().unwrap(), &[false, true]);
        let i = Column::from_i32(vec![5, -1]);
        assert_eq!(sort_column(&i, false).unwrap().0.i32_values().unwrap(), &[-1, 5]);
    }

    #[test]
    fn top_n() {
        let c = Column::from_i64(vec![5, 9, 1, 7]);
        assert_eq!(top_n_oids(&c, 2, true).unwrap(), vec![1, 3]);
        assert_eq!(top_n_oids(&c, 2, false).unwrap(), vec![2, 0]);
        assert_eq!(top_n_oids(&c, 10, true).unwrap().len(), 4);
        assert!(top_n_oids(&c, 0, true).is_err());
    }

    #[test]
    fn merge_sorted_equals_global_sort() {
        let values: Vec<i64> = (0..500).map(|v| (v * 37) % 101).collect();
        let whole = Column::from_i64(values.clone());
        let (expected, _) = sort_column(&whole, false).unwrap();
        let mut parts = Vec::new();
        for chunk in values.chunks(123) {
            let (sorted, _) = sort_column(&Column::from_i64(chunk.to_vec()), false).unwrap();
            parts.push(sorted);
        }
        let merged = merge_sorted(&parts, false).unwrap();
        assert_eq!(merged.i64_values().unwrap(), expected.i64_values().unwrap());
        assert!(merge_sorted(&[], false).is_err());
    }
}
