//! Scalar and grouped aggregation with mergeable partial states.
//!
//! Adaptive parallelization clones aggregation operators over partitions and
//! later combines their outputs (the *advanced mutation*, paper §2.1). That
//! only works if per-partition aggregates are *partial states* that can be
//! merged: sums add up, counts add up, min/max take the extremum and avg
//! carries `(sum, count)`. Both the scalar aggregate ([`AggState`]) and the
//! single-attribute grouped aggregate ([`GroupedAgg`]) are therefore
//! represented as mergeable states with a final `finish` step, exactly like
//! the paper's `aggr.sum` over `mat.pack`-ed partials in the Q14 plan.

use std::collections::HashMap;

use apq_columnar::{Column, DataType, ScalarValue};

use crate::error::{OperatorError, Result};

/// Aggregate function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Sum of values.
    Sum,
    /// Row count.
    Count,
    /// Minimum value.
    Min,
    /// Maximum value.
    Max,
    /// Arithmetic mean.
    Avg,
}

impl AggFunc {
    /// Short name for plan pretty-printing.
    pub fn name(self) -> &'static str {
        match self {
            AggFunc::Sum => "sum",
            AggFunc::Count => "count",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }
}

/// Mergeable partial state of one aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct AggState {
    func: AggFunc,
    saw_float: bool,
    count: i64,
    sum_i: i64,
    sum_f: f64,
    min_i: i64,
    max_i: i64,
    min_f: f64,
    max_f: f64,
}

impl AggState {
    /// Fresh (empty) state for the given function.
    pub fn new(func: AggFunc) -> Self {
        AggState {
            func,
            saw_float: false,
            count: 0,
            sum_i: 0,
            sum_f: 0.0,
            min_i: i64::MAX,
            max_i: i64::MIN,
            min_f: f64::INFINITY,
            max_f: f64::NEG_INFINITY,
        }
    }

    /// The aggregate function this state computes.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Number of accumulated rows.
    pub fn count(&self) -> i64 {
        self.count
    }

    /// Accumulates one integer value.
    pub fn update_i64(&mut self, v: i64) {
        self.count += 1;
        self.sum_i = self.sum_i.wrapping_add(v);
        self.sum_f += v as f64;
        self.min_i = self.min_i.min(v);
        self.max_i = self.max_i.max(v);
        self.min_f = self.min_f.min(v as f64);
        self.max_f = self.max_f.max(v as f64);
    }

    /// Accumulates one float value.
    pub fn update_f64(&mut self, v: f64) {
        self.saw_float = true;
        self.count += 1;
        self.sum_f += v;
        self.min_f = self.min_f.min(v);
        self.max_f = self.max_f.max(v);
    }

    /// Accumulates every visible row of a column.
    pub fn update_column(&mut self, column: &Column) -> Result<()> {
        match column.data_type() {
            DataType::Int64 => {
                for &v in column.i64_values()? {
                    self.update_i64(v);
                }
            }
            DataType::Int32 => {
                for &v in column.i32_values()? {
                    self.update_i64(v as i64);
                }
            }
            DataType::Float64 => {
                for &v in column.f64_values()? {
                    self.update_f64(v);
                }
            }
            DataType::Bool => {
                for &v in column.bool_values()? {
                    self.update_i64(v as i64);
                }
            }
            DataType::Str => {
                if self.func != AggFunc::Count {
                    return Err(OperatorError::IncompatibleAggregates(format!(
                        "{} over a string column",
                        self.func.name()
                    )));
                }
                self.count += column.len() as i64;
            }
        }
        Ok(())
    }

    /// Merges another partial state into this one.
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        if self.func != other.func {
            return Err(OperatorError::IncompatibleAggregates(format!(
                "{} vs {}",
                self.func.name(),
                other.func.name()
            )));
        }
        self.saw_float |= other.saw_float;
        self.count += other.count;
        self.sum_i = self.sum_i.wrapping_add(other.sum_i);
        self.sum_f += other.sum_f;
        self.min_i = self.min_i.min(other.min_i);
        self.max_i = self.max_i.max(other.max_i);
        self.min_f = self.min_f.min(other.min_f);
        self.max_f = self.max_f.max(other.max_f);
        Ok(())
    }

    /// Finalizes the state into a scalar result.
    ///
    /// Empty inputs yield `0` for sum/count and `0.0` for avg; min/max over
    /// an empty input yield `I64(0)` (the engine never produces that case for
    /// the evaluated queries, but the behaviour is defined and tested).
    pub fn finish(&self) -> ScalarValue {
        match self.func {
            AggFunc::Count => ScalarValue::I64(self.count),
            AggFunc::Sum => {
                if self.saw_float {
                    ScalarValue::F64(self.sum_f)
                } else {
                    ScalarValue::I64(self.sum_i)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    ScalarValue::F64(0.0)
                } else {
                    ScalarValue::F64(self.sum_f / self.count as f64)
                }
            }
            AggFunc::Min => {
                if self.count == 0 {
                    ScalarValue::I64(0)
                } else if self.saw_float {
                    ScalarValue::F64(self.min_f)
                } else {
                    ScalarValue::I64(self.min_i)
                }
            }
            AggFunc::Max => {
                if self.count == 0 {
                    ScalarValue::I64(0)
                } else if self.saw_float {
                    ScalarValue::F64(self.max_f)
                } else {
                    ScalarValue::I64(self.max_i)
                }
            }
        }
    }
}

/// Computes the partial aggregate of `func` over a whole column.
pub fn scalar_agg(func: AggFunc, column: &Column) -> Result<AggState> {
    let mut state = AggState::new(func);
    state.update_column(column)?;
    Ok(state)
}

/// Grouping key of the single-attribute grouped aggregate.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GroupKey {
    /// Integer key (covers `Int64`, `Int32` and `Bool` key columns).
    I64(i64),
    /// String key.
    Str(String),
}

impl std::fmt::Display for GroupKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupKey::I64(v) => write!(f, "{v}"),
            GroupKey::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Mergeable result of a single-attribute grouped aggregation.
#[derive(Debug, Clone)]
pub struct GroupedAgg {
    func: AggFunc,
    keys: Vec<GroupKey>,
    states: Vec<AggState>,
    index: HashMap<GroupKey, usize>,
}

impl GroupedAgg {
    /// Empty grouped aggregate for `func`.
    pub fn new(func: AggFunc) -> Self {
        GroupedAgg { func, keys: Vec::new(), states: Vec::new(), index: HashMap::new() }
    }

    /// The aggregate function.
    pub fn func(&self) -> AggFunc {
        self.func
    }

    /// Number of groups.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no groups were formed.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    fn state_mut(&mut self, key: GroupKey) -> &mut AggState {
        let func = self.func;
        let idx = *self.index.entry(key.clone()).or_insert_with(|| {
            self.keys.push(key);
            self.states.push(AggState::new(func));
            self.keys.len() - 1
        });
        &mut self.states[idx]
    }

    /// Finalized value of one group, if present.
    pub fn get(&self, key: &GroupKey) -> Option<ScalarValue> {
        self.index.get(key).map(|&i| self.states[i].finish())
    }

    /// Merges another grouped aggregate (same function) into this one.
    pub fn merge(&mut self, other: &GroupedAgg) -> Result<()> {
        if self.func != other.func {
            return Err(OperatorError::IncompatibleAggregates(format!(
                "{} vs {}",
                self.func.name(),
                other.func.name()
            )));
        }
        for (key, state) in other.keys.iter().zip(&other.states) {
            self.state_mut(key.clone()).merge(state)?;
        }
        Ok(())
    }

    /// Groups sorted by key with their finalized values — the deterministic
    /// result representation used to compare serial and parallel plans.
    pub fn finish_sorted(&self) -> Vec<(GroupKey, ScalarValue)> {
        let mut out: Vec<(GroupKey, ScalarValue)> =
            self.keys.iter().cloned().zip(self.states.iter().map(AggState::finish)).collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Approximate memory footprint in bytes (profiler memory claim).
    pub fn byte_size(&self) -> usize {
        self.keys.len() * (std::mem::size_of::<GroupKey>() + std::mem::size_of::<AggState>())
    }
}

/// Converts a key column row into a [`GroupKey`], using a per-dictionary-code
/// cache for string columns so the conversion stays O(1) per row.
fn key_extractor(keys: &Column) -> Result<Box<dyn Fn(usize) -> GroupKey + '_>> {
    match keys.data_type() {
        DataType::Int64 => {
            let vals = keys.i64_values()?;
            Ok(Box::new(move |i| GroupKey::I64(vals[i])))
        }
        DataType::Int32 => {
            let vals = keys.i32_values()?;
            Ok(Box::new(move |i| GroupKey::I64(vals[i] as i64)))
        }
        DataType::Bool => {
            let vals = keys.bool_values()?;
            Ok(Box::new(move |i| GroupKey::I64(vals[i] as i64)))
        }
        DataType::Str => {
            let (codes, dict) = keys.str_codes()?;
            Ok(Box::new(move |i| GroupKey::Str(dict[codes[i] as usize].clone())))
        }
        DataType::Float64 => Err(OperatorError::IncompatibleAggregates(
            "float group-by keys are not supported".to_string(),
        )),
    }
}

/// Single-attribute grouped aggregation: `SELECT key, func(value) GROUP BY key`.
///
/// `keys` and `values` must be equally long and positionally aligned (they
/// usually are two columns fetched through the same candidate list).
pub fn grouped_agg(func: AggFunc, keys: &Column, values: &Column) -> Result<GroupedAgg> {
    if keys.len() != values.len() {
        return Err(OperatorError::LengthMismatch { left: keys.len(), right: values.len() });
    }
    let extract = key_extractor(keys)?;
    let mut agg = GroupedAgg::new(func);
    match values.data_type() {
        DataType::Int64 => {
            let vals = values.i64_values()?;
            for (i, &v) in vals.iter().enumerate() {
                agg.state_mut(extract(i)).update_i64(v);
            }
        }
        DataType::Int32 => {
            let vals = values.i32_values()?;
            for (i, &v) in vals.iter().enumerate() {
                agg.state_mut(extract(i)).update_i64(v as i64);
            }
        }
        DataType::Float64 => {
            let vals = values.f64_values()?;
            for (i, &v) in vals.iter().enumerate() {
                agg.state_mut(extract(i)).update_f64(v);
            }
        }
        DataType::Bool => {
            let vals = values.bool_values()?;
            for (i, &v) in vals.iter().enumerate() {
                agg.state_mut(extract(i)).update_i64(v as i64);
            }
        }
        DataType::Str => {
            if func != AggFunc::Count {
                return Err(OperatorError::IncompatibleAggregates(format!(
                    "{} over a string value column",
                    func.name()
                )));
            }
            for i in 0..keys.len() {
                agg.state_mut(extract(i)).update_i64(1);
            }
        }
    }
    Ok(agg)
}

/// Merges per-partition grouped aggregates into one (the advanced mutation's
/// combiner). The inputs are consumed in order; order does not affect the
/// result because the partial states commute.
pub fn merge_grouped(parts: &[GroupedAgg]) -> Result<GroupedAgg> {
    let first = parts.first().ok_or(OperatorError::EmptyInput("merge_grouped"))?;
    let mut out = GroupedAgg::new(first.func());
    for p in parts {
        out.merge(p)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sum_count_min_max_avg() {
        let c = Column::from_i64(vec![3, 1, 4, 1, 5]);
        assert_eq!(scalar_agg(AggFunc::Sum, &c).unwrap().finish(), ScalarValue::I64(14));
        assert_eq!(scalar_agg(AggFunc::Count, &c).unwrap().finish(), ScalarValue::I64(5));
        assert_eq!(scalar_agg(AggFunc::Min, &c).unwrap().finish(), ScalarValue::I64(1));
        assert_eq!(scalar_agg(AggFunc::Max, &c).unwrap().finish(), ScalarValue::I64(5));
        assert_eq!(scalar_agg(AggFunc::Avg, &c).unwrap().finish(), ScalarValue::F64(2.8));
    }

    #[test]
    fn scalar_float_and_i32_and_bool() {
        let f = Column::from_f64(vec![1.5, 2.5]);
        assert_eq!(scalar_agg(AggFunc::Sum, &f).unwrap().finish(), ScalarValue::F64(4.0));
        assert_eq!(scalar_agg(AggFunc::Min, &f).unwrap().finish(), ScalarValue::F64(1.5));
        let i = Column::from_i32(vec![2, 3]);
        assert_eq!(scalar_agg(AggFunc::Sum, &i).unwrap().finish(), ScalarValue::I64(5));
        let b = Column::from_bool(vec![true, true, false]);
        assert_eq!(scalar_agg(AggFunc::Sum, &b).unwrap().finish(), ScalarValue::I64(2));
    }

    #[test]
    fn scalar_empty_inputs() {
        let c = Column::from_i64(vec![]);
        assert_eq!(scalar_agg(AggFunc::Sum, &c).unwrap().finish(), ScalarValue::I64(0));
        assert_eq!(scalar_agg(AggFunc::Count, &c).unwrap().finish(), ScalarValue::I64(0));
        assert_eq!(scalar_agg(AggFunc::Avg, &c).unwrap().finish(), ScalarValue::F64(0.0));
        assert_eq!(scalar_agg(AggFunc::Min, &c).unwrap().finish(), ScalarValue::I64(0));
    }

    #[test]
    fn scalar_strings_only_countable() {
        let c = Column::from_strings(["a", "b"]);
        assert_eq!(scalar_agg(AggFunc::Count, &c).unwrap().finish(), ScalarValue::I64(2));
        assert!(scalar_agg(AggFunc::Sum, &c).is_err());
    }

    #[test]
    fn partial_merge_equals_whole_column() {
        let values: Vec<i64> = (0..1000).map(|v| (v * 31) % 97).collect();
        let whole = Column::from_i64(values.clone());
        for func in [AggFunc::Sum, AggFunc::Count, AggFunc::Min, AggFunc::Max, AggFunc::Avg] {
            let expected = scalar_agg(func, &whole).unwrap().finish();
            let mut merged = AggState::new(func);
            for chunk in values.chunks(137) {
                let part = scalar_agg(func, &Column::from_i64(chunk.to_vec())).unwrap();
                merged.merge(&part).unwrap();
            }
            assert_eq!(merged.finish(), expected, "func {:?}", func);
        }
    }

    #[test]
    fn merge_rejects_mixed_functions() {
        let mut a = AggState::new(AggFunc::Sum);
        let b = AggState::new(AggFunc::Count);
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn grouped_agg_by_int_key() {
        let keys = Column::from_i64(vec![1, 2, 1, 3, 2, 1]);
        let vals = Column::from_i64(vec![10, 20, 30, 40, 50, 60]);
        let g = grouped_agg(AggFunc::Sum, &keys, &vals).unwrap();
        assert_eq!(g.len(), 3);
        assert_eq!(g.get(&GroupKey::I64(1)), Some(ScalarValue::I64(100)));
        assert_eq!(g.get(&GroupKey::I64(2)), Some(ScalarValue::I64(70)));
        assert_eq!(g.get(&GroupKey::I64(3)), Some(ScalarValue::I64(40)));
        assert_eq!(g.get(&GroupKey::I64(9)), None);
        assert!(g.byte_size() > 0);
    }

    #[test]
    fn grouped_agg_by_string_key_and_count() {
        let keys = Column::from_strings(["AIR", "RAIL", "AIR", "SHIP"]);
        let vals = Column::from_strings(["x", "y", "z", "w"]);
        let g = grouped_agg(AggFunc::Count, &keys, &vals).unwrap();
        assert_eq!(g.get(&GroupKey::Str("AIR".into())), Some(ScalarValue::I64(2)));
        assert_eq!(g.get(&GroupKey::Str("SHIP".into())), Some(ScalarValue::I64(1)));
        // Non-count aggregates over string values are rejected.
        assert!(grouped_agg(AggFunc::Sum, &keys, &vals).is_err());
        // Float group keys are rejected.
        let fkeys = Column::from_f64(vec![1.0]);
        let v = Column::from_i64(vec![1]);
        assert!(grouped_agg(AggFunc::Sum, &fkeys, &v).is_err());
    }

    #[test]
    fn grouped_merge_equals_whole() {
        let n = 2000;
        let keys: Vec<i64> = (0..n).map(|v| v % 17).collect();
        let vals: Vec<i64> = (0..n).map(|v| v * 3).collect();
        let whole = grouped_agg(
            AggFunc::Sum,
            &Column::from_i64(keys.clone()),
            &Column::from_i64(vals.clone()),
        )
        .unwrap();
        let mut parts = Vec::new();
        let kcol = Column::from_i64(keys);
        let vcol = Column::from_i64(vals);
        for (s, l) in [(0usize, 700usize), (700, 800), (1500, 500)] {
            parts.push(
                grouped_agg(AggFunc::Sum, &kcol.slice(s, l).unwrap(), &vcol.slice(s, l).unwrap())
                    .unwrap(),
            );
        }
        let merged = merge_grouped(&parts).unwrap();
        assert_eq!(merged.finish_sorted(), whole.finish_sorted());
    }

    #[test]
    fn grouped_errors() {
        let keys = Column::from_i64(vec![1, 2]);
        let vals = Column::from_i64(vec![1]);
        assert!(grouped_agg(AggFunc::Sum, &keys, &vals).is_err());
        assert!(merge_grouped(&[]).is_err());
        let mut a = GroupedAgg::new(AggFunc::Sum);
        let b = GroupedAgg::new(AggFunc::Count);
        assert!(a.merge(&b).is_err());
        assert!(a.is_empty());
    }

    #[test]
    fn group_key_display_and_order() {
        assert_eq!(GroupKey::I64(3).to_string(), "3");
        assert_eq!(GroupKey::Str("x".into()).to_string(), "x");
        assert!(GroupKey::I64(1) < GroupKey::I64(2));
        assert!(GroupKey::I64(1) < GroupKey::Str("a".into()));
    }
}
