//! The select operator: predicate evaluation producing a candidate oid list.
//!
//! The output is a list of *absolute* oids (positions in the base column),
//! not positions within the slice — this is what keeps the results of select
//! clones running on different dynamic partitions directly combinable by the
//! exchange-union operator and directly usable by tuple reconstruction.

use apq_columnar::{Column, Oid};

use crate::error::Result;
use crate::predicate::Predicate;

/// Evaluates `predicate` over every visible row of `column` and returns the
/// absolute oids of matching rows, in ascending order.
pub fn select(column: &Column, predicate: &Predicate) -> Result<Vec<Oid>> {
    let mask = predicate.eval_mask(column)?;
    let base = column.base_oid();
    let mut out = Vec::new();
    for (i, hit) in mask.into_iter().enumerate() {
        if hit {
            out.push(base + i as Oid);
        }
    }
    Ok(out)
}

/// Evaluates `predicate` only for the rows named by `candidates` (absolute
/// oids) and returns the surviving oids, preserving the candidate order.
///
/// This is the second select flavour of paper §2.2: a filter that accepts a
/// column *and* the output of a previous selection. Candidates that fall
/// outside the column slice are ignored (they belong to another partition's
/// clone and will be evaluated there).
pub fn select_with_candidates(
    column: &Column,
    predicate: &Predicate,
    candidates: &[Oid],
) -> Result<Vec<Oid>> {
    let lo = column.base_oid();
    let hi = column.end_oid();
    let in_range: Vec<Oid> = candidates.iter().copied().filter(|&o| o >= lo && o < hi).collect();
    if in_range.is_empty() {
        return Ok(Vec::new());
    }
    let gathered = column.gather_oids(&in_range)?;
    let mask = predicate.eval_mask(&gathered)?;
    Ok(in_range.into_iter().zip(mask).filter_map(|(oid, hit)| hit.then_some(oid)).collect())
}

/// Fraction of rows of `column` that satisfy `predicate` (test / workload helper).
pub fn selectivity(column: &Column, predicate: &Predicate) -> Result<f64> {
    if column.is_empty() {
        return Ok(0.0);
    }
    let hits = select(column, predicate)?.len();
    Ok(hits as f64 / column.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predicate::CmpOp;

    #[test]
    fn select_returns_absolute_oids() {
        let base = Column::from_i64((0..100).collect());
        let slice = base.slice(40, 20).unwrap(); // oids [40, 60)
        let oids = select(&slice, &Predicate::cmp(CmpOp::Ge, 55i64)).unwrap();
        assert_eq!(oids, vec![55, 56, 57, 58, 59]);
    }

    #[test]
    fn select_on_full_column() {
        let c = Column::from_i64(vec![5, 1, 9, 3]);
        let oids = select(&c, &Predicate::cmp(CmpOp::Gt, 3i64)).unwrap();
        assert_eq!(oids, vec![0, 2]);
        let none = select(&c, &Predicate::cmp(CmpOp::Gt, 100i64)).unwrap();
        assert!(none.is_empty());
    }

    #[test]
    fn partitioned_selects_union_to_serial_select() {
        let values: Vec<i64> = (0..1000).map(|v| (v * 7919) % 100).collect();
        let c = Column::from_i64(values);
        let pred = Predicate::cmp(CmpOp::Lt, 37i64);
        let serial = select(&c, &pred).unwrap();

        let mut packed = Vec::new();
        for (start, len) in [(0usize, 400usize), (400, 350), (750, 250)] {
            let part = c.slice(start, len).unwrap();
            packed.extend(select(&part, &pred).unwrap());
        }
        assert_eq!(packed, serial);
    }

    #[test]
    fn candidate_select_preserves_order_and_filters() {
        let c = Column::from_i64(vec![10, 20, 30, 40, 50]);
        let cands = vec![4, 1, 3];
        let out = select_with_candidates(&c, &Predicate::cmp(CmpOp::Ge, 40i64), &cands).unwrap();
        assert_eq!(out, vec![4, 3]);
    }

    #[test]
    fn candidate_select_ignores_out_of_partition_oids() {
        let base = Column::from_i64((0..100).collect());
        let part = base.slice(50, 50).unwrap();
        // Candidates 10 and 20 belong to the other partition: silently skipped.
        let out =
            select_with_candidates(&part, &Predicate::cmp(CmpOp::Ge, 0i64), &[10, 20, 60, 70])
                .unwrap();
        assert_eq!(out, vec![60, 70]);
        // All candidates out of range.
        let out =
            select_with_candidates(&part, &Predicate::cmp(CmpOp::Ge, 0i64), &[1, 2, 3]).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn selectivity_helper() {
        let c = Column::from_i64((0..100).collect());
        let s = selectivity(&c, &Predicate::cmp(CmpOp::Lt, 25i64)).unwrap();
        assert!((s - 0.25).abs() < 1e-9);
        let empty = Column::from_i64(vec![]);
        assert_eq!(selectivity(&empty, &Predicate::cmp(CmpOp::Lt, 1i64)).unwrap(), 0.0);
    }
}
