//! Hash join (build + probe).
//!
//! The paper analyzes the hash-join implementation "as it suits most
//! workloads due to the omnipresence of non-sorted data" and parallelizes it
//! by splitting only the larger (outer) input into equi-range partitions
//! while the hash table built on the inner input is shared by all probe
//! clones (§2.1, Fig. 4). Accordingly:
//!
//! * [`JoinHashTable::build`] builds a chained hash table over the inner key
//!   column once; the table is immutable afterwards and cheap to share
//!   (`Arc`) between probe clones.
//! * [`JoinHashTable::probe`] probes with an outer key column (a slice of the
//!   outer base column or a fetched intermediate) and produces matching
//!   `(outer_oid, inner_oid)` pairs.
//!
//! The table is a classic bucket-head + next-chain layout specialized for
//! integer keys — no per-bucket allocations, cache-friendly probing.

use apq_columnar::{Column, DataType, Oid};

use crate::error::{OperatorError, Result};

const EMPTY: u32 = u32::MAX;

/// An immutable hash table over the inner (build-side) join keys.
#[derive(Debug)]
pub struct JoinHashTable {
    mask: u64,
    heads: Vec<u32>,
    next: Vec<u32>,
    keys: Vec<i64>,
    oids: Vec<Oid>,
}

/// The output of a probe: parallel vectors of matching outer and inner oids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JoinResult {
    /// Oid on the probe (outer) side for each match.
    pub outer_oids: Vec<Oid>,
    /// Oid on the build (inner) side for each match.
    pub inner_oids: Vec<Oid>,
}

impl JoinResult {
    /// Number of matching pairs.
    pub fn len(&self) -> usize {
        self.outer_oids.len()
    }

    /// True when no pairs matched.
    pub fn is_empty(&self) -> bool {
        self.outer_oids.is_empty()
    }

    /// Concatenates several probe results in argument order (exchange union).
    pub fn concat(parts: &[JoinResult]) -> JoinResult {
        let total: usize = parts.iter().map(JoinResult::len).sum();
        let mut out = JoinResult {
            outer_oids: Vec::with_capacity(total),
            inner_oids: Vec::with_capacity(total),
        };
        for p in parts {
            out.outer_oids.extend_from_slice(&p.outer_oids);
            out.inner_oids.extend_from_slice(&p.inner_oids);
        }
        out
    }

    /// Concatenates borrowed `(outer, inner)` pair windows in argument order.
    ///
    /// The slice-based flavour of [`JoinResult::concat`], for callers holding
    /// windowed views over shared results: packs straight from the backing
    /// (two output allocations total, no per-part intermediate clones). Each
    /// part's slices must have equal length.
    pub fn concat_parts(parts: &[(&[Oid], &[Oid])]) -> JoinResult {
        let total: usize = parts.iter().map(|(o, _)| o.len()).sum();
        let mut out = JoinResult {
            outer_oids: Vec::with_capacity(total),
            inner_oids: Vec::with_capacity(total),
        };
        for (outer, inner) in parts {
            debug_assert_eq!(outer.len(), inner.len(), "join part windows must be parallel");
            out.outer_oids.extend_from_slice(outer);
            out.inner_oids.extend_from_slice(inner);
        }
        out
    }
}

#[inline]
fn hash_key(key: i64, mask: u64) -> usize {
    // Fibonacci hashing: cheap, good spread for dense and sparse keys alike.
    ((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32 & mask) as usize
}

/// Extracts the visible values of an integer key column, widened to `i64`.
fn key_values(column: &Column) -> Result<Vec<i64>> {
    match column.data_type() {
        DataType::Int64 => Ok(column.i64_values()?.to_vec()),
        DataType::Int32 => Ok(column.i32_values()?.iter().map(|&v| v as i64).collect()),
        other => Err(OperatorError::UnsupportedJoinKey(other.name())),
    }
}

impl JoinHashTable {
    /// Builds the hash table over the inner key column. Entry `i` records the
    /// absolute oid `inner.base_oid() + i`.
    pub fn build(inner: &Column) -> Result<JoinHashTable> {
        let keys = key_values(inner)?;
        let n = keys.len();
        let n_buckets = (n.max(1) * 2).next_power_of_two();
        let mask = (n_buckets - 1) as u64;
        let mut heads = vec![EMPTY; n_buckets];
        let mut next = vec![EMPTY; n];
        let base = inner.base_oid();
        let oids: Vec<Oid> = (0..n as u64).map(|i| base + i).collect();
        for (i, &key) in keys.iter().enumerate() {
            let b = hash_key(key, mask);
            next[i] = heads[b];
            heads[b] = i as u32;
        }
        Ok(JoinHashTable { mask, heads, next, keys, oids })
    }

    /// Number of build-side entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when the build side was empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Approximate memory footprint in bytes (profiler memory claim).
    pub fn byte_size(&self) -> usize {
        self.heads.len() * 4 + self.next.len() * 4 + self.keys.len() * 8 + self.oids.len() * 8
    }

    /// Returns the inner oids whose key equals `key`.
    pub fn lookup(&self, key: i64) -> Vec<Oid> {
        let mut out = Vec::new();
        let mut e = self.heads[hash_key(key, self.mask)];
        while e != EMPTY {
            let i = e as usize;
            if self.keys[i] == key {
                out.push(self.oids[i]);
            }
            e = self.next[i];
        }
        out
    }

    /// Probes the table with an outer key column. Each outer row's absolute
    /// oid is paired with every matching inner oid.
    pub fn probe(&self, outer: &Column) -> Result<JoinResult> {
        let keys = key_values(outer)?;
        let base = outer.base_oid();
        let mut result = JoinResult::default();
        for (i, &key) in keys.iter().enumerate() {
            let mut e = self.heads[hash_key(key, self.mask)];
            while e != EMPTY {
                let j = e as usize;
                if self.keys[j] == key {
                    result.outer_oids.push(base + i as Oid);
                    result.inner_oids.push(self.oids[j]);
                }
                e = self.next[j];
            }
        }
        Ok(result)
    }

    /// Probes with explicit outer oids: `outer_oids[i]` is reported for row
    /// `i` of `outer_keys` instead of `outer_keys.base_oid() + i`. Used when
    /// the outer keys were produced by a fetch over a candidate list, so the
    /// join result keeps referring to base-table oids.
    pub fn probe_with_oids(&self, outer_keys: &Column, outer_oids: &[Oid]) -> Result<JoinResult> {
        if outer_keys.len() != outer_oids.len() {
            return Err(OperatorError::LengthMismatch {
                left: outer_keys.len(),
                right: outer_oids.len(),
            });
        }
        let keys = key_values(outer_keys)?;
        let mut result = JoinResult::default();
        for (i, &key) in keys.iter().enumerate() {
            let mut e = self.heads[hash_key(key, self.mask)];
            while e != EMPTY {
                let j = e as usize;
                if self.keys[j] == key {
                    result.outer_oids.push(outer_oids[i]);
                    result.inner_oids.push(self.oids[j]);
                }
                e = self.next[j];
            }
        }
        Ok(result)
    }

    /// Probes and reports only whether each outer row has at least one match
    /// (semi-join), returning the matching outer oids. Used for `EXISTS`
    /// style sub-queries (TPC-H Q4).
    pub fn probe_semi(&self, outer: &Column) -> Result<Vec<Oid>> {
        let keys = key_values(outer)?;
        let base = outer.base_oid();
        let mut out = Vec::new();
        for (i, &key) in keys.iter().enumerate() {
            let mut e = self.heads[hash_key(key, self.mask)];
            while e != EMPTY {
                let j = e as usize;
                if self.keys[j] == key {
                    out.push(base + i as Oid);
                    break;
                }
                e = self.next[j];
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_lookup() {
        let inner = Column::from_i64(vec![10, 20, 30, 20]);
        let ht = JoinHashTable::build(&inner).unwrap();
        assert_eq!(ht.len(), 4);
        assert!(!ht.is_empty());
        assert!(ht.byte_size() > 0);
        let mut hits = ht.lookup(20);
        hits.sort_unstable();
        assert_eq!(hits, vec![1, 3]);
        assert!(ht.lookup(99).is_empty());
    }

    #[test]
    fn probe_produces_all_pairs() {
        let inner = Column::from_i64(vec![1, 2, 2, 3]);
        let outer = Column::from_i64(vec![2, 3, 4]);
        let ht = JoinHashTable::build(&inner).unwrap();
        let res = ht.probe(&outer).unwrap();
        // outer row 0 (key 2) matches inner oids {1,2}; outer row 1 (key 3) matches inner oid 3.
        let mut pairs: Vec<(Oid, Oid)> =
            res.outer_oids.iter().copied().zip(res.inner_oids.iter().copied()).collect();
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 1), (0, 2), (1, 3)]);
        assert_eq!(res.len(), 3);
        assert!(!res.is_empty());
    }

    #[test]
    fn probe_uses_absolute_oids_of_outer_slice() {
        let inner = Column::from_i64(vec![5, 6]);
        let outer_base = Column::from_i64(vec![5, 5, 6, 7, 6, 5]);
        let outer_part = outer_base.slice(3, 3).unwrap(); // oids [3,6): keys 7,6,5
        let ht = JoinHashTable::build(&inner).unwrap();
        let res = ht.probe(&outer_part).unwrap();
        let pairs: Vec<(Oid, Oid)> =
            res.outer_oids.iter().copied().zip(res.inner_oids.iter().copied()).collect();
        assert_eq!(pairs, vec![(4, 1), (5, 0)]);
    }

    #[test]
    fn partitioned_probes_union_to_serial_probe() {
        let inner = Column::from_i64((0..64).collect());
        let outer = Column::from_i64((0..1000).map(|v| v % 100).collect());
        let ht = JoinHashTable::build(&inner).unwrap();
        let serial = ht.probe(&outer).unwrap();

        let mut parts = Vec::new();
        for (s, l) in [(0usize, 300usize), (300, 300), (600, 400)] {
            parts.push(ht.probe(&outer.slice(s, l).unwrap()).unwrap());
        }
        let packed = JoinResult::concat(&parts);
        assert_eq!(packed, serial);
    }

    #[test]
    fn concat_parts_matches_concat() {
        let a = JoinResult { outer_oids: vec![1, 2], inner_oids: vec![10, 20] };
        let b = JoinResult { outer_oids: vec![3], inner_oids: vec![30] };
        let owned = JoinResult::concat(&[a.clone(), b.clone()]);
        let borrowed = JoinResult::concat_parts(&[
            (a.outer_oids.as_slice(), a.inner_oids.as_slice()),
            (b.outer_oids.as_slice(), b.inner_oids.as_slice()),
        ]);
        assert_eq!(owned, borrowed);
        assert!(JoinResult::concat_parts(&[]).is_empty());
    }

    #[test]
    fn probe_with_explicit_oids() {
        let inner = Column::from_i64(vec![7, 8]);
        let keys = Column::from_i64(vec![8, 9, 7]);
        let oids = vec![100, 200, 300];
        let ht = JoinHashTable::build(&inner).unwrap();
        let res = ht.probe_with_oids(&keys, &oids).unwrap();
        let pairs: Vec<(Oid, Oid)> =
            res.outer_oids.iter().copied().zip(res.inner_oids.iter().copied()).collect();
        assert_eq!(pairs, vec![(100, 1), (300, 0)]);
        assert!(ht.probe_with_oids(&keys, &[1, 2]).is_err());
    }

    #[test]
    fn semi_join_reports_each_outer_once() {
        let inner = Column::from_i64(vec![1, 1, 2]);
        let outer = Column::from_i64(vec![1, 3, 2, 1]);
        let ht = JoinHashTable::build(&inner).unwrap();
        assert_eq!(ht.probe_semi(&outer).unwrap(), vec![0, 2, 3]);
    }

    #[test]
    fn i32_keys_and_unsupported_types() {
        let inner = Column::from_i32(vec![1, 2]);
        let outer = Column::from_i32(vec![2, 2]);
        let ht = JoinHashTable::build(&inner).unwrap();
        assert_eq!(ht.probe(&outer).unwrap().len(), 2);
        let bad = Column::from_strings(["x"]);
        assert!(JoinHashTable::build(&bad).is_err());
        assert!(ht.probe(&bad).is_err());
    }

    #[test]
    fn empty_build_side() {
        let inner = Column::from_i64(vec![]);
        let ht = JoinHashTable::build(&inner).unwrap();
        assert!(ht.is_empty());
        let outer = Column::from_i64(vec![1, 2, 3]);
        assert!(ht.probe(&outer).unwrap().is_empty());
    }
}
