//! Operator-at-a-time dataflow execution engine.
//!
//! This crate is the MonetDB-analogue substrate the paper's adaptive
//! parallelization runs on:
//!
//! * [`plan`] — the dataflow plan DAG ([`Plan`], [`OperatorSpec`]) in which
//!   "identification of individual expensive operators" is possible, plus the
//!   per-operator metadata (partitionable inputs, combiner kind) the plan
//!   mutations rely on;
//! * [`chunk`] — materialized intermediates flowing along plan edges;
//! * [`interpreter`] — executes one operator over its inputs;
//! * [`executor`] — the shared worker pool and dependency-driven dataflow
//!   executor ("an operator is scheduled for execution once all its input
//!   sources are available"), usable concurrently by many client threads;
//! * [`pipeline`] — the morsel-driven execution mode: fused operator chains
//!   driven by fixed-size morsels instead of whole-chunk materialization,
//!   selectable via [`EngineConfig::execution_mode`];
//! * [`scheduler`] — pluggable task-scheduling policies (shared FIFO vs.
//!   work-stealing deques), per-query scheduling state ([`QueryHandle`]:
//!   priority, admitted DOP, cancellation, live dispatch signals) and
//!   per-worker dispatch counters;
//! * [`controller`] — the elastic resource controller: a feedback loop over
//!   the live signals that re-grants/claws back admitted DOP as clients
//!   come and go and adapts the per-query morsel size
//!   ([`EngineConfig::controller`]);
//! * [`profiler`] — per-operator execution feedback (time, worker, memory
//!   claim) and query-level multi-core-utilization metrics;
//! * [`noise`] — reproducible synthetic OS-noise injection for the
//!   convergence-robustness experiments;
//! * [`fault`] — the deterministic chaos layer generalizing [`noise`]:
//!   seeded, site-keyed injection of operator panics, dispatch stalls and
//!   spurious cancellations ([`EngineConfig::with_faults`]), reproducible
//!   byte-for-byte from a seed;
//! * [`sharing`] — multi-query work sharing: cooperative shared scans
//!   (per-table [`sharing::ScanGroup`]s hand out each morsel window exactly
//!   once across all attached consumers) and a bounded partial-aggregate
//!   reuse cache ([`EngineConfig::sharing`]);
//! * [`service`] — the long-lived production query service: sessions with
//!   per-session submission queues, unified admission (a ticket *is* a
//!   registry reservation, one census with the controller) and shared
//!   plan/result caches ([`QueryService`], [`Session`]).

#![warn(missing_docs)]

pub mod chunk;
pub mod controller;
pub mod error;
pub mod executor;
pub mod fault;
pub mod interpreter;
pub mod noise;
pub mod pipeline;
pub mod plan;
pub mod profiler;
pub mod scheduler;
pub mod service;
pub mod sharing;

pub use chunk::{Chunk, JoinView, OidsView, QueryOutput};
pub use controller::{ControllerConfig, TickReport};
pub use error::{EngineError, Result};
pub use executor::{Engine, EngineConfig, QueryExecution, QueryOptions, ReservedQuery};
pub use fault::{FaultConfig, FaultInjector, FaultKind, FaultStats, ScheduledFault};
pub use noise::{NoiseConfig, NoiseInjector};
pub use pipeline::{ExecutionMode, DEFAULT_MORSEL_ROWS};
pub use plan::{CombinerKind, JoinSide, NodeId, OperatorSpec, Plan, PlanNode};
pub use profiler::{DopEvent, DopPhase, OperatorProfile, PipelineProfile, QueryProfile};
pub use scheduler::{QueryHandle, QuerySignals, SchedulerPolicy, SchedulerStats, WorkerStats};
pub use service::{QueryService, ServiceConfig, ServiceResponse, ServiceStats, Session};
pub use sharing::{ScanGroup, ScanRegistry, SharedScan, SharingConfig, SharingStats};
