//! Session handles: per-client submission queues over the shared service.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::{EngineError, Result};
use crate::executor::QueryOptions;
use crate::plan::Plan;
use crate::scheduler::QueryHandle;

use super::{ServiceInner, ServiceResponse};

/// Ticket state of a session's FIFO submission queue.
#[derive(Default)]
struct SubmissionQueue {
    next_ticket: u64,
    now_serving: u64,
}

/// State shared by all clones of one session.
struct SessionInner {
    service: Arc<ServiceInner>,
    id: u64,
    priority: u8,
    closed: AtomicBool,
    queue: Mutex<SubmissionQueue>,
    turn: Condvar,
    /// Handles of this session's queries currently inside the engine, so
    /// [`Session::close`] can cancel them mid-flight.
    live: Mutex<Vec<Arc<QueryHandle>>>,
}

impl SessionInner {
    /// Waits for this submission's turn in the session queue. The returned
    /// guard serves the next ticket on drop (success and error paths
    /// alike), so a closed session drains its waiters instead of stranding
    /// them.
    fn acquire_turn(&self) -> Result<TurnGuard<'_>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(EngineError::SessionClosed);
        }
        let mut queue = self.queue.lock();
        let ticket = queue.next_ticket;
        queue.next_ticket += 1;
        while queue.now_serving != ticket {
            self.turn.wait(&mut queue);
        }
        drop(queue);
        let guard = TurnGuard { inner: self };
        if self.closed.load(Ordering::Acquire) {
            return Err(EngineError::SessionClosed);
        }
        Ok(guard)
    }

    fn track(&self, handle: Arc<QueryHandle>) {
        self.live.lock().push(handle);
    }

    fn untrack(&self, id: u64) {
        self.live.lock().retain(|h| h.id() != id);
    }

    fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        for handle in self.live.lock().iter() {
            handle.cancel();
        }
        self.turn.notify_all();
        self.service.count_session_closed();
    }
}

impl Drop for SessionInner {
    fn drop(&mut self) {
        self.close();
    }
}

/// Advances the session queue to the next ticket when a submission leaves
/// the critical section (normally or on error).
struct TurnGuard<'a> {
    inner: &'a SessionInner,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        let mut queue = self.inner.queue.lock();
        queue.now_serving += 1;
        drop(queue);
        self.inner.turn.notify_all();
    }
}

/// A client's connection to a [`super::QueryService`].
///
/// Cloning is cheap; clones share the session's FIFO submission queue
/// (submissions serialize in arrival order), priority, and close state.
/// Dropping the last clone closes the session.
///
/// ```
/// use std::sync::Arc;
/// use apq_columnar::{partition::RowRange, Catalog, ScalarValue, TableBuilder};
/// use apq_engine::plan::{OperatorSpec, Plan};
/// use apq_engine::{EngineError, QueryOutput, QueryService, ServiceConfig};
///
/// let mut catalog = Catalog::new();
/// catalog.register(
///     TableBuilder::new("t").i64_column("v", vec![7, 8]).build()?,
/// );
/// let service = QueryService::new(ServiceConfig::default(), Arc::new(catalog));
/// let session = service.connect();
///
/// // `SELECT sum(v) FROM t` as a two-node plan.
/// let mut plan = Plan::new();
/// let scan = plan.add(
///     OperatorSpec::ScanColumn {
///         table: "t".into(),
///         column: "v".into(),
///         range: RowRange::new(0, 2),
///     },
///     vec![],
/// );
/// let agg = plan.add(OperatorSpec::ScalarAgg { func: apq_operators::AggFunc::Sum }, vec![scan]);
/// let fin = plan.add(
///     OperatorSpec::FinalizeAgg { func: apq_operators::AggFunc::Sum },
///     vec![agg],
/// );
/// plan.set_root(fin);
///
/// let response = session.submit(&plan)?;
/// assert_eq!(response.output, QueryOutput::Scalar(ScalarValue::I64(15)));
///
/// // Closed sessions reject further submissions.
/// session.close();
/// assert_eq!(session.submit(&plan).unwrap_err(), EngineError::SessionClosed);
/// # Ok::<(), EngineError>(())
/// ```
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.inner.id)
            .field("priority", &self.inner.priority)
            .field("closed", &self.inner.closed.load(Ordering::Acquire))
            .finish()
    }
}

impl Session {
    pub(crate) fn open(service: Arc<ServiceInner>, id: u64, priority: u8) -> Self {
        Session {
            inner: Arc::new(SessionInner {
                service,
                id,
                priority,
                closed: AtomicBool::new(false),
                queue: Mutex::new(SubmissionQueue::default()),
                turn: Condvar::new(),
                live: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Service-assigned session id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The session's scheduling priority.
    pub fn priority(&self) -> u8 {
        self.inner.priority
    }

    /// True once the session was closed (explicitly or by drop of the last
    /// clone).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Submits a plan through the session, blocking until the result is
    /// ready (or served from the result cache). Submissions of one session
    /// run one at a time in arrival order; concurrency comes from many
    /// sessions, which is what the admission census governs.
    ///
    /// Errors with [`EngineError::SessionClosed`] once the session is
    /// closed; a close racing a running submission cancels it mid-flight
    /// ([`EngineError::Cancelled`]).
    pub fn submit(&self, plan: &Plan) -> Result<ServiceResponse> {
        let inner = &*self.inner;
        let service = &inner.service;
        let _turn = inner.acquire_turn()?;
        service.count_query();

        let signature = plan.signature();
        if let Some(output) = service.result_cache.get(&signature) {
            service.count_result_cache(true);
            return Ok(ServiceResponse {
                output,
                profile: None,
                plan_cache_hit: false,
                result_cache_hit: true,
            });
        }
        service.count_result_cache(false);

        let (shared, plan_cache_hit) = service.plan_cache.get_or_insert(&signature, plan);
        service.count_plan_cache(plan_cache_hit);

        let catalog = service.catalog();
        let execution = if service.config.admission {
            // Unified admission: the reservation is the ticket AND the
            // census entry; it is held (registry-visible) until the
            // submission finishes, then dropped.
            let reservation =
                service.engine.reserve_admitted(inner.priority, service.config.total_dop);
            let handle = reservation.handle();
            inner.track(Arc::clone(&handle));
            let result = service.engine.execute_with_handle(&shared, &catalog, handle);
            inner.untrack(reservation.id());
            result?
        } else {
            let handle = service
                .engine
                .register_query(QueryOptions { priority: inner.priority, admitted_dop: 0 });
            inner.track(Arc::clone(&handle));
            let id = handle.id();
            let result = service.engine.execute_with_handle(&shared, &catalog, handle);
            inner.untrack(id);
            result?
        };

        service.result_cache.insert(
            signature,
            execution.output.clone(),
            shared.referenced_tables(),
        );
        Ok(ServiceResponse {
            output: execution.output,
            profile: Some(execution.profile),
            plan_cache_hit,
            result_cache_hit: false,
        })
    }

    /// Closes the session: cancels its in-flight queries and makes every
    /// later (and queued) submission fail with
    /// [`EngineError::SessionClosed`]. Idempotent.
    pub fn close(&self) {
        self.inner.close();
    }
}
