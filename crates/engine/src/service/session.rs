//! Session handles: per-client submission queues over the shared service.
//!
//! Submissions of one session serialize in arrival order through a FIFO
//! waiter queue. Unlike a ticket counter, each waiter is an addressable
//! object, which is what the robustness layer needs:
//!
//! * [`Session::close`] wakes every queued waiter *immediately* with
//!   [`EngineError::SessionClosed`] instead of letting the line drain,
//! * the service-wide [`WaiterRegistry`] can shed the lowest-priority
//!   waiter with [`EngineError::Overloaded`] when
//!   [`super::ServiceConfig::max_queued`] is hit,
//! * [`Session::try_submit`] can refuse without ever joining the line.
//!
//! Failure semantics of the full submit path are catalogued in
//! `docs/architecture.md` §9.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::error::{EngineError, Result};
use crate::executor::QueryOptions;
use crate::plan::Plan;
use crate::scheduler::QueryHandle;

use super::{ServiceInner, ServiceResponse};

/// Terminal state a queued waiter is woken with.
#[derive(Clone, Copy, PartialEq, Eq)]
enum WaiterState {
    /// Still in line.
    Waiting,
    /// The previous submission finished; this waiter owns the turn.
    Granted,
    /// Evicted by the overload policy — resolves to
    /// [`EngineError::Overloaded`].
    Shed,
    /// The session closed underneath it — resolves to
    /// [`EngineError::SessionClosed`].
    Closed,
}

/// One blocked submission. Waiters park on their own mutex/condvar so a
/// single wake (grant, shed, close) targets exactly one thread.
pub(crate) struct Waiter {
    state: Mutex<WaiterState>,
    wake: Condvar,
    priority: u8,
}

impl Waiter {
    fn new(priority: u8) -> Arc<Self> {
        Arc::new(Waiter { state: Mutex::new(WaiterState::Waiting), wake: Condvar::new(), priority })
    }

    /// Moves a still-waiting waiter to `next` and wakes it; returns `false`
    /// when the waiter already left the Waiting state (lost a race to a
    /// concurrent shed/close/grant).
    fn resolve(&self, next: WaiterState) -> bool {
        let mut state = self.state.lock();
        if *state != WaiterState::Waiting {
            return false;
        }
        *state = next;
        drop(state);
        self.wake.notify_one();
        true
    }

    /// Parks until resolved; returns the terminal state.
    fn park(&self) -> WaiterState {
        let mut state = self.state.lock();
        while *state == WaiterState::Waiting {
            self.wake.wait(&mut state);
        }
        *state
    }
}

/// Service-wide census of queued submissions: the population
/// [`super::ServiceConfig::max_queued`] bounds, and the pool the shed
/// policy picks its lowest-priority victim from.
#[derive(Default)]
pub(crate) struct WaiterRegistry {
    entries: Mutex<Vec<Arc<Waiter>>>,
}

impl WaiterRegistry {
    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Admits `waiter` into the queued census, shedding to stay under
    /// `max_queued` (`0` = unbounded). At the bound the lowest-priority
    /// queued waiter strictly below the newcomer is evicted in its place;
    /// when nothing queued outranks the newcomer, the newcomer itself is
    /// refused. Returns `false` when the newcomer was refused.
    fn admit(&self, waiter: &Arc<Waiter>, max_queued: usize) -> bool {
        let mut entries = self.entries.lock();
        while max_queued > 0 && entries.len() >= max_queued {
            let victim = entries
                .iter()
                .enumerate()
                .min_by_key(|(_, w)| w.priority)
                .filter(|(_, w)| w.priority < waiter.priority)
                .map(|(i, _)| i);
            match victim {
                Some(i) => {
                    let evicted = entries.swap_remove(i);
                    // A waiter that already left Waiting (racing close) is
                    // simply dropped from the census; keep looking.
                    evicted.resolve(WaiterState::Shed);
                }
                None => return false,
            }
        }
        entries.push(Arc::clone(waiter));
        true
    }

    /// Drops `waiter` from the census (no-op when a shed already removed
    /// it). Every waiter deregisters itself on wake-up, whatever the
    /// outcome.
    fn remove(&self, waiter: &Arc<Waiter>) {
        self.entries.lock().retain(|w| !Arc::ptr_eq(w, waiter));
    }
}

/// The session's FIFO line: `busy` marks a submission holding the turn,
/// `waiters` the line behind it (front = next served).
#[derive(Default)]
struct WaitQueue {
    busy: bool,
    waiters: VecDeque<Arc<Waiter>>,
}

/// State shared by all clones of one session.
struct SessionInner {
    service: Arc<ServiceInner>,
    id: u64,
    priority: u8,
    closed: AtomicBool,
    queue: Mutex<WaitQueue>,
    /// Handles of this session's queries currently inside the engine, so
    /// [`Session::close`] can cancel them mid-flight.
    live: Mutex<Vec<Arc<QueryHandle>>>,
}

impl SessionInner {
    /// Waits for this submission's turn. The returned guard passes the turn
    /// to the next waiter on drop (success and error paths alike). With
    /// `block = false` the call never joins the line: a busy session is
    /// refused with [`EngineError::Overloaded`] on the spot.
    fn acquire_turn(&self, block: bool) -> Result<TurnGuard<'_>> {
        if self.closed.load(Ordering::Acquire) {
            return Err(EngineError::SessionClosed);
        }
        let mut queue = self.queue.lock();
        let waiter = if !queue.busy && queue.waiters.is_empty() {
            queue.busy = true;
            None
        } else if !block {
            drop(queue);
            self.service.count_shed();
            return Err(EngineError::Overloaded {
                retry_after_hint: self.service.retry_after_hint(),
            });
        } else {
            // Join the service-wide queued census first (still under the
            // session lock so close() cannot miss us), then the session
            // line.
            let waiter = Waiter::new(self.priority);
            if !self.service.waiters.admit(&waiter, self.service.config.max_queued) {
                drop(queue);
                self.service.count_shed();
                return Err(EngineError::Overloaded {
                    retry_after_hint: self.service.retry_after_hint(),
                });
            }
            queue.waiters.push_back(Arc::clone(&waiter));
            Some(waiter)
        };
        drop(queue);

        if let Some(waiter) = waiter {
            let outcome = waiter.park();
            self.service.waiters.remove(&waiter);
            match outcome {
                WaiterState::Granted => {}
                WaiterState::Shed => {
                    self.service.count_shed();
                    return Err(EngineError::Overloaded {
                        retry_after_hint: self.service.retry_after_hint(),
                    });
                }
                WaiterState::Closed => return Err(EngineError::SessionClosed),
                WaiterState::Waiting => unreachable!("park returns a terminal state"),
            }
        }
        let guard = TurnGuard { inner: self };
        if self.closed.load(Ordering::Acquire) {
            return Err(EngineError::SessionClosed);
        }
        Ok(guard)
    }

    /// Hands the turn to the next live waiter, skipping entries that were
    /// shed or closed while queued; idles the session when the line is
    /// empty.
    fn release_turn(&self) {
        let mut queue = self.queue.lock();
        debug_assert!(queue.busy, "release_turn without a held turn");
        loop {
            match queue.waiters.pop_front() {
                Some(next) => {
                    if next.resolve(WaiterState::Granted) {
                        return; // `busy` stays true: the grantee owns the turn.
                    }
                }
                None => {
                    queue.busy = false;
                    return;
                }
            }
        }
    }

    fn track(&self, handle: Arc<QueryHandle>) {
        self.live.lock().push(handle);
    }

    fn untrack(&self, id: u64) {
        self.live.lock().retain(|h| h.id() != id);
    }

    fn close(&self) {
        if self.closed.swap(true, Ordering::AcqRel) {
            return;
        }
        // Wake every queued waiter with SessionClosed *now* — nobody should
        // sit in a dead session's line waiting for the running submission
        // to drain. Each waiter deregisters itself from the service census
        // on wake-up.
        let mut queue = self.queue.lock();
        for waiter in queue.waiters.drain(..) {
            waiter.resolve(WaiterState::Closed);
        }
        drop(queue);
        for handle in self.live.lock().iter() {
            handle.cancel();
        }
        self.service.count_session_closed();
    }
}

impl Drop for SessionInner {
    fn drop(&mut self) {
        self.close();
    }
}

/// Passes the session's turn to the next waiter when a submission leaves
/// the critical section (normally or on error).
struct TurnGuard<'a> {
    inner: &'a SessionInner,
}

impl Drop for TurnGuard<'_> {
    fn drop(&mut self) {
        self.inner.release_turn();
    }
}

/// A client's connection to a [`super::QueryService`].
///
/// Cloning is cheap; clones share the session's FIFO submission queue
/// (submissions serialize in arrival order), priority, and close state.
/// Dropping the last clone closes the session.
///
/// ```
/// use std::sync::Arc;
/// use apq_columnar::{partition::RowRange, Catalog, ScalarValue, TableBuilder};
/// use apq_engine::plan::{OperatorSpec, Plan};
/// use apq_engine::{EngineError, QueryOutput, QueryService, ServiceConfig};
///
/// let mut catalog = Catalog::new();
/// catalog.register(
///     TableBuilder::new("t").i64_column("v", vec![7, 8]).build()?,
/// );
/// let service = QueryService::new(ServiceConfig::default(), Arc::new(catalog));
/// let session = service.connect();
///
/// // `SELECT sum(v) FROM t` as a two-node plan.
/// let mut plan = Plan::new();
/// let scan = plan.add(
///     OperatorSpec::ScanColumn {
///         table: "t".into(),
///         column: "v".into(),
///         range: RowRange::new(0, 2),
///     },
///     vec![],
/// );
/// let agg = plan.add(OperatorSpec::ScalarAgg { func: apq_operators::AggFunc::Sum }, vec![scan]);
/// let fin = plan.add(
///     OperatorSpec::FinalizeAgg { func: apq_operators::AggFunc::Sum },
///     vec![agg],
/// );
/// plan.set_root(fin);
///
/// let response = session.submit(&plan)?;
/// assert_eq!(response.output, QueryOutput::Scalar(ScalarValue::I64(15)));
///
/// // Closed sessions reject further submissions.
/// session.close();
/// assert_eq!(session.submit(&plan).unwrap_err(), EngineError::SessionClosed);
/// # Ok::<(), EngineError>(())
/// ```
#[derive(Clone)]
pub struct Session {
    inner: Arc<SessionInner>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("id", &self.inner.id)
            .field("priority", &self.inner.priority)
            .field("closed", &self.inner.closed.load(Ordering::Acquire))
            .finish()
    }
}

impl Session {
    pub(crate) fn open(service: Arc<ServiceInner>, id: u64, priority: u8) -> Self {
        Session {
            inner: Arc::new(SessionInner {
                service,
                id,
                priority,
                closed: AtomicBool::new(false),
                queue: Mutex::new(WaitQueue::default()),
                live: Mutex::new(Vec::new()),
            }),
        }
    }

    /// Service-assigned session id.
    pub fn id(&self) -> u64 {
        self.inner.id
    }

    /// The session's scheduling priority.
    pub fn priority(&self) -> u8 {
        self.inner.priority
    }

    /// True once the session was closed (explicitly or by drop of the last
    /// clone).
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }

    /// Submits a plan through the session, blocking until the result is
    /// ready (or served from the result cache). Submissions of one session
    /// run one at a time in arrival order; concurrency comes from many
    /// sessions, which is what the admission census governs.
    ///
    /// [`super::ServiceConfig::default_timeout`] (when set) bounds the
    /// whole submission — queue wait included — with
    /// [`EngineError::DeadlineExceeded`]; at the
    /// [`super::ServiceConfig::max_queued`] bound the overload policy sheds
    /// with [`EngineError::Overloaded`]. Errors with
    /// [`EngineError::SessionClosed`] once the session is closed; a close
    /// racing a running submission cancels it mid-flight
    /// ([`EngineError::Cancelled`]).
    pub fn submit(&self, plan: &Plan) -> Result<ServiceResponse> {
        self.submit_inner(plan, self.inner.service.config.default_timeout, true)
    }

    /// Like [`Session::submit`] with a per-call deadline covering the whole
    /// submission (queue wait included). A deadline that expires while the
    /// submission is queued — or that already expired on entry — fails with
    /// [`EngineError::DeadlineExceeded`] without dispatching any work; one
    /// that expires mid-execution aborts at the next cancellation
    /// checkpoint. Timed-out results are never admitted to the result
    /// cache.
    pub fn submit_with_deadline(&self, plan: &Plan, timeout: Duration) -> Result<ServiceResponse> {
        self.submit_inner(plan, Some(timeout), true)
    }

    /// Non-blocking [`Session::submit`]: refuses with
    /// [`EngineError::Overloaded`] instead of queueing when another
    /// submission of this session holds the turn. The refusal counts as a
    /// shed in [`super::ServiceStats`].
    pub fn try_submit(&self, plan: &Plan) -> Result<ServiceResponse> {
        self.submit_inner(plan, self.inner.service.config.default_timeout, false)
    }

    fn submit_inner(
        &self,
        plan: &Plan,
        timeout: Option<Duration>,
        block: bool,
    ) -> Result<ServiceResponse> {
        let inner = &*self.inner;
        let service = &inner.service;
        let submitted = Instant::now();
        let _turn = inner.acquire_turn(block)?;
        service.count_query();

        // The deadline clock started at submission, so queue wait has
        // already consumed part of the budget; an exhausted budget fails
        // here, before any work — even a result-cache hit must not answer
        // a deadline that has already passed.
        let remaining = match timeout {
            Some(timeout) => match timeout.checked_sub(submitted.elapsed()) {
                Some(left) => Some(left),
                None => {
                    service.count_timed_out();
                    return Err(EngineError::DeadlineExceeded);
                }
            },
            None => None,
        };

        let signature = plan.signature();
        if let Some(output) = service.result_cache.get(&signature) {
            service.count_result_cache(true);
            return Ok(ServiceResponse {
                output,
                profile: None,
                plan_cache_hit: false,
                result_cache_hit: true,
            });
        }
        service.count_result_cache(false);

        let (shared, plan_cache_hit) = service.plan_cache.get_or_insert(&signature, plan);
        service.count_plan_cache(plan_cache_hit);

        let catalog = service.catalog();
        let started = Instant::now();
        let handle;
        let execution = if service.config.admission {
            // Unified admission: the reservation is the ticket AND the
            // census entry; it is held (registry-visible) until the
            // submission finishes, then dropped.
            let reservation =
                service.engine.reserve_admitted(inner.priority, service.config.total_dop);
            handle = reservation.handle();
            if let Some(left) = remaining {
                handle.set_deadline(left);
            }
            inner.track(Arc::clone(&handle));
            let result = service.engine.execute_with_handle(&shared, &catalog, Arc::clone(&handle));
            inner.untrack(reservation.id());
            result
        } else {
            handle = service
                .engine
                .register_query(QueryOptions { priority: inner.priority, admitted_dop: 0 });
            if let Some(left) = remaining {
                handle.set_deadline(left);
            }
            inner.track(Arc::clone(&handle));
            let result = service.engine.execute_with_handle(&shared, &catalog, Arc::clone(&handle));
            inner.untrack(handle.id());
            result
        };
        service.record_latency(started.elapsed());
        let execution = match execution {
            Ok(execution) => execution,
            Err(err) => {
                if err == EngineError::DeadlineExceeded {
                    service.count_timed_out();
                }
                return Err(err);
            }
        };

        // Never publish a result whose query ended cancelled or past its
        // deadline — a racing close/expiry after the last checkpoint could
        // otherwise pin a half-trusted output in the cache and serve it to
        // the next identical submission. Cost-aware admission: executions
        // cheaper than `min_cache_cost` are not worth a cache slot.
        if !handle.is_cancelled()
            && !handle.deadline_exceeded()
            && started.elapsed() >= service.config.min_cache_cost
        {
            service.result_cache.insert(
                signature,
                execution.output.clone(),
                shared.referenced_tables(),
            );
        }
        Ok(ServiceResponse {
            output: execution.output,
            profile: Some(execution.profile),
            plan_cache_hit,
            result_cache_hit: false,
        })
    }

    /// Closes the session: immediately wakes every queued submission with
    /// [`EngineError::SessionClosed`], cancels its in-flight queries, and
    /// makes every later submission fail with the same error. Idempotent.
    pub fn close(&self) {
        self.inner.close();
    }
}
