//! The long-lived production query service.
//!
//! Everything below this module turns the engine from a library driven by
//! one-shot benchmark harnesses into a service that many clients connect
//! to and submit queries through:
//!
//! * **Unified admission (single census).** The historical
//!   `AdmissionController` baseline keeps its own active-client counter
//!   next to the engine's live-query registry — a *double census*: a
//!   client holding a ticket but not yet submitted is invisible to the
//!   elastic controller, so admit-time and re-grant DOP targets can
//!   briefly disagree. Here a ticket *is* a registry reservation
//!   ([`crate::Engine::reserve_admitted`]): the handle enters the registry
//!   at issue time, the admit-time share is computed under the registry
//!   lock from the same population controller ticks rebalance over, and
//!   the profiler's DOP timeline records the reservation phases
//!   ([`crate::DopPhase`]).
//! * **Sessions.** [`QueryService::connect`] returns a [`Session`]: a
//!   cheap-clone handle with a per-session FIFO submission queue (clones
//!   share the queue, submissions serialize in ticket order), a scheduling
//!   priority, and close/cancel semantics — closing a session cancels its
//!   in-flight queries and fails later submissions with
//!   [`crate::EngineError::SessionClosed`].
//! * **Shared caches.** A plan cache keyed on [`crate::Plan::signature`] (reusing
//!   the `Arc<Plan>` shared-execution path) and a bounded result cache
//!   with explicit per-table invalidation. Keying rules live in
//!   `cache.rs`'s module docs and `docs/architecture.md` §8.
//!
//! ```text
//!            Session::submit(plan)
//!                   │
//!          per-session FIFO queue
//!                   │
//!        result cache ──hit──► ServiceResponse (no engine work)
//!                   │miss
//!         plan cache (signature → Arc<Plan>)
//!                   │
//!      Engine::reserve_admitted ─────────┐ one registry lock:
//!        (ticket = registry entry,       │ count governed ∪ {self},
//!         admit dop = equal share)       │ grant max(1, total/n)
//!                   │                    │
//!      Engine::execute_with_handle ◄─────┘
//!                   │         ▲
//!                   │         │ controller ticks rebalance over the
//!                   │         │ SAME registry (reservations included)
//!                   ▼
//!        result cache insert → ServiceResponse
//! ```

pub(crate) mod cache;
mod session;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use apq_columnar::Catalog;

use crate::executor::{Engine, EngineConfig};
use crate::profiler::QueryProfile;
use crate::sharing::SharingConfig;
use crate::QueryOutput;

use cache::{PlanCache, ResultCache};
pub use session::Session;
use session::WaiterRegistry;

/// Configuration of a [`QueryService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Configuration of the service-owned engine (workers, scheduler,
    /// execution mode, elastic controller, ...).
    pub engine: EngineConfig,
    /// Pool capacity the unified admission divides among concurrent
    /// clients (`0` = the engine's worker count). When the elastic
    /// controller is enabled this should match
    /// [`crate::ControllerConfig::total_dop`] so admit-time grants and
    /// tick re-grants share one budget.
    pub total_dop: usize,
    /// Enables unified admission: submissions reserve a census slot and
    /// run under the equal-share DOP grant. When `false`, submissions run
    /// uncapped (registry-visible only while executing).
    pub admission: bool,
    /// Plan-cache capacity in entries (`0` disables the plan cache).
    pub plan_cache_capacity: usize,
    /// Result-cache capacity in entries (`0` disables the result cache).
    pub result_cache_capacity: usize,
    /// Deadline applied to every [`Session::submit`] that does not carry an
    /// explicit one ([`Session::submit_with_deadline`] overrides it per
    /// call). `None` (the default) means submissions never time out. The
    /// clock starts when the submission enters the session queue, so queue
    /// wait counts against the deadline.
    pub default_timeout: Option<Duration>,
    /// Service-wide bound on *queued* (not yet executing) submissions. At
    /// the bound a new submission sheds the lowest-priority waiter — or
    /// itself, when nothing queued outranks it — with
    /// [`crate::EngineError::Overloaded`] instead of blocking. `0` (the
    /// default) means unbounded queues and no shedding.
    pub max_queued: usize,
    /// Enables the engine's work-sharing subsystem ([`crate::sharing`]):
    /// concurrent submissions scanning the same table cooperate through
    /// per-table scan groups (each morsel window produced once, fanned to
    /// every consumer) and repeated aggregate shapes resume from cached
    /// partials. Off by default — results are byte-identical either way,
    /// sharing only changes who executes the scan work.
    pub enable_shared_scans: bool,
    /// Cost-aware result-cache admission: an execution's output is inserted
    /// into the result cache only when its wall-clock time reached this
    /// floor. `Duration::ZERO` (the default) admits everything; a nonzero
    /// floor keeps cheap queries from evicting expensive cached results.
    pub min_cache_cost: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            engine: EngineConfig::default(),
            total_dop: 0,
            admission: true,
            plan_cache_capacity: 256,
            result_cache_capacity: 128,
            default_timeout: None,
            max_queued: 0,
            enable_shared_scans: false,
            min_cache_cost: Duration::ZERO,
        }
    }
}

impl ServiceConfig {
    /// Config with the given engine configuration.
    pub fn with_engine(engine: EngineConfig) -> Self {
        ServiceConfig { engine, ..ServiceConfig::default() }
    }

    /// Sets the admission pool capacity (`0` = engine worker count).
    pub fn with_total_dop(mut self, total_dop: usize) -> Self {
        self.total_dop = total_dop;
        self
    }

    /// Enables or disables unified admission.
    pub fn with_admission(mut self, admission: bool) -> Self {
        self.admission = admission;
        self
    }

    /// Sets the plan-cache capacity (`0` disables it).
    pub fn with_plan_cache_capacity(mut self, capacity: usize) -> Self {
        self.plan_cache_capacity = capacity;
        self
    }

    /// Sets the result-cache capacity (`0` disables it).
    pub fn with_result_cache_capacity(mut self, capacity: usize) -> Self {
        self.result_cache_capacity = capacity;
        self
    }

    /// Sets the default per-submission deadline (`None` = never time out).
    pub fn with_default_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.default_timeout = timeout;
        self
    }

    /// Sets the service-wide queued-submission bound (`0` = unbounded).
    pub fn with_max_queued(mut self, max_queued: usize) -> Self {
        self.max_queued = max_queued;
        self
    }

    /// Enables or disables shared scans + partial-aggregate reuse.
    pub fn with_shared_scans(mut self, enabled: bool) -> Self {
        self.enable_shared_scans = enabled;
        self
    }

    /// Sets the execution-cost floor for result-cache admission
    /// (`Duration::ZERO` admits everything).
    pub fn with_min_cache_cost(mut self, cost: Duration) -> Self {
        self.min_cache_cost = cost;
        self
    }
}

/// Outcome of one [`Session::submit`]: the result plus where it came from.
#[derive(Debug, Clone)]
pub struct ServiceResponse {
    /// The query's result value.
    pub output: QueryOutput,
    /// The execution profile; `None` when the result was served from the
    /// result cache (nothing executed).
    pub profile: Option<QueryProfile>,
    /// True when the submission reused a cached shared plan.
    pub plan_cache_hit: bool,
    /// True when the output was served from the result cache.
    pub result_cache_hit: bool,
}

/// Snapshot of a service's cumulative counters ([`QueryService::stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Sessions opened via [`QueryService::connect`].
    pub sessions_opened: u64,
    /// Sessions closed (explicitly or by drop).
    pub sessions_closed: u64,
    /// Submissions accepted into the pipeline (cache hits included).
    pub queries: u64,
    /// Submissions answered from the result cache.
    pub result_cache_hits: u64,
    /// Submissions that missed the result cache.
    pub result_cache_misses: u64,
    /// Executions that reused a cached shared plan.
    pub plan_cache_hits: u64,
    /// Executions that populated the plan cache.
    pub plan_cache_misses: u64,
    /// Result-cache entries dropped by explicit invalidation.
    pub results_invalidated: u64,
    /// Submissions that failed with
    /// [`crate::EngineError::DeadlineExceeded`] (expired in the queue or
    /// mid-execution).
    pub timed_out: u64,
    /// Submissions rejected with [`crate::EngineError::Overloaded`] —
    /// queue-bound sheds plus non-blocking [`Session::try_submit`] refusals.
    pub shed: u64,
    /// Faults the engine's chaos layer injected so far
    /// ([`crate::FaultStats::total`]); `0` when fault injection is off.
    pub faults_injected: u64,
    /// Shared-scan groups created so far ([`crate::sharing`]); `0` when
    /// shared scans are off.
    pub scan_groups: u64,
    /// Scan morsels served from shared scan-group windows instead of
    /// re-executing the scan; `0` when shared scans are off.
    pub morsels_shared: u64,
    /// Scan morsels the engine executed privately (the first consumer of
    /// each window, plus everything scanned while sharing is off).
    pub morsels_private: u64,
    /// Executions that resumed from a cached aggregate partial instead of
    /// rescanning; `0` when shared scans are off.
    pub partials_reused: u64,
}

/// Cumulative counters behind [`ServiceStats`].
#[derive(Default)]
struct StatCounters {
    sessions_opened: AtomicU64,
    sessions_closed: AtomicU64,
    queries: AtomicU64,
    result_cache_hits: AtomicU64,
    result_cache_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    results_invalidated: AtomicU64,
    timed_out: AtomicU64,
    shed: AtomicU64,
}

/// Shared state behind a [`QueryService`] and its [`Session`]s.
pub(crate) struct ServiceInner {
    pub(crate) engine: Engine,
    pub(crate) config: ServiceConfig,
    /// The served catalog; swap with [`QueryService::replace_catalog`].
    catalog: Mutex<Arc<Catalog>>,
    pub(crate) plan_cache: PlanCache,
    pub(crate) result_cache: ResultCache,
    /// Service-wide registry of submissions waiting for their session's
    /// turn — the census [`ServiceConfig::max_queued`] bounds and the
    /// population lowest-priority shedding picks victims from.
    pub(crate) waiters: WaiterRegistry,
    /// EWMA of recent execution latency in µs, the basis of
    /// [`crate::EngineError::Overloaded`]'s `retry_after_hint`.
    latency_ewma_us: AtomicU64,
    stats: StatCounters,
    next_session: AtomicU64,
}

impl ServiceInner {
    pub(crate) fn catalog(&self) -> Arc<Catalog> {
        Arc::clone(&self.catalog.lock())
    }

    pub(crate) fn count_query(&self) {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_result_cache(&self, hit: bool) {
        let counter =
            if hit { &self.stats.result_cache_hits } else { &self.stats.result_cache_misses };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_plan_cache(&self, hit: bool) {
        let counter = if hit { &self.stats.plan_cache_hits } else { &self.stats.plan_cache_misses };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_session_closed(&self) {
        self.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_timed_out(&self) {
        self.stats.timed_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn count_shed(&self) {
        self.stats.shed.fetch_add(1, Ordering::Relaxed);
    }

    /// Folds one execution's wall-clock latency into the EWMA (α = 1/4;
    /// coarse is fine — the hint is advisory back-pressure, not a promise).
    pub(crate) fn record_latency(&self, latency: Duration) {
        let sample = latency.as_micros().min(u128::from(u64::MAX)) as u64;
        let prev = self.latency_ewma_us.load(Ordering::Relaxed);
        let next = if prev == 0 { sample } else { prev - prev / 4 + sample / 4 };
        self.latency_ewma_us.store(next.max(1), Ordering::Relaxed);
    }

    /// How long a rejected client should wait before retrying: roughly the
    /// time for the backlog ahead of it to drain (average latency × queue
    /// depth), floored at 1ms so a cold service still signals back-off.
    pub(crate) fn retry_after_hint(&self) -> Duration {
        let ewma = self.latency_ewma_us.load(Ordering::Relaxed);
        let depth = self.waiters.len() as u64 + 1;
        Duration::from_micros(ewma.saturating_mul(depth)).max(Duration::from_millis(1))
    }
}

/// The long-lived query service: owns an [`Engine`] and a catalog, hands
/// out [`Session`]s, and shares the plan/result caches across them.
///
/// Cloning the service is cheap (shared state); all clones serve the same
/// engine, caches and counters.
///
/// ```
/// use std::sync::Arc;
/// use apq_columnar::{partition::RowRange, Catalog, ScalarValue, TableBuilder};
/// use apq_engine::plan::{OperatorSpec, Plan};
/// use apq_engine::{QueryOutput, QueryService, ServiceConfig};
/// use apq_operators::{AggFunc, CmpOp, Predicate};
///
/// let mut catalog = Catalog::new();
/// catalog.register(
///     TableBuilder::new("t").i64_column("v", vec![0, 1, 2, 3, 4]).build()?,
/// );
/// let service = QueryService::new(ServiceConfig::default(), Arc::new(catalog));
///
/// // `SELECT sum(v) FROM t WHERE v < 3`.
/// let mut plan = Plan::new();
/// let scan = plan.add(
///     OperatorSpec::ScanColumn {
///         table: "t".into(),
///         column: "v".into(),
///         range: RowRange::new(0, 5),
///     },
///     vec![],
/// );
/// let sel = plan.add(
///     OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 3i64) },
///     vec![scan],
/// );
/// let fetch = plan.add(OperatorSpec::Fetch, vec![sel, scan]);
/// let agg = plan.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
/// let fin = plan.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
/// plan.set_root(fin);
///
/// // Each client connects a session and submits through it.
/// let session = service.connect();
/// let first = session.submit(&plan)?;
/// assert_eq!(first.output, QueryOutput::Scalar(ScalarValue::I64(3)));
/// assert!(!first.result_cache_hit);
///
/// // A repeat of the same query is served from the result cache.
/// let repeat = session.submit(&plan)?;
/// assert!(repeat.result_cache_hit);
/// assert_eq!(repeat.output, first.output);
/// # Ok::<(), apq_engine::EngineError>(())
/// ```
#[derive(Clone)]
pub struct QueryService {
    inner: Arc<ServiceInner>,
}

impl std::fmt::Debug for QueryService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryService")
            .field("engine", &self.inner.engine)
            .field("admission", &self.inner.config.admission)
            .field("plan_cache", &self.inner.plan_cache.len())
            .field("result_cache", &self.inner.result_cache.len())
            .finish()
    }
}

impl QueryService {
    /// Creates a service around a fresh engine built from `config.engine`,
    /// serving `catalog`.
    pub fn new(config: ServiceConfig, catalog: Arc<Catalog>) -> Self {
        let mut engine_config = config.engine.clone();
        if config.enable_shared_scans && engine_config.sharing.is_none() {
            engine_config.sharing = Some(SharingConfig::default());
        }
        let engine = Engine::new(engine_config);
        QueryService {
            inner: Arc::new(ServiceInner {
                engine,
                catalog: Mutex::new(catalog),
                plan_cache: PlanCache::new(config.plan_cache_capacity),
                result_cache: ResultCache::new(config.result_cache_capacity),
                waiters: WaiterRegistry::default(),
                latency_ewma_us: AtomicU64::new(0),
                stats: StatCounters::default(),
                next_session: AtomicU64::new(0),
                config,
            }),
        }
    }

    /// Opens a normal-priority session.
    ///
    /// ```
    /// use std::sync::Arc;
    /// use apq_columnar::Catalog;
    /// use apq_engine::{QueryService, ServiceConfig};
    ///
    /// let service = QueryService::new(ServiceConfig::default(), Arc::new(Catalog::new()));
    /// let session = service.connect();
    /// assert!(!session.is_closed());
    /// session.close();
    /// assert!(session.is_closed());
    /// assert_eq!(service.stats().sessions_opened, 1);
    /// assert_eq!(service.stats().sessions_closed, 1);
    /// ```
    pub fn connect(&self) -> Session {
        self.connect_with_priority(0)
    }

    /// Opens a session whose submissions run at `priority` (`> 0` uses the
    /// schedulers' priority lane).
    pub fn connect_with_priority(&self, priority: u8) -> Session {
        let id = self.inner.next_session.fetch_add(1, Ordering::Relaxed);
        self.inner.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        Session::open(Arc::clone(&self.inner), id, priority)
    }

    /// The service-owned engine (worker pool, registry, controller).
    pub fn engine(&self) -> &Engine {
        &self.inner.engine
    }

    /// The catalog submissions currently execute against.
    pub fn catalog(&self) -> Arc<Catalog> {
        self.inner.catalog()
    }

    /// Swaps the served catalog. All cached results are invalidated — they
    /// were computed from the old data.
    pub fn replace_catalog(&self, catalog: Arc<Catalog>) {
        let mut slot = self.inner.catalog.lock();
        *slot = catalog;
        drop(slot);
        self.invalidate_results();
    }

    /// Drops every cached result computed from `table` (call after
    /// mutating that table's data); returns how many entries were dropped.
    pub fn invalidate_table(&self, table: &str) -> usize {
        let dropped = self.inner.result_cache.invalidate_table(table);
        self.inner.engine.invalidate_sharing_table(table);
        self.inner.stats.results_invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Drops every cached result; returns how many entries were dropped.
    pub fn invalidate_results(&self) -> usize {
        let dropped = self.inner.result_cache.invalidate_all();
        self.inner.engine.invalidate_sharing();
        self.inner.stats.results_invalidated.fetch_add(dropped as u64, Ordering::Relaxed);
        dropped
    }

    /// Number of entries currently held by the plan cache.
    pub fn plan_cache_len(&self) -> usize {
        self.inner.plan_cache.len()
    }

    /// Number of entries currently held by the result cache.
    pub fn result_cache_len(&self) -> usize {
        self.inner.result_cache.len()
    }

    /// Number of submissions currently waiting in session queues (the
    /// population [`ServiceConfig::max_queued`] bounds).
    pub fn queued(&self) -> usize {
        self.inner.waiters.len()
    }

    /// Snapshot of the service's cumulative counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.inner.stats;
        let sharing = self.inner.engine.sharing_stats();
        ServiceStats {
            sessions_opened: s.sessions_opened.load(Ordering::Relaxed),
            sessions_closed: s.sessions_closed.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            result_cache_hits: s.result_cache_hits.load(Ordering::Relaxed),
            result_cache_misses: s.result_cache_misses.load(Ordering::Relaxed),
            plan_cache_hits: s.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: s.plan_cache_misses.load(Ordering::Relaxed),
            results_invalidated: s.results_invalidated.load(Ordering::Relaxed),
            timed_out: s.timed_out.load(Ordering::Relaxed),
            shed: s.shed.load(Ordering::Relaxed),
            faults_injected: self.inner.engine.fault_stats().total(),
            scan_groups: sharing.scan_groups,
            morsels_shared: sharing.morsels_shared,
            morsels_private: sharing.morsels_private,
            partials_reused: sharing.partials_reused,
        }
    }
}
