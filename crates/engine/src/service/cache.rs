//! Shared caches of the query service: a plan cache keyed on plan shape
//! and a bounded result cache with explicit invalidation.
//!
//! Both caches key on [`Plan::signature`] — the canonical structural
//! encoding of the DAG including every operator parameter — so two clients
//! building "the same query" hit the same entry while "same shape,
//! different constants" never collides.
//!
//! **Keying rules** (also documented in `docs/architecture.md` §8):
//!
//! * plan cache: `signature → Arc<Plan>`. A hit skips the deep plan clone
//!   and re-validation setup of a cold submission and executes via the
//!   engine's shared-plan path ([`crate::Engine::execute_shared`] style);
//!   results are byte-identical by construction since the *same* plan
//!   object is executed.
//! * result cache: `signature → (QueryOutput, referenced tables)`. A hit
//!   returns the stored output without touching the engine, so it is only
//!   correct while the underlying tables are unchanged — any mutation must
//!   call [`ResultCache::invalidate_table`] (or swap the catalog, which
//!   invalidates everything).
//!
//! Both caches are bounded: insertion beyond capacity evicts the least
//! recently *used* entry (lookups refresh recency).

use std::collections::HashMap;
use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::chunk::QueryOutput;
use crate::plan::Plan;

/// A bounded map with least-recently-used eviction, shared by both caches.
/// Recency is tracked in a `VecDeque` of keys (front = coldest); `get`
/// refreshes, `insert` evicts from the front once full.
struct LruMap<V> {
    capacity: usize,
    map: HashMap<String, V>,
    recency: VecDeque<String>,
}

impl<V> LruMap<V> {
    fn new(capacity: usize) -> Self {
        LruMap { capacity, map: HashMap::new(), recency: VecDeque::new() }
    }

    fn touch(&mut self, key: &str) {
        if let Some(pos) = self.recency.iter().position(|k| k == key) {
            let k = self.recency.remove(pos).expect("position is in range");
            self.recency.push_back(k);
        }
    }

    fn get(&mut self, key: &str) -> Option<&V> {
        if self.map.contains_key(key) {
            self.touch(key);
        }
        self.map.get(key)
    }

    fn insert(&mut self, key: String, value: V) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(key.clone(), value).is_some() {
            self.touch(&key);
            return;
        }
        self.recency.push_back(key);
        while self.map.len() > self.capacity {
            if let Some(coldest) = self.recency.pop_front() {
                self.map.remove(&coldest);
            }
        }
    }

    fn retain(&mut self, mut keep: impl FnMut(&V) -> bool) -> usize {
        let before = self.map.len();
        self.map.retain(|_, v| keep(v));
        self.recency.retain(|k| self.map.contains_key(k));
        before - self.map.len()
    }

    fn clear(&mut self) -> usize {
        let n = self.map.len();
        self.map.clear();
        self.recency.clear();
        n
    }

    fn len(&self) -> usize {
        self.map.len()
    }
}

/// Shared plan cache: plan signature → [`Arc<Plan>`]. Bounded, LRU.
pub(crate) struct PlanCache {
    entries: Mutex<LruMap<Arc<Plan>>>,
}

impl PlanCache {
    pub(crate) fn new(capacity: usize) -> Self {
        PlanCache { entries: Mutex::new(LruMap::new(capacity)) }
    }

    /// Returns the cached shared plan for `signature`, or inserts one built
    /// by cloning `plan`. The boolean is `true` on a hit.
    pub(crate) fn get_or_insert(&self, signature: &str, plan: &Plan) -> (Arc<Plan>, bool) {
        let mut entries = self.entries.lock();
        if let Some(shared) = entries.get(signature) {
            return (Arc::clone(shared), true);
        }
        let shared = Arc::new(plan.clone());
        entries.insert(signature.to_string(), Arc::clone(&shared));
        (shared, false)
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

/// One stored result: the output plus the tables it was computed from
/// (the invalidation keys).
struct CachedResult {
    output: QueryOutput,
    tables: Vec<String>,
}

/// Shared result cache: plan signature → output. Bounded, LRU, with
/// explicit per-table and whole-cache invalidation.
pub(crate) struct ResultCache {
    entries: Mutex<LruMap<CachedResult>>,
}

impl ResultCache {
    pub(crate) fn new(capacity: usize) -> Self {
        ResultCache { entries: Mutex::new(LruMap::new(capacity)) }
    }

    pub(crate) fn get(&self, signature: &str) -> Option<QueryOutput> {
        self.entries.lock().get(signature).map(|r| r.output.clone())
    }

    pub(crate) fn insert(&self, signature: String, output: QueryOutput, tables: Vec<String>) {
        self.entries.lock().insert(signature, CachedResult { output, tables });
    }

    /// Drops every entry computed from `table`; returns how many.
    pub(crate) fn invalidate_table(&self, table: &str) -> usize {
        self.entries.lock().retain(|r| !r.tables.iter().any(|t| t == table))
    }

    /// Drops everything; returns how many entries were held.
    pub(crate) fn invalidate_all(&self) -> usize {
        self.entries.lock().clear()
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::ScalarValue;

    fn out(v: i64) -> QueryOutput {
        QueryOutput::Scalar(ScalarValue::I64(v))
    }

    #[test]
    fn lru_evicts_coldest_and_lookups_refresh() {
        let cache = ResultCache::new(2);
        cache.insert("a".into(), out(1), vec![]);
        cache.insert("b".into(), out(2), vec![]);
        // Touch `a` so `b` is the coldest entry, then overflow.
        assert!(cache.get("a").is_some());
        cache.insert("c".into(), out(3), vec![]);
        assert_eq!(cache.len(), 2);
        assert!(cache.get("b").is_none(), "coldest entry was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn reinserting_a_key_does_not_grow_the_cache() {
        let cache = ResultCache::new(2);
        cache.insert("a".into(), out(1), vec![]);
        cache.insert("a".into(), out(2), vec![]);
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get("a"), Some(out(2)));
    }

    #[test]
    fn zero_capacity_caches_nothing() {
        let cache = ResultCache::new(0);
        cache.insert("a".into(), out(1), vec![]);
        assert_eq!(cache.len(), 0);
        assert!(cache.get("a").is_none());
    }

    #[test]
    fn table_invalidation_is_selective() {
        let cache = ResultCache::new(8);
        cache.insert("q1".into(), out(1), vec!["orders".into()]);
        cache.insert("q2".into(), out(2), vec!["orders".into(), "lineitem".into()]);
        cache.insert("q3".into(), out(3), vec!["part".into()]);
        assert_eq!(cache.invalidate_table("orders"), 2);
        assert!(cache.get("q1").is_none());
        assert!(cache.get("q2").is_none());
        assert!(cache.get("q3").is_some());
        assert_eq!(cache.invalidate_all(), 1);
        assert_eq!(cache.len(), 0);
    }
}
