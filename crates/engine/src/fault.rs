//! Deterministic fault injection: the chaos layer of the robustness story.
//!
//! The source paper motivates its convergence algorithm with survival in "a
//! noisy environment (operating system process interference, memory flushes,
//! etc.)" (§3.3.3). [`crate::noise`] reproduces the *timing* half of that
//! environment (random per-operator delays); this module generalizes it to
//! the full failure menagerie a production service must shrug off:
//!
//! * [`FaultKind::Delay`] — an operator execution is stretched (the
//!   [`crate::noise`] behavior, folded into the unified layer);
//! * [`FaultKind::OperatorPanic`] — an operator panics mid-execution,
//!   exercising the executor's panic containment
//!   ([`crate::EngineError::WorkerPanicked`] must wake the client, the
//!   worker must survive, no DOP slot may leak);
//! * [`FaultKind::DispatchStall`] — a worker stalls between taking a task
//!   off the queue and running it (emulates preemption / page faults at the
//!   *scheduler* boundary, which queue-wait accounting must absorb);
//! * [`FaultKind::SpuriousCancel`] — a query's cancel flag flips as if an
//!   external client raced a cancellation, exercising every cancel
//!   checkpoint.
//!
//! # Determinism
//!
//! Worker interleaving is not reproducible, so a shared-RNG design (draws
//! consumed in arrival order, like [`crate::noise::NoiseInjector`]) would
//! make chaos runs unrepeatable. Here every decision is a **pure function
//! of the fault site**: `hash(seed, kind, query_id, operator)` decides
//! whether the fault fires and how large it is. Two runs with the same seed
//! and the same (query id, operator) population inject byte-for-byte the
//! same outcome-changing faults regardless of thread timing — which is what
//! lets `tests/chaos_stress.rs` assert exact error outcomes from a seed.
//! Timing-only faults ([`FaultKind::Delay`], [`FaultKind::DispatchStall`])
//! never change results by construction, so their per-run jitter is
//! harmless.
//!
//! On top of the probabilistic layer, a **scripted schedule**
//! ([`FaultConfig::schedule`]) fires a chosen fault every time an exact
//! `(query_id, operator)` site executes — the precision tool for regression
//! tests ("query 3's join panics") and for the chaos suite's directed
//! scenarios.
//!
//! Enable injection with [`crate::EngineConfig::with_faults`]; the injector
//! threads through the executor's panic-guarded operator runner and both
//! scheduler policies' dispatch loops. The failure semantics each injected
//! fault must surface as are specified in `docs/architecture.md` §9.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::plan::NodeId;

/// The kinds of synthetic fault the injector can fire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Stretch one operator execution by a bounded random delay
    /// (timing-only; results are unaffected).
    Delay,
    /// Panic inside one operator execution. Must surface as
    /// [`crate::EngineError::WorkerPanicked`] on the submitting client,
    /// leave the worker thread alive and release the query's DOP slot.
    OperatorPanic,
    /// Stall the dispatching worker between dequeue and execution
    /// (timing-only; emulates OS preemption at the scheduler boundary).
    DispatchStall,
    /// Flip the query's cancel flag as if an external cancellation raced
    /// the execution. Must surface as [`crate::EngineError::Cancelled`].
    SpuriousCancel,
}

impl FaultKind {
    /// All kinds, for sweeps and reports.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::Delay,
        FaultKind::OperatorPanic,
        FaultKind::DispatchStall,
        FaultKind::SpuriousCancel,
    ];

    fn salt(self) -> u64 {
        match self {
            FaultKind::Delay => 0x1,
            FaultKind::OperatorPanic => 0x2,
            FaultKind::DispatchStall => 0x3,
            FaultKind::SpuriousCancel => 0x4,
        }
    }
}

impl std::fmt::Display for FaultKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultKind::Delay => f.write_str("delay"),
            FaultKind::OperatorPanic => f.write_str("operator-panic"),
            FaultKind::DispatchStall => f.write_str("dispatch-stall"),
            FaultKind::SpuriousCancel => f.write_str("spurious-cancel"),
        }
    }
}

/// One scripted fault: fires every time the exact `(query_id, node)` site
/// executes (probabilities do not apply to scripted entries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduledFault {
    /// Engine-assigned query id the fault targets.
    pub query_id: u64,
    /// Plan node (operator) the fault fires at.
    pub node: NodeId,
    /// What happens at the site.
    pub kind: FaultKind,
}

/// Configuration of the deterministic fault injector
/// ([`crate::EngineConfig::faults`]; `None` disables injection entirely).
///
/// ```
/// use apq_engine::fault::{FaultConfig, FaultKind};
///
/// // A mild chaos profile: occasional delays and rare panics/cancels.
/// let cfg = FaultConfig::chaos(42);
/// assert!(cfg.panic_probability > 0.0);
///
/// // A scripted schedule: query 7's node 3 always panics.
/// let cfg = FaultConfig::quiet(42).with_scheduled(7, 3, FaultKind::OperatorPanic);
/// assert_eq!(cfg.schedule.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed of the site-keyed decision hash; same seed + same sites =
    /// same outcome-changing faults, independent of thread interleaving.
    pub seed: u64,
    /// Per-operator probability of a [`FaultKind::Delay`] (0.0 ..= 1.0).
    pub delay_probability: f64,
    /// Maximum injected operator delay, microseconds.
    pub max_delay_us: u64,
    /// Per-operator probability of a [`FaultKind::OperatorPanic`].
    pub panic_probability: f64,
    /// Per-dispatch probability of a [`FaultKind::DispatchStall`].
    pub stall_probability: f64,
    /// Maximum injected dispatch stall, microseconds.
    pub max_stall_us: u64,
    /// Per-operator probability of a [`FaultKind::SpuriousCancel`].
    pub cancel_probability: f64,
    /// Scripted faults fired on exact `(query_id, node)` matches, on top
    /// of the probabilistic layer.
    pub schedule: Vec<ScheduledFault>,
    /// Controller tick indices (0-based, counted per engine) whose tick
    /// body panics — exercises the tick watchdog
    /// ([`crate::Engine::controller_restarts`]).
    pub controller_tick_panics: Vec<u64>,
}

impl FaultConfig {
    /// All probabilities zero, empty schedule: a base to build scripted
    /// configurations on.
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            seed,
            delay_probability: 0.0,
            max_delay_us: 0,
            panic_probability: 0.0,
            stall_probability: 0.0,
            max_stall_us: 0,
            cancel_probability: 0.0,
            schedule: Vec::new(),
            controller_tick_panics: Vec::new(),
        }
    }

    /// A mixed chaos profile: frequent small delays and stalls, rare
    /// panics and spurious cancels — the default diet of the chaos suite.
    pub fn chaos(seed: u64) -> Self {
        FaultConfig {
            delay_probability: 0.05,
            max_delay_us: 500,
            panic_probability: 0.02,
            stall_probability: 0.05,
            max_stall_us: 500,
            cancel_probability: 0.01,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Timing-only faults (delays + stalls, no panics or cancels): results
    /// must stay byte-identical to a fault-free run.
    pub fn timing_only(seed: u64) -> Self {
        FaultConfig {
            delay_probability: 0.1,
            max_delay_us: 1_000,
            stall_probability: 0.1,
            max_stall_us: 1_000,
            ..FaultConfig::quiet(seed)
        }
    }

    /// Adds a scripted fault (builder style).
    pub fn with_scheduled(mut self, query_id: u64, node: NodeId, kind: FaultKind) -> Self {
        self.schedule.push(ScheduledFault { query_id, node, kind });
        self
    }

    /// Makes controller tick `tick` panic (builder style); see
    /// [`FaultConfig::controller_tick_panics`].
    pub fn with_controller_tick_panic(mut self, tick: u64) -> Self {
        self.controller_tick_panics.push(tick);
        self
    }

    fn probability(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::Delay => self.delay_probability,
            FaultKind::OperatorPanic => self.panic_probability,
            FaultKind::DispatchStall => self.stall_probability,
            FaultKind::SpuriousCancel => self.cancel_probability,
        }
    }
}

/// Cumulative injection counters ([`FaultInjector::stats`]), one per kind.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Injected operator delays.
    pub delays: u64,
    /// Injected operator panics.
    pub panics: u64,
    /// Injected dispatch stalls.
    pub stalls: u64,
    /// Injected spurious cancellations.
    pub cancels: u64,
}

impl FaultStats {
    /// Total faults injected across kinds.
    pub fn total(&self) -> u64 {
        self.delays + self.panics + self.stalls + self.cancels
    }
}

/// SplitMix64: a tiny, high-quality mixing function — the entire source of
/// the injector's randomness, so decisions are pure functions of the site.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

/// Run-time state of the fault injector (shared by all workers and both
/// scheduler policies). All methods are lock-free.
#[derive(Debug)]
pub struct FaultInjector {
    config: FaultConfig,
    delays: AtomicU64,
    panics: AtomicU64,
    stalls: AtomicU64,
    cancels: AtomicU64,
}

impl FaultInjector {
    /// Creates an injector from its configuration.
    pub fn new(config: FaultConfig) -> Self {
        FaultInjector {
            config,
            delays: AtomicU64::new(0),
            panics: AtomicU64::new(0),
            stalls: AtomicU64::new(0),
            cancels: AtomicU64::new(0),
        }
    }

    /// The configuration this injector was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Snapshot of the cumulative injection counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            delays: self.delays.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            cancels: self.cancels.load(Ordering::Relaxed),
        }
    }

    fn counter(&self, kind: FaultKind) -> &AtomicU64 {
        match kind {
            FaultKind::Delay => &self.delays,
            FaultKind::OperatorPanic => &self.panics,
            FaultKind::DispatchStall => &self.stalls,
            FaultKind::SpuriousCancel => &self.cancels,
        }
    }

    /// The site hash: uniform in `[0, 2^64)`, fully determined by
    /// `(seed, kind, query_id, node)`.
    fn site_hash(&self, kind: FaultKind, query_id: u64, node: u64) -> u64 {
        let mut h = splitmix64(self.config.seed ^ kind.salt().wrapping_mul(0xA24BAED4963EE407));
        h = splitmix64(h ^ query_id.wrapping_mul(0x9FB21C651E98DF25));
        splitmix64(h ^ node)
    }

    /// Does `kind` fire at this site? Pure in the site; does not count.
    fn fires(&self, kind: FaultKind, query_id: u64, node: u64) -> bool {
        let p = self.config.probability(kind).clamp(0.0, 1.0);
        if p <= 0.0 {
            return false;
        }
        // Compare the top 53 bits against the probability: exact for p=1.0,
        // unbiased elsewhere.
        let h = self.site_hash(kind, query_id, node) >> 11;
        (h as f64) < p * (1u64 << 53) as f64
    }

    /// Decides whether an *outcome-changing* fault fires at operator
    /// boundary `(query_id, node)`: a scripted match wins, then the
    /// probabilistic layer (cancel checked before panic so a site scripted
    /// with both surfaces deterministically). Returns `None` for
    /// fault-free or timing-only sites; timing faults are applied
    /// separately by [`FaultInjector::operator_delay_us`]. Counts every
    /// fired fault.
    pub fn operator_fault(&self, query_id: u64, node: NodeId) -> Option<FaultKind> {
        for fault in &self.config.schedule {
            if fault.query_id == query_id
                && fault.node == node
                && matches!(fault.kind, FaultKind::OperatorPanic | FaultKind::SpuriousCancel)
            {
                self.counter(fault.kind).fetch_add(1, Ordering::Relaxed);
                return Some(fault.kind);
            }
        }
        let node = node as u64;
        if self.fires(FaultKind::SpuriousCancel, query_id, node) {
            self.cancels.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::SpuriousCancel);
        }
        if self.fires(FaultKind::OperatorPanic, query_id, node) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            return Some(FaultKind::OperatorPanic);
        }
        None
    }

    /// The delay (microseconds) to inject after executing `(query_id,
    /// node)`; 0 most of the time. Timing-only: never changes results.
    pub fn operator_delay_us(&self, query_id: u64, node: NodeId) -> u64 {
        let scripted = self
            .config
            .schedule
            .iter()
            .any(|f| f.query_id == query_id && f.node == node && f.kind == FaultKind::Delay);
        let node = node as u64;
        if !scripted && !self.fires(FaultKind::Delay, query_id, node) {
            return 0;
        }
        self.delays.fetch_add(1, Ordering::Relaxed);
        if self.config.max_delay_us == 0 {
            return 0;
        }
        self.site_hash(FaultKind::Delay, query_id, node ^ 0x5D) % (self.config.max_delay_us + 1)
    }

    /// The stall (microseconds) a worker injects before dispatching the
    /// `seq`-th observed task of `query_id`; 0 most of the time. Called
    /// from both scheduler policies' dispatch loops. Timing-only.
    pub fn dispatch_stall_us(&self, query_id: u64, seq: u64) -> u64 {
        if !self.fires(FaultKind::DispatchStall, query_id, seq) {
            return 0;
        }
        self.stalls.fetch_add(1, Ordering::Relaxed);
        if self.config.max_stall_us == 0 {
            return 0;
        }
        self.site_hash(FaultKind::DispatchStall, query_id, seq ^ 0xC3)
            % (self.config.max_stall_us + 1)
    }

    /// Sleeps for an injected dispatch stall (no-op most of the time);
    /// convenience wrapper for the scheduler dispatch loops.
    pub fn maybe_stall(&self, query_id: u64, seq: u64) {
        let stall = self.dispatch_stall_us(query_id, seq);
        if stall > 0 {
            std::thread::sleep(std::time::Duration::from_micros(stall));
        }
    }

    /// Should controller tick number `tick` panic? (Counted as a panic
    /// injection.)
    pub fn tick_should_panic(&self, tick: u64) -> bool {
        if self.config.controller_tick_panics.contains(&tick) {
            self.panics.fetch_add(1, Ordering::Relaxed);
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_config_never_fires() {
        let inj = FaultInjector::new(FaultConfig::quiet(1));
        for q in 0..20 {
            for n in 0..20 {
                assert_eq!(inj.operator_fault(q, n), None);
                assert_eq!(inj.operator_delay_us(q, n), 0);
                assert_eq!(inj.dispatch_stall_us(q, n as u64), 0);
            }
        }
        assert_eq!(inj.stats().total(), 0);
    }

    #[test]
    fn decisions_are_deterministic_per_site() {
        let a = FaultInjector::new(FaultConfig::chaos(42));
        let b = FaultInjector::new(FaultConfig::chaos(42));
        for q in 0..50 {
            for n in 0..20 {
                assert_eq!(a.operator_fault(q, n), b.operator_fault(q, n));
                assert_eq!(a.operator_delay_us(q, n), b.operator_delay_us(q, n));
                assert_eq!(a.dispatch_stall_us(q, n as u64), b.dispatch_stall_us(q, n as u64));
            }
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().total() > 0, "chaos profile fired nothing over 1000 sites");
    }

    #[test]
    fn different_seeds_disagree_somewhere() {
        let a = FaultInjector::new(FaultConfig::chaos(1));
        let b = FaultInjector::new(FaultConfig::chaos(2));
        let mut differs = false;
        for q in 0..50 {
            for n in 0..20 {
                differs |= a.operator_fault(q, n) != b.operator_fault(q, n);
                differs |= a.operator_delay_us(q, n) != b.operator_delay_us(q, n);
            }
        }
        assert!(differs, "seeds 1 and 2 injected identical faults at 1000 sites");
    }

    #[test]
    fn full_probability_always_fires_within_bounds() {
        let cfg = FaultConfig {
            delay_probability: 1.0,
            max_delay_us: 50,
            stall_probability: 1.0,
            max_stall_us: 75,
            ..FaultConfig::quiet(3)
        };
        let inj = FaultInjector::new(cfg);
        let mut nonzero_delay = false;
        for q in 0..10 {
            for n in 0..10 {
                let d = inj.operator_delay_us(q, n);
                assert!(d <= 50);
                nonzero_delay |= d > 0;
                assert!(inj.dispatch_stall_us(q, n as u64) <= 75);
            }
        }
        assert!(nonzero_delay);
        assert_eq!(inj.stats().delays, 100);
        assert_eq!(inj.stats().stalls, 100);
    }

    #[test]
    fn scripted_schedule_overrides_probabilities() {
        let cfg = FaultConfig::quiet(9)
            .with_scheduled(3, 1, FaultKind::OperatorPanic)
            .with_scheduled(4, 2, FaultKind::SpuriousCancel)
            .with_scheduled(5, 0, FaultKind::Delay);
        let inj = FaultInjector::new(cfg);
        assert_eq!(inj.operator_fault(3, 1), Some(FaultKind::OperatorPanic));
        assert_eq!(inj.operator_fault(3, 2), None, "only the exact node matches");
        assert_eq!(inj.operator_fault(2, 1), None, "only the exact query matches");
        assert_eq!(inj.operator_fault(4, 2), Some(FaultKind::SpuriousCancel));
        // Scripted delays fire even with probability 0 (bounded by
        // max_delay_us, which is 0 here, so the duration collapses to 0 but
        // the site still counts as fired).
        inj.operator_delay_us(5, 0);
        let stats = inj.stats();
        assert_eq!(stats.panics, 1);
        assert_eq!(stats.cancels, 1);
        assert_eq!(stats.delays, 1);
    }

    #[test]
    fn controller_tick_panics_fire_on_listed_ticks_only() {
        let inj = FaultInjector::new(FaultConfig::quiet(1).with_controller_tick_panic(2));
        assert!(!inj.tick_should_panic(0));
        assert!(!inj.tick_should_panic(1));
        assert!(inj.tick_should_panic(2));
        assert!(!inj.tick_should_panic(3));
        assert_eq!(inj.stats().panics, 1);
    }

    #[test]
    fn kind_display_and_salts_are_distinct() {
        let mut salts: Vec<u64> = FaultKind::ALL.iter().map(|k| k.salt()).collect();
        salts.dedup();
        assert_eq!(salts.len(), 4);
        assert_eq!(FaultKind::OperatorPanic.to_string(), "operator-panic");
        assert_eq!(FaultKind::ALL.len(), 4);
    }
}
