//! The elastic resource controller: a feedback loop over live scheduler
//! signals, closing the paper's Vectorwise-comparison gap (§4.2.4).
//!
//! One-shot admission control grants a query its degree of parallelism once,
//! at admit time, and never revisits the decision — the regime the paper
//! hypothesizes degrades to serial execution under sustained concurrency.
//! This module adds the missing half of a real resource governor: a
//! controller that runs alongside the scheduler, periodically reads the live
//! signals every in-flight query already exports, and acts on two levers.
//!
//! ```text
//!              signals in                          levers out
//!              ──────────                          ──────────
//!   Engine::active_queries() ──┐            ┌──► QueryHandle::set_admitted_dop
//!   QueryHandle::signals()     │  ┌──────┐  │    (elastic DOP re-grant /
//!     (queue_wait, busy) ──────┼─►│ tick │──┤     claw-back)
//!   Scheduler::pending_tasks() │  └──────┘  │
//!     (pool pressure) ─────────┘            └──► QueryHandle::set_morsel_rows
//!                                                (adaptive morsel sizing)
//! ```
//!
//! **Lever 1 — elastic DOP.** Every governed query (admitted with a nonzero
//! DOP cap) is entitled to an equal share of the pool:
//! `target = max(1, total_dop / n_governed)`. When clients finish,
//! `n_governed` shrinks and survivors are re-granted up to their larger
//! share; when new clients are admitted, the shares shrink and running
//! queries are clawed back. Claw-backs drain gracefully: the scheduler
//! re-reads the cap at every slot acquisition, so a cap below the number of
//! currently running tasks just stops granting new slots — nothing is
//! pre-empted.
//!
//! **Lever 2 — adaptive morsel sizing.** Per query, per tick, the controller
//! diffs the cumulative queue-wait/busy signals and computes the interval's
//! *wait share*. A high share means the query's tasks queue behind the pool
//! (dispatch overhead dominates): the morsel size is doubled, halving the
//! task count. A low share *with idle pool capacity* (fewer pending tasks
//! than workers) means workers starve between morsels: the size is halved,
//! fanning wider. Sizes are clamped to
//! [`ControllerConfig::min_morsel_rows`], [`ControllerConfig::max_morsel_rows`].
//!
//! **Stability rules** (see `docs/architecture.md` §5 for the full spec):
//! geometric steps only (×2 / ÷2), at most one step per query per tick, a
//! dead band between the two watermarks where nothing changes, and a
//! minimum-signal floor ([`ControllerConfig::min_signal_us`]) so ticks that
//! observed almost no new work take no action. DOP targets are computed
//! fresh each tick from the governed-query count, so the lever is
//! idempotent: repeated ticks over an unchanged population write nothing.
//!
//! **Correctness is unaffected by construction.** The DOP cap only throttles
//! dispatch concurrency, and the morsel size only changes how a pipeline's
//! input is cut — assembly in morsel order is size-invariant, so results
//! stay byte-identical to any static configuration
//! (`tests/integration_morsel_equivalence.rs` asserts exactly that, with the
//! controller ticking at full speed).
//!
//! Enable it via [`crate::EngineConfig::with_controller`]:
//!
//! ```
//! use std::time::Duration;
//! use apq_engine::{ControllerConfig, Engine, EngineConfig, QueryOptions};
//!
//! let engine = Engine::new(
//!     EngineConfig::with_workers(2)
//!         .with_controller(ControllerConfig::default().with_tick(Duration::from_millis(1))),
//! );
//! // A query admitted under throttling...
//! let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
//! // ...is re-granted the whole pool as soon as a tick sees it alone.
//! // (Ticks run on a background thread; `controller_tick` forces one
//! // synchronously, which tests and examples use for determinism.)
//! # drop(handle);
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;

use crate::scheduler::QueryHandle;

/// Configuration of the elastic resource controller
/// ([`crate::EngineConfig::controller`]; `None` disables the subsystem
/// entirely and reproduces static-admission behavior).
///
/// ```
/// use std::time::Duration;
/// use apq_engine::ControllerConfig;
///
/// let cfg = ControllerConfig::default()
///     .with_tick(Duration::from_millis(2))
///     .with_total_dop(8)
///     .with_morsel_bounds(4_096, 262_144);
/// assert_eq!(cfg.total_dop, 8);
/// assert!(cfg.elastic_dop && cfg.adaptive_morsels);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Control interval of the background thread. Shorter ticks react
    /// faster but poll the registry more often; the default (1 ms) is far
    /// below any query worth governing.
    pub tick: Duration,
    /// Pool capacity the DOP lever distributes among governed queries;
    /// `0` = the engine's worker count.
    pub total_dop: usize,
    /// Enables the elastic-DOP lever (mid-flight re-grants / claw-backs).
    pub elastic_dop: bool,
    /// Enables the adaptive morsel-size lever.
    pub adaptive_morsels: bool,
    /// Lower clamp of adaptive morsel sizes, in rows.
    pub min_morsel_rows: usize,
    /// Upper clamp of adaptive morsel sizes, in rows.
    pub max_morsel_rows: usize,
    /// Wait-share high watermark: above it the morsel size doubles
    /// (scheduling overhead dominates).
    pub widen_wait_share: f64,
    /// Wait-share low watermark: below it — and only with idle pool
    /// capacity — the morsel size halves (workers starve between morsels).
    /// Must be below [`ControllerConfig::widen_wait_share`]; the gap is the
    /// dead band that prevents oscillation.
    pub narrow_wait_share: f64,
    /// Minimum new signal (queue wait + busy, microseconds) a tick must
    /// observe for a query before acting on its morsel size. Ticks below
    /// the floor leave the query untouched and keep the signal window open.
    pub min_signal_us: u64,
    /// When set, the DOP lever splits the pool proportionally to query
    /// priority instead of equally: each governed query weighs
    /// `priority + 1` and is granted `max(1, total · w / Σw)`. Off by
    /// default (equal shares), preserving the paper's baseline behavior.
    pub weighted_shares: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            tick: Duration::from_millis(1),
            total_dop: 0,
            elastic_dop: true,
            adaptive_morsels: true,
            min_morsel_rows: 1_024,
            max_morsel_rows: 1 << 20,
            widen_wait_share: 0.5,
            narrow_wait_share: 0.1,
            min_signal_us: 200,
            weighted_shares: false,
        }
    }
}

impl ControllerConfig {
    /// Sets the control interval (builder style).
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Sets the pool capacity the DOP lever distributes (builder style);
    /// `0` = the engine's worker count.
    pub fn with_total_dop(mut self, total_dop: usize) -> Self {
        self.total_dop = total_dop;
        self
    }

    /// Enables/disables the elastic-DOP lever (builder style).
    pub fn with_elastic_dop(mut self, enabled: bool) -> Self {
        self.elastic_dop = enabled;
        self
    }

    /// Enables/disables the adaptive morsel-size lever (builder style).
    pub fn with_adaptive_morsels(mut self, enabled: bool) -> Self {
        self.adaptive_morsels = enabled;
        self
    }

    /// Enables/disables priority-weighted DOP shares (builder style).
    pub fn with_weighted_shares(mut self, enabled: bool) -> Self {
        self.weighted_shares = enabled;
        self
    }

    /// Sets the adaptive morsel-size clamps, in rows (builder style).
    /// Values are ordered and clamped to at least 1.
    pub fn with_morsel_bounds(mut self, min_rows: usize, max_rows: usize) -> Self {
        let lo = min_rows.max(1);
        let hi = max_rows.max(1);
        self.min_morsel_rows = lo.min(hi);
        self.max_morsel_rows = lo.max(hi);
        self
    }
}

/// What one control round did (diagnostics; returned by
/// [`crate::Engine::controller_tick`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TickReport {
    /// Queries whose admitted DOP was changed this tick (re-grants and
    /// claw-backs).
    pub dop_changes: usize,
    /// Queries whose morsel size was changed this tick.
    pub morsel_changes: usize,
    /// Governed queries observed (nonzero admitted-DOP cap).
    pub governed: usize,
}

impl TickReport {
    /// Total lever actions taken this tick.
    pub fn actions(&self) -> usize {
        self.dop_changes + self.morsel_changes
    }
}

/// The census predicate: is this query governed by the elastic-DOP lever?
/// Governed queries hold a nonzero admitted-DOP cap and are not cancelled.
///
/// This is the *single* definition used both by controller ticks
/// ([`ResourceController::tick`] over [`crate::Engine::active_queries`]) and
/// by admit-time share computation ([`crate::Engine::reserve_admitted`]), so
/// a reservation's admit-time grant and the next tick's re-grant are
/// computed over the same population — the unified census.
pub(crate) fn is_governed(handle: &QueryHandle) -> bool {
    handle.admitted_dop() > 0 && !handle.is_cancelled()
}

/// The equal-share DOP target for a pool of `total` slots split across
/// `n_governed` governed queries (shared by admit-time grants and tick
/// re-grants).
pub(crate) fn equal_share(total: usize, n_governed: usize) -> usize {
    (total / n_governed.max(1)).max(1)
}

/// A query's DOP weight under [`ControllerConfig::weighted_shares`]:
/// `priority + 1`, so priority-0 queries still weigh something and a
/// priority-3 query is entitled to 4× their slice of the pool.
pub(crate) fn share_weight(priority: u8) -> usize {
    priority as usize + 1
}

/// The weighted-share DOP target: `max(1, total · weight / weight_sum)`
/// (shared by admit-time grants and tick re-grants, like [`equal_share`]).
pub(crate) fn weighted_share(total: usize, weight: usize, weight_sum: usize) -> usize {
    (total * weight / weight_sum.max(1)).max(1)
}

/// Per-query cumulative-signal snapshot from the previous tick, so each
/// tick works on the interval's delta.
#[derive(Debug, Default, Clone, Copy)]
struct SignalWindow {
    queue_wait_us: u64,
    busy_us: u64,
}

/// The controller state shared between the engine (synchronous ticks) and
/// the background control thread.
pub(crate) struct ResourceController {
    config: ControllerConfig,
    n_workers: usize,
    default_morsel_rows: usize,
    /// Last-seen cumulative signals per query id (the per-interval delta
    /// baseline); entries of finished queries are retired each tick.
    windows: Mutex<HashMap<u64, SignalWindow>>,
}

impl ResourceController {
    pub(crate) fn new(
        config: ControllerConfig,
        n_workers: usize,
        default_morsel_rows: usize,
    ) -> Self {
        ResourceController {
            config,
            n_workers: n_workers.max(1),
            default_morsel_rows: default_morsel_rows.max(1),
            windows: Mutex::new(HashMap::new()),
        }
    }

    pub(crate) fn config(&self) -> &ControllerConfig {
        &self.config
    }

    /// Discards all per-query signal windows. The tick watchdog calls this
    /// after containing a panicking tick: a panic may have unwound midway
    /// through a window update, so the next tick restarts from fresh
    /// baselines instead of acting on half-written deltas (the cost is one
    /// interval of lost signal, not correctness — levers only ever write
    /// admitted DOP and morsel size, both safe at any value).
    pub(crate) fn reset(&self) {
        self.windows.lock().clear();
    }

    /// One control round over the currently active queries. `pending_tasks`
    /// is the scheduler's momentary backlog (pool pressure).
    pub(crate) fn tick(&self, active: &[Arc<QueryHandle>], pending_tasks: usize) -> TickReport {
        let mut governed = 0;
        let dop_changes = if self.config.elastic_dop {
            self.rebalance_dop(active, &mut governed)
        } else {
            governed = active.iter().filter(|h| is_governed(h)).count();
            0
        };
        let morsel_changes = if self.config.adaptive_morsels {
            self.adapt_morsels(active, pending_tasks)
        } else {
            0
        };
        TickReport { dop_changes, morsel_changes, governed }
    }

    /// Lever 1: elastic DOP. Governed queries (nonzero cap, not cancelled)
    /// each get `max(1, total / n_governed)` — or, under
    /// [`ControllerConfig::weighted_shares`], a slice proportional to
    /// `priority + 1`. Writes only on change, so an unchanged population
    /// produces no timeline noise.
    fn rebalance_dop(&self, active: &[Arc<QueryHandle>], governed_out: &mut usize) -> usize {
        let governed: Vec<&Arc<QueryHandle>> = active.iter().filter(|h| is_governed(h)).collect();
        *governed_out = governed.len();
        if governed.is_empty() {
            return 0;
        }
        let total = if self.config.total_dop == 0 { self.n_workers } else { self.config.total_dop };
        let weight_sum: usize = governed.iter().map(|h| share_weight(h.priority())).sum();
        let mut changes = 0;
        for handle in governed {
            let target = if self.config.weighted_shares {
                weighted_share(total, share_weight(handle.priority()), weight_sum)
            } else {
                equal_share(total, *governed_out)
            };
            if handle.admitted_dop() != target {
                handle.set_admitted_dop(target);
                changes += 1;
            }
        }
        changes
    }

    /// Lever 2: per-query morsel sizing from the interval's wait share.
    fn adapt_morsels(&self, active: &[Arc<QueryHandle>], pending_tasks: usize) -> usize {
        let mut windows = self.windows.lock();
        let mut changes = 0;
        for handle in active {
            let signals = handle.signals();
            let window = windows.entry(handle.id()).or_default();
            let wait = signals.queue_wait_us.saturating_sub(window.queue_wait_us);
            let busy = signals.busy_us.saturating_sub(window.busy_us);
            if wait + busy < self.config.min_signal_us {
                // Not enough new evidence this interval; keep the window
                // open so the signal accumulates across ticks.
                continue;
            }
            window.queue_wait_us = signals.queue_wait_us;
            window.busy_us = signals.busy_us;

            let share = wait as f64 / (wait + busy) as f64;
            let current = handle.morsel_rows_hint().unwrap_or(self.default_morsel_rows);
            let next = if share >= self.config.widen_wait_share {
                (current.saturating_mul(2)).min(self.config.max_morsel_rows)
            } else if share <= self.config.narrow_wait_share && pending_tasks < self.n_workers {
                (current / 2).max(self.config.min_morsel_rows)
            } else {
                current
            };
            if next != current {
                handle.set_morsel_rows(next);
                changes += 1;
            }
        }
        // Retire windows of queries no longer in flight.
        if windows.len() > active.len() {
            let live: Vec<u64> = active.iter().map(|h| h.id()).collect();
            windows.retain(|id, _| live.contains(id));
        }
        changes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle(id: u64, dop: usize) -> Arc<QueryHandle> {
        Arc::new(QueryHandle::new(id, 0, dop))
    }

    fn controller(config: ControllerConfig) -> ResourceController {
        ResourceController::new(config, 4, 8_192)
    }

    #[test]
    fn equal_share_regrants_when_peers_leave_and_claws_back_when_they_return() {
        let ctrl = controller(ControllerConfig::default().with_adaptive_morsels(false));
        let a = handle(1, 1);
        let b = handle(2, 1);
        let c = handle(3, 1);
        let d = handle(4, 1);

        // Four governed queries on a 4-wide pool: everyone holds share 1.
        let report = ctrl.tick(&[a.clone(), b.clone(), c.clone(), d.clone()], 0);
        assert_eq!(report.governed, 4);
        assert_eq!(report.dop_changes, 0, "equal shares already held");

        // Half the clients finish: survivors are re-granted to share 2.
        let report = ctrl.tick(&[a.clone(), b.clone()], 0);
        assert_eq!(report.dop_changes, 2);
        assert_eq!(a.admitted_dop(), 2);
        assert_eq!(b.admitted_dop(), 2);

        // The last survivor gets the whole pool.
        let report = ctrl.tick(std::slice::from_ref(&a), 0);
        assert_eq!(report.dop_changes, 1);
        assert_eq!(a.admitted_dop(), 4);
        // Idempotent: a second tick over the same population writes nothing.
        assert_eq!(ctrl.tick(std::slice::from_ref(&a), 0).actions(), 0);
        assert_eq!(a.dop_timeline().len(), 3, "admit + two re-grants");

        // Three new clients arrive: the incumbent is clawed back to 1.
        let e = handle(5, 1);
        let f = handle(6, 1);
        let g = handle(7, 1);
        ctrl.tick(&[a.clone(), e, f, g], 0);
        assert_eq!(a.admitted_dop(), 1);
    }

    #[test]
    fn weighted_shares_split_the_pool_by_priority() {
        let ctrl = ResourceController::new(
            ControllerConfig::default()
                .with_adaptive_morsels(false)
                .with_weighted_shares(true)
                .with_total_dop(8),
            4,
            8_192,
        );
        // Priorities 3 and 0: weights 4 and 1, so the pool of 8 splits into
        // 8·4/5 = 6 and 8·1/5 = 1.
        let hp = Arc::new(QueryHandle::new(1, 3, 1));
        let lp = Arc::new(QueryHandle::new(2, 0, 1));
        let report = ctrl.tick(&[hp.clone(), lp.clone()], 0);
        assert_eq!(report.governed, 2);
        assert_eq!(hp.admitted_dop(), 6);
        assert_eq!(lp.admitted_dop(), 1, "low-priority share floors at 1");
        // Idempotent over an unchanged population.
        assert_eq!(ctrl.tick(&[hp.clone(), lp.clone()], 0).actions(), 0);
        // Equal priorities degrade to equal shares.
        let a = Arc::new(QueryHandle::new(3, 1, 1));
        let b = Arc::new(QueryHandle::new(4, 1, 1));
        ctrl.tick(&[a.clone(), b.clone()], 0);
        assert_eq!(a.admitted_dop(), 4);
        assert_eq!(b.admitted_dop(), 4);
    }

    #[test]
    fn uncapped_and_cancelled_queries_are_not_governed() {
        let ctrl = controller(ControllerConfig::default().with_adaptive_morsels(false));
        let unlimited = handle(1, 0);
        let cancelled = handle(2, 2);
        cancelled.cancel();
        let governed = handle(3, 1);
        let report = ctrl.tick(&[unlimited.clone(), cancelled.clone(), governed.clone()], 0);
        assert_eq!(report.governed, 1);
        assert_eq!(unlimited.admitted_dop(), 0, "unlimited queries stay unlimited");
        assert_eq!(cancelled.admitted_dop(), 2, "cancelled queries are left alone");
        assert_eq!(governed.admitted_dop(), 4, "the sole governed query gets the pool");
    }

    #[test]
    fn high_wait_share_widens_morsels_up_to_the_clamp() {
        let ctrl = controller(
            ControllerConfig::default().with_elastic_dop(false).with_morsel_bounds(1_024, 16_384),
        );
        let h = handle(1, 0);
        h.set_morsel_rows(8_192);
        // Simulate an interval dominated by queue wait.
        h.test_add_signals(10_000, 100);
        let report = ctrl.tick(std::slice::from_ref(&h), 99);
        assert_eq!(report.morsel_changes, 1);
        assert_eq!(h.morsel_rows_hint(), Some(16_384));
        // Already at the clamp: no further widening even under pure wait.
        h.test_add_signals(10_000, 100);
        assert_eq!(ctrl.tick(std::slice::from_ref(&h), 99).morsel_changes, 0);
        assert_eq!(h.morsel_rows_hint(), Some(16_384));
    }

    #[test]
    fn low_wait_share_narrows_only_with_idle_capacity() {
        let ctrl = controller(
            ControllerConfig::default().with_elastic_dop(false).with_morsel_bounds(1_024, 65_536),
        );
        let h = handle(1, 0);
        h.set_morsel_rows(8_192);
        // Busy-dominated interval, but the pool is saturated (pending ≥
        // workers): narrowing would add tasks to an already-full queue.
        h.test_add_signals(10, 10_000);
        assert_eq!(ctrl.tick(std::slice::from_ref(&h), 4).morsel_changes, 0);
        // Same signal with idle capacity: narrow.
        h.test_add_signals(10, 10_000);
        let report = ctrl.tick(std::slice::from_ref(&h), 0);
        assert_eq!(report.morsel_changes, 1);
        assert_eq!(h.morsel_rows_hint(), Some(4_096));
    }

    #[test]
    fn dead_band_and_signal_floor_hold_the_size() {
        let ctrl = controller(ControllerConfig::default().with_elastic_dop(false));
        let h = handle(1, 0);
        // No override yet: the engine default seeds the trajectory.
        // Mid-band share (between the watermarks): no action.
        h.test_add_signals(3_000, 7_000); // share 0.3
        assert_eq!(ctrl.tick(std::slice::from_ref(&h), 0).morsel_changes, 0);
        assert_eq!(h.morsel_rows_hint(), None, "dead band must not touch the size");
        // Below the signal floor: no action, window stays open.
        h.test_add_signals(50, 50);
        assert_eq!(ctrl.tick(std::slice::from_ref(&h), 0).morsel_changes, 0);
        // The accumulated signal (100 + 100 over two ticks ≥ floor of 200)
        // eventually crosses the floor and acts on the combined interval.
        h.test_add_signals(5_000, 50);
        let report = ctrl.tick(std::slice::from_ref(&h), 99);
        assert_eq!(report.morsel_changes, 1, "accumulated wait-heavy signal must widen");
    }

    #[test]
    fn windows_are_retired_with_their_queries() {
        let ctrl = controller(ControllerConfig::default().with_elastic_dop(false));
        let a = handle(1, 0);
        let b = handle(2, 0);
        a.test_add_signals(1_000, 1_000);
        b.test_add_signals(1_000, 1_000);
        ctrl.tick(&[a.clone(), b], 0);
        assert_eq!(ctrl.windows.lock().len(), 2);
        ctrl.tick(&[a], 0);
        assert_eq!(ctrl.windows.lock().len(), 1, "finished query's window must retire");
    }

    #[test]
    fn reset_discards_signal_windows() {
        let ctrl = controller(ControllerConfig::default().with_elastic_dop(false));
        let a = handle(1, 0);
        a.test_add_signals(1_000, 1_000);
        ctrl.tick(std::slice::from_ref(&a), 0);
        assert_eq!(ctrl.windows.lock().len(), 1);
        ctrl.reset();
        assert!(ctrl.windows.lock().is_empty());
    }

    #[test]
    fn disabled_levers_take_no_action() {
        let ctrl = controller(
            ControllerConfig::default().with_elastic_dop(false).with_adaptive_morsels(false),
        );
        let h = handle(1, 1);
        h.test_add_signals(10_000, 0);
        let report = ctrl.tick(std::slice::from_ref(&h), 0);
        assert_eq!(report.actions(), 0);
        assert_eq!(report.governed, 1, "governed count is still reported");
        assert_eq!(h.admitted_dop(), 1);
        assert_eq!(h.morsel_rows_hint(), None);
    }

    #[test]
    fn config_builders_clamp_and_order_bounds() {
        let cfg = ControllerConfig::default()
            .with_tick(Duration::from_micros(500))
            .with_total_dop(16)
            .with_morsel_bounds(0, 0);
        assert_eq!(cfg.tick, Duration::from_micros(500));
        assert_eq!(cfg.total_dop, 16);
        assert_eq!(cfg.min_morsel_rows, 1);
        assert_eq!(cfg.max_morsel_rows, 1);
        let wide = ControllerConfig::default().with_morsel_bounds(4_096, 1_024);
        assert_eq!(wide.min_morsel_rows, 1_024, "inverted bounds are reordered");
        assert_eq!(wide.max_morsel_rows, 4_096, "inverted bounds are reordered");
    }
}
