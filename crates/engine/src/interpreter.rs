//! Node interpreter: executes one plan node given its materialized inputs.
//!
//! The paper's run-time environment has "an interpreter per CPU core
//! \[that\] executes the scheduled operators" (§2). [`execute_node`] is that
//! interpreter's body: it dispatches an [`OperatorSpec`] over the input
//! [`Chunk`]s and materializes the output chunk. It is a pure function —
//! all scheduling, profiling and threading lives in the executor.

use std::sync::Arc;

use apq_columnar::{Catalog, Column, DataType, Oid, ScalarValue};
use apq_operators::{
    calc_col_col, calc_col_scalar, calc_scalar_col, fetch, fetch_clamped, grouped_agg, scalar_agg,
    select, select_with_candidates, AggState, BinaryOp, GroupedAgg, JoinHashTable, JoinResult,
    OperatorError,
};

use crate::chunk::{Chunk, JoinView, OidsView};
use crate::error::{EngineError, Result};
use crate::plan::{JoinSide, NodeId, OperatorSpec};

fn input_error(node: NodeId, expected: &'static str, found: &Chunk) -> EngineError {
    EngineError::InvalidInput { node, expected, found: found.kind() }
}

fn as_column(node: NodeId, chunk: &Chunk) -> Result<&Column> {
    match chunk {
        Chunk::Column(c) => Ok(c),
        other => Err(input_error(node, "column", other)),
    }
}

/// Returns the candidate-list view (visible oids + derived stream offset).
fn as_oids(node: NodeId, chunk: &Chunk) -> Result<&OidsView> {
    match chunk {
        Chunk::Oids(view) => Ok(view),
        other => Err(input_error(node, "oids", other)),
    }
}

fn as_hash(node: NodeId, chunk: &Chunk) -> Result<&Arc<JoinHashTable>> {
    match chunk {
        Chunk::Hash(h) => Ok(h),
        other => Err(input_error(node, "hash", other)),
    }
}

/// Returns the join-result view (visible pairs + derived stream offset).
fn as_join(node: NodeId, chunk: &Chunk) -> Result<&JoinView> {
    match chunk {
        Chunk::Join(view) => Ok(view),
        other => Err(input_error(node, "join", other)),
    }
}

fn as_scalar(node: NodeId, chunk: &Chunk) -> Result<&ScalarValue> {
    match chunk {
        Chunk::Scalar(s) => Ok(s),
        other => Err(input_error(node, "scalar", other)),
    }
}

/// Executes one operator over its inputs.
///
/// `node` is only used to label errors; `catalog` resolves `ScanColumn`
/// leaves.
pub fn execute_node(
    node: NodeId,
    spec: &OperatorSpec,
    inputs: &[Chunk],
    catalog: &Catalog,
) -> Result<Chunk> {
    match spec {
        OperatorSpec::ScanColumn { table, column, range } => {
            let col = catalog.table(table)?.column(column)?;
            let end = range.end.min(col.len());
            let start = range.start.min(end);
            Ok(Chunk::Column(col.slice(start, end - start)?))
        }

        OperatorSpec::SlicePart { start, len } => slice_part(node, &inputs[0], *start, *len),

        OperatorSpec::Select { predicate } => {
            let col = as_column(node, &inputs[0])?;
            let oids = if inputs.len() > 1 {
                let cands = as_oids(node, &inputs[1])?;
                select_with_candidates(col, predicate, cands.as_slice())?
            } else {
                select(col, predicate)?
            };
            // A selection compacts its input into a new candidate stream.
            Ok(Chunk::oids(oids))
        }

        OperatorSpec::PredMask { predicate } => {
            let col = as_column(node, &inputs[0])?;
            // Element-wise outputs stay oid-aligned with their input so that
            // downstream selections keep producing absolute oids even when the
            // input is a base-column partition (paper §2.3 alignment).
            Ok(Chunk::Column(
                Column::from_bool(predicate.eval_mask(col)?).with_base_oid(col.base_oid()),
            ))
        }

        OperatorSpec::IfThenElse { otherwise } => {
            let cond = as_column(node, &inputs[0])?;
            let then = as_column(node, &inputs[1])?;
            Ok(Chunk::Column(
                if_then_else(node, cond, then, otherwise)?.with_base_oid(cond.base_oid()),
            ))
        }

        OperatorSpec::Fetch => {
            let oids = as_oids(node, &inputs[0])?;
            let col = as_column(node, &inputs[1])?;
            // The fetched values are positionally aligned with the candidate
            // stream, so the output column starts at the oid view's stream
            // offset. This is what lets a position-emitting consumer (probe,
            // select) be cloned over SlicePart partitions of a stream: each
            // partition's fetch output knows where in the stream it sits.
            Ok(Chunk::Column(fetch(col, oids.as_slice())?.with_base_oid(oids.stream_base())))
        }

        OperatorSpec::FetchClamped => {
            let oids = as_oids(node, &inputs[0])?;
            let col = as_column(node, &inputs[1])?;
            let (fetched, _, dropped) = fetch_clamped(col, oids.as_slice())?;
            // Dropped oids shift positions, so stream alignment only
            // survives a clamp that dropped nothing.
            let base = if dropped == 0 { oids.stream_base() } else { 0 };
            Ok(Chunk::Column(fetched.with_base_oid(base)))
        }

        OperatorSpec::HashBuild => {
            let col = as_column(node, &inputs[0])?;
            Ok(Chunk::Hash(Arc::new(JoinHashTable::build(col)?)))
        }

        OperatorSpec::HashProbe => {
            let outer = as_column(node, &inputs[0])?;
            let hash = as_hash(node, &inputs[1])?;
            Ok(Chunk::join(hash.probe(outer)?))
        }

        OperatorSpec::SemiJoin => {
            let outer = as_column(node, &inputs[0])?;
            let hash = as_hash(node, &inputs[1])?;
            Ok(Chunk::oids(hash.probe_semi(outer)?))
        }

        OperatorSpec::AntiJoin => {
            let outer = as_column(node, &inputs[0])?;
            let hash = as_hash(node, &inputs[1])?;
            Ok(Chunk::oids(anti_join(outer, hash)?))
        }

        OperatorSpec::ProjectJoinSide { side } => {
            let join = as_join(node, &inputs[0])?;
            let oids = match side {
                JoinSide::Outer => join.outer().to_vec(),
                JoinSide::Inner => join.inner().to_vec(),
            };
            // The projected oid list is fresh backing, but inherits the join
            // window's offset within the join-result stream.
            Ok(Chunk::oids_at(oids, join.stream_base()))
        }

        OperatorSpec::OidsFromColumn => {
            let col = as_column(node, &inputs[0])?;
            let oids: Vec<Oid> = match col.data_type() {
                DataType::Int64 => col
                    .i64_values()
                    .map_err(OperatorError::from)?
                    .iter()
                    .map(|&v| v.max(0) as Oid)
                    .collect(),
                DataType::Int32 => col
                    .i32_values()
                    .map_err(OperatorError::from)?
                    .iter()
                    .map(|&v| v.max(0) as Oid)
                    .collect(),
                other => {
                    return Err(EngineError::InvalidPlan(format!(
                        "node {node}: cannot interpret a {other} column as oids"
                    )))
                }
            };
            Ok(Chunk::oids_at(oids, col.base_oid()))
        }

        OperatorSpec::Calc { op, left_scalar, right_scalar } => {
            let first = as_column(node, &inputs[0])?;
            let out = match (left_scalar, right_scalar) {
                (Some(s), None) => calc_scalar_col(*op, s, first)?,
                (None, Some(s)) => calc_col_scalar(*op, first, s)?,
                (None, None) => {
                    let second = as_column(node, &inputs[1])?;
                    calc_col_col(*op, first, second)?
                }
                (Some(_), Some(_)) => {
                    return Err(EngineError::InvalidPlan(format!(
                        "node {node}: calc with two scalar operands has no column input"
                    )))
                }
            };
            // `batcalc` outputs stay aligned with their (first) column input.
            Ok(Chunk::Column(out.with_base_oid(first.base_oid())))
        }

        OperatorSpec::ScalarAgg { func } => {
            let col = as_column(node, &inputs[0])?;
            Ok(Chunk::AggPartial(scalar_agg(*func, col)?))
        }

        OperatorSpec::FinalizeAgg { func } => {
            let mut state = AggState::new(*func);
            for chunk in inputs {
                match chunk {
                    Chunk::AggPartial(p) => state.merge(p)?,
                    other => return Err(input_error(node, "agg-partial", other)),
                }
            }
            Ok(Chunk::Scalar(state.finish()))
        }

        OperatorSpec::GroupAgg { func } => {
            let keys = as_column(node, &inputs[0])?;
            let values = as_column(node, &inputs[1])?;
            Ok(Chunk::Grouped(Arc::new(grouped_agg(*func, keys, values)?)))
        }

        OperatorSpec::MergeGrouped => {
            let mut iter = inputs.iter();
            let first = match iter.next() {
                Some(Chunk::Grouped(g)) => g,
                Some(other) => return Err(input_error(node, "grouped", other)),
                None => return Err(EngineError::Operator(OperatorError::EmptyInput("mergegroup"))),
            };
            let mut merged = GroupedAgg::new(first.func());
            merged.merge(first)?;
            for chunk in iter {
                match chunk {
                    Chunk::Grouped(g) => merged.merge(g)?,
                    other => return Err(input_error(node, "grouped", other)),
                }
            }
            Ok(Chunk::Grouped(Arc::new(merged)))
        }

        OperatorSpec::ExchangeUnion => exchange_union(node, inputs),

        OperatorSpec::CalcScalars { op } => {
            let a = as_scalar(node, &inputs[0])?;
            let b = as_scalar(node, &inputs[1])?;
            Ok(Chunk::Scalar(calc_scalars(*op, a, b)?))
        }
    }
}

/// Positional slice of an intermediate chunk, clamped to the actual length
/// (the boundary adjustment of paper Fig. 9 for dynamically sized partitions).
///
/// Also the morsel cutter of the morsel-driven execution mode
/// (`crate::pipeline`), which makes this a hot-path function: all three
/// positional kinds are windowed views, so a cut is pure window arithmetic —
/// **zero heap allocations** (pinned by
/// `crates/engine/tests/zero_alloc_views.rs`). Stream windows derive their
/// `stream_base` offset from the cut position, so fused stages over a morsel
/// emit correctly labelled stream positions.
pub(crate) fn slice_part(node: NodeId, input: &Chunk, start: usize, len: usize) -> Result<Chunk> {
    match input {
        Chunk::Column(c) => {
            let end = (start + len).min(c.len());
            let start = start.min(end);
            Ok(Chunk::Column(c.slice(start, end - start)?))
        }
        Chunk::Oids(view) => Ok(Chunk::Oids(view.slice(start, len))),
        Chunk::Join(view) => Ok(Chunk::Join(view.slice(start, len))),
        other => Err(input_error(node, "column, oids or join", other)),
    }
}

/// `out[i] = cond[i] ? then[i] : otherwise`.
fn if_then_else(
    node: NodeId,
    cond: &Column,
    then: &Column,
    otherwise: &ScalarValue,
) -> Result<Column> {
    if cond.len() != then.len() {
        return Err(EngineError::Operator(OperatorError::LengthMismatch {
            left: cond.len(),
            right: then.len(),
        }));
    }
    let mask = cond.bool_values().map_err(OperatorError::from)?;
    match then.data_type() {
        DataType::Int64 => {
            let vals = then.i64_values().map_err(OperatorError::from)?;
            let other = otherwise.as_i64().ok_or_else(|| {
                EngineError::InvalidPlan(format!(
                    "node {node}: ifthenelse otherwise must be an integer"
                ))
            })?;
            Ok(Column::from_i64(
                mask.iter().zip(vals).map(|(&m, &v)| if m { v } else { other }).collect(),
            ))
        }
        DataType::Float64 => {
            let vals = then.f64_values().map_err(OperatorError::from)?;
            let other = otherwise.as_f64().ok_or_else(|| {
                EngineError::InvalidPlan(format!(
                    "node {node}: ifthenelse otherwise must be numeric"
                ))
            })?;
            Ok(Column::from_f64(
                mask.iter().zip(vals).map(|(&m, &v)| if m { v } else { other }).collect(),
            ))
        }
        other => Err(EngineError::InvalidPlan(format!(
            "node {node}: ifthenelse over {other} column is not supported"
        ))),
    }
}

/// Outer oids that have no build-side match.
fn anti_join(outer: &Column, hash: &JoinHashTable) -> Result<Vec<Oid>> {
    let matching = hash.probe_semi(outer)?;
    let mut matching_iter = matching.into_iter().peekable();
    let base = outer.base_oid();
    let mut out = Vec::new();
    for i in 0..outer.len() {
        let oid = base + i as Oid;
        if matching_iter.peek() == Some(&oid) {
            matching_iter.next();
        } else {
            out.push(oid);
        }
    }
    Ok(out)
}

/// True when `(stream_base, len)` parts can be packed in argument order
/// without mislabeling stream positions: either every part is a fresh stream
/// (all bases 0 — the pack forms a new stream), or the parts are consecutive
/// windows of one stream (each base continues where the previous part ended).
fn stream_order_is_consistent(bases: &[(Oid, usize)]) -> bool {
    bases.iter().all(|&(b, _)| b == 0) || bases.windows(2).all(|w| w[1].0 == w[0].0 + w[0].1 as Oid)
}

/// Debug-only wrapper building the `(stream_base, len)` pairs for the
/// stream-order assertion, so the release hot path does not materialize them.
fn stream_order_check<T>(views: &[&T], base_len: impl Fn(&T) -> (Oid, usize)) -> bool {
    let bases: Vec<(Oid, usize)> = views.iter().map(|v| base_len(v)).collect();
    stream_order_is_consistent(&bases)
}

/// The exchange-union operator: packs same-kind chunks in argument order.
///
/// Doubles as the morsel-driven pipeline assembler: packing the per-morsel
/// terminal outputs in morsel order is exactly the recombination that makes
/// morsel execution byte-identical to whole-node execution.
///
/// Stream parts (oid lists, join results) take a **zero-copy fast path**
/// when every part is the window immediately following its predecessor in
/// one shared backing — the common case when `SlicePart` windows of one
/// stream are recombined: the union is then just the parent window (an `Arc`
/// clone), no packing. Heterogeneous parts fall back to packing, borrowing
/// each part's visible slice directly (one allocation total, no per-part
/// intermediate clones).
pub(crate) fn exchange_union(node: NodeId, inputs: &[Chunk]) -> Result<Chunk> {
    let first = inputs.first().ok_or(EngineError::Operator(OperatorError::EmptyInput("union")))?;
    match first {
        Chunk::Oids(_) => {
            let mut views = Vec::with_capacity(inputs.len());
            for chunk in inputs {
                views.push(as_oids(node, chunk)?);
            }
            // Parts must be packed in stream order: either every part is a
            // fresh stream (base 0 — the packed list is then itself a new
            // stream) or the parts are consecutive windows of one stream. An
            // out-of-order pack would mislabel positions — the silent
            // row-redistribution class the stream_base plumbing exists to
            // prevent — so it is asserted rather than silently accepted.
            debug_assert!(
                stream_order_check(&views, |v| (v.stream_base(), v.len())),
                "node {node}: exchange-union inputs are not in stream order"
            );
            let total: usize = views.iter().map(|v| v.len()).sum();
            if views.windows(2).all(|w| w[0].is_contiguous_with(w[1])) {
                // Consecutive windows of one backing: reassemble by widening
                // the first window over all of them — no copying.
                return Ok(Chunk::Oids(views[0].widened(total)));
            }
            let parts: Vec<&[Oid]> = views.iter().map(|v| v.as_slice()).collect();
            Ok(Chunk::oids_at(apq_operators::pack_oids(&parts), views[0].stream_base()))
        }
        Chunk::Column(first_col) => {
            let mut parts = Vec::with_capacity(inputs.len());
            for chunk in inputs {
                parts.push(as_column(node, chunk)?.clone());
            }
            // Clones are packed in partition (mutation-sequence) order, so the
            // packed column's rows start at the first partition's base oid.
            Ok(Chunk::Column(
                apq_operators::pack_columns(&parts)?.with_base_oid(first_col.base_oid()),
            ))
        }
        Chunk::Join(_) => {
            let mut views = Vec::with_capacity(inputs.len());
            for chunk in inputs {
                views.push(as_join(node, chunk)?);
            }
            debug_assert!(
                stream_order_check(&views, |v| (v.stream_base(), v.len())),
                "node {node}: exchange-union join inputs are not in stream order"
            );
            let total: usize = views.iter().map(|v| v.len()).sum();
            if views.windows(2).all(|w| w[0].is_contiguous_with(w[1])) {
                return Ok(Chunk::Join(views[0].widened(total)));
            }
            let parts: Vec<(&[Oid], &[Oid])> =
                views.iter().map(|v| (v.outer(), v.inner())).collect();
            Ok(Chunk::join_at(JoinResult::concat_parts(&parts), views[0].stream_base()))
        }
        Chunk::AggPartial(first_state) => {
            let mut state = AggState::new(first_state.func());
            for chunk in inputs {
                match chunk {
                    Chunk::AggPartial(p) => state.merge(p)?,
                    other => return Err(input_error(node, "agg-partial", other)),
                }
            }
            Ok(Chunk::AggPartial(state))
        }
        Chunk::Grouped(first_group) => {
            let mut merged = GroupedAgg::new(first_group.func());
            for chunk in inputs {
                match chunk {
                    Chunk::Grouped(g) => merged.merge(g)?,
                    other => return Err(input_error(node, "grouped", other)),
                }
            }
            Ok(Chunk::Grouped(Arc::new(merged)))
        }
        other => Err(input_error(node, "packable chunk", other)),
    }
}

/// Scalar-scalar arithmetic for final result expressions.
fn calc_scalars(op: BinaryOp, a: &ScalarValue, b: &ScalarValue) -> Result<ScalarValue> {
    let float =
        matches!(a, ScalarValue::F64(_)) || matches!(b, ScalarValue::F64(_)) || op == BinaryOp::Div;
    if float {
        let (x, y) = match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => (x, y),
            _ => {
                return Err(EngineError::Operator(OperatorError::InvalidCalc(format!(
                    "cannot apply {} to {a} and {b}",
                    op.symbol()
                ))))
            }
        };
        let v = match op {
            BinaryOp::Add => x + y,
            BinaryOp::Sub => x - y,
            BinaryOp::Mul => x * y,
            BinaryOp::Div => {
                if y == 0.0 {
                    return Err(EngineError::Operator(OperatorError::DivisionByZero));
                }
                x / y
            }
        };
        Ok(ScalarValue::F64(v))
    } else {
        let (x, y) = match (a.as_i64(), b.as_i64()) {
            (Some(x), Some(y)) => (x, y),
            _ => {
                return Err(EngineError::Operator(OperatorError::InvalidCalc(format!(
                    "cannot apply {} to {a} and {b}",
                    op.symbol()
                ))))
            }
        };
        let v = match op {
            BinaryOp::Add => x.wrapping_add(y),
            BinaryOp::Sub => x.wrapping_sub(y),
            BinaryOp::Mul => x.wrapping_mul(y),
            BinaryOp::Div => unreachable!("division handled in the float branch"),
        };
        Ok(ScalarValue::I64(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::TableBuilder;
    use apq_operators::{AggFunc, CmpOp, Predicate};

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("t")
                .i64_column("a", (0..100).collect())
                .i64_column("b", (0..100).map(|v| v * 10).collect())
                .str_column(
                    "s",
                    (0..100).map(|v| if v % 2 == 0 { "even" } else { "odd" }).collect(),
                )
                .build()
                .unwrap(),
        );
        c
    }

    fn scan(range: RowRange, column: &str) -> OperatorSpec {
        OperatorSpec::ScanColumn { table: "t".into(), column: column.into(), range }
    }

    #[test]
    fn scan_select_fetch_pipeline() {
        let cat = catalog();
        let col = execute_node(0, &scan(RowRange::new(0, 100), "a"), &[], &cat).unwrap();
        assert_eq!(col.rows(), 100);
        let oids = execute_node(
            1,
            &OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 5i64) },
            std::slice::from_ref(&col),
            &cat,
        )
        .unwrap();
        assert_eq!(oids.rows(), 5);
        let b = execute_node(2, &scan(RowRange::new(0, 100), "b"), &[], &cat).unwrap();
        let fetched = execute_node(3, &OperatorSpec::Fetch, &[oids, b], &cat).unwrap();
        match &fetched {
            Chunk::Column(c) => assert_eq!(c.i64_values().unwrap(), &[0, 10, 20, 30, 40]),
            other => panic!("unexpected chunk {other:?}"),
        }
    }

    #[test]
    fn scan_clamps_to_table_size() {
        let cat = catalog();
        let col = execute_node(0, &scan(RowRange::new(90, 500), "a"), &[], &cat).unwrap();
        assert_eq!(col.rows(), 10);
        let missing = execute_node(
            0,
            &OperatorSpec::ScanColumn {
                table: "nope".into(),
                column: "a".into(),
                range: RowRange::new(0, 1),
            },
            &[],
            &cat,
        );
        assert!(missing.is_err());
    }

    #[test]
    fn select_with_candidates_and_union() {
        let cat = catalog();
        let col = execute_node(0, &scan(RowRange::new(0, 100), "a"), &[], &cat).unwrap();
        let cands = Chunk::oids(vec![1, 3, 50, 99]);
        let sel = OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Ge, 50i64) };
        let out = execute_node(1, &sel, &[col, cands], &cat).unwrap();
        match &out {
            Chunk::Oids(view) => assert_eq!(view.as_slice(), &[50, 99]),
            other => panic!("unexpected {other:?}"),
        }
        let packed =
            execute_node(2, &OperatorSpec::ExchangeUnion, &[Chunk::oids(vec![1, 2]), out], &cat)
                .unwrap();
        assert_eq!(packed.rows(), 4);
    }

    #[test]
    fn hash_join_and_projection() {
        let cat = catalog();
        let inner = Chunk::Column(Column::from_i64(vec![2, 4, 6]));
        let hash = execute_node(0, &OperatorSpec::HashBuild, &[inner], &cat).unwrap();
        let outer = Chunk::Column(Column::from_i64(vec![1, 2, 4, 4]));
        let join = execute_node(1, &OperatorSpec::HashProbe, &[outer.clone(), hash.clone()], &cat)
            .unwrap();
        assert_eq!(join.rows(), 3);
        let outer_side = execute_node(
            2,
            &OperatorSpec::ProjectJoinSide { side: JoinSide::Outer },
            std::slice::from_ref(&join),
            &cat,
        )
        .unwrap();
        assert_eq!(outer_side.to_output(), crate::chunk::QueryOutput::Oids(vec![1, 2, 3]));
        let inner_side = execute_node(
            3,
            &OperatorSpec::ProjectJoinSide { side: JoinSide::Inner },
            &[join],
            &cat,
        )
        .unwrap();
        assert_eq!(inner_side.to_output(), crate::chunk::QueryOutput::Oids(vec![0, 1, 1]));

        let semi =
            execute_node(4, &OperatorSpec::SemiJoin, &[outer.clone(), hash.clone()], &cat).unwrap();
        assert_eq!(semi.to_output(), crate::chunk::QueryOutput::Oids(vec![1, 2, 3]));
        let anti = execute_node(5, &OperatorSpec::AntiJoin, &[outer, hash], &cat).unwrap();
        assert_eq!(anti.to_output(), crate::chunk::QueryOutput::Oids(vec![0]));
    }

    #[test]
    fn calc_mask_ifthenelse() {
        let cat = catalog();
        let prices = Chunk::Column(Column::from_i64(vec![100, 200, 300]));
        let discounts = Chunk::Column(Column::from_i64(vec![10, 20, 30]));
        let one_minus = execute_node(
            0,
            &OperatorSpec::Calc {
                op: BinaryOp::Sub,
                left_scalar: Some(ScalarValue::I64(100)),
                right_scalar: None,
            },
            &[discounts],
            &cat,
        )
        .unwrap();
        let raw = execute_node(
            1,
            &OperatorSpec::Calc { op: BinaryOp::Mul, left_scalar: None, right_scalar: None },
            &[prices, one_minus],
            &cat,
        )
        .unwrap();
        let rev = execute_node(
            2,
            &OperatorSpec::Calc {
                op: BinaryOp::Div,
                left_scalar: None,
                right_scalar: Some(ScalarValue::I64(100)),
            },
            &[raw],
            &cat,
        )
        .unwrap();
        match &rev {
            Chunk::Column(c) => assert_eq!(c.i64_values().unwrap(), &[90, 160, 210]),
            other => panic!("unexpected {other:?}"),
        }

        let s = execute_node(3, &scan(RowRange::new(0, 3), "s"), &[], &cat).unwrap();
        let mask = execute_node(
            4,
            &OperatorSpec::PredMask { predicate: Predicate::cmp(CmpOp::Eq, "even") },
            &[s],
            &cat,
        )
        .unwrap();
        let guarded = execute_node(
            5,
            &OperatorSpec::IfThenElse { otherwise: ScalarValue::I64(0) },
            &[mask, rev],
            &cat,
        )
        .unwrap();
        match &guarded {
            Chunk::Column(c) => assert_eq!(c.i64_values().unwrap(), &[90, 0, 210]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregates_and_scalars() {
        let cat = catalog();
        let col = Chunk::Column(Column::from_i64(vec![1, 2, 3, 4]));
        let partial = execute_node(
            0,
            &OperatorSpec::ScalarAgg { func: AggFunc::Sum },
            std::slice::from_ref(&col),
            &cat,
        )
        .unwrap();
        let partial2 =
            execute_node(1, &OperatorSpec::ScalarAgg { func: AggFunc::Sum }, &[col], &cat).unwrap();
        let total = execute_node(
            2,
            &OperatorSpec::FinalizeAgg { func: AggFunc::Sum },
            &[partial, partial2],
            &cat,
        )
        .unwrap();
        assert_eq!(total.to_output(), crate::chunk::QueryOutput::Scalar(ScalarValue::I64(20)));

        let keys = Chunk::Column(Column::from_strings(["a", "b", "a"]));
        let vals = Chunk::Column(Column::from_i64(vec![1, 2, 3]));
        let grouped =
            execute_node(3, &OperatorSpec::GroupAgg { func: AggFunc::Sum }, &[keys, vals], &cat)
                .unwrap();
        let merged =
            execute_node(4, &OperatorSpec::MergeGrouped, &[grouped.clone(), grouped], &cat)
                .unwrap();
        match merged.to_output() {
            crate::chunk::QueryOutput::Groups(g) => {
                assert_eq!(g.len(), 2);
                assert_eq!(g[0].1, ScalarValue::I64(8));
            }
            other => panic!("unexpected {other:?}"),
        }

        let ratio = execute_node(
            5,
            &OperatorSpec::CalcScalars { op: BinaryOp::Div },
            &[Chunk::Scalar(ScalarValue::I64(50)), Chunk::Scalar(ScalarValue::I64(200))],
            &cat,
        )
        .unwrap();
        assert_eq!(ratio.to_output(), crate::chunk::QueryOutput::Scalar(ScalarValue::F64(0.25)));
        let sum = execute_node(
            6,
            &OperatorSpec::CalcScalars { op: BinaryOp::Add },
            &[Chunk::Scalar(ScalarValue::I64(1)), Chunk::Scalar(ScalarValue::I64(2))],
            &cat,
        )
        .unwrap();
        assert_eq!(sum.to_output(), crate::chunk::QueryOutput::Scalar(ScalarValue::I64(3)));
    }

    #[test]
    fn slice_part_clamps() {
        let cat = catalog();
        let col = Chunk::Column(Column::from_i64(vec![1, 2, 3, 4, 5]));
        let sliced =
            execute_node(0, &OperatorSpec::SlicePart { start: 2, len: 10 }, &[col], &cat).unwrap();
        assert_eq!(sliced.rows(), 3);
        let oids = Chunk::oids(vec![9, 8, 7]);
        let sliced =
            execute_node(1, &OperatorSpec::SlicePart { start: 1, len: 1 }, &[oids], &cat).unwrap();
        assert_eq!(sliced.to_output(), crate::chunk::QueryOutput::Oids(vec![8]));
        let join = Chunk::join(JoinResult { outer_oids: vec![1, 2], inner_oids: vec![3, 4] });
        let sliced =
            execute_node(2, &OperatorSpec::SlicePart { start: 0, len: 1 }, &[join], &cat).unwrap();
        assert_eq!(sliced.rows(), 1);
        let scalar = Chunk::Scalar(ScalarValue::I64(1));
        assert!(execute_node(3, &OperatorSpec::SlicePart { start: 0, len: 1 }, &[scalar], &cat)
            .is_err());
    }

    #[test]
    fn type_errors_are_reported_with_node_ids() {
        let cat = catalog();
        let scalar = Chunk::Scalar(ScalarValue::I64(1));
        let err = execute_node(
            42,
            &OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 1i64) },
            std::slice::from_ref(&scalar),
            &cat,
        )
        .unwrap_err();
        assert!(matches!(err, EngineError::InvalidInput { node: 42, .. }));
        let err = execute_node(7, &OperatorSpec::ExchangeUnion, &[scalar], &cat).unwrap_err();
        assert!(matches!(err, EngineError::InvalidInput { node: 7, .. }));
        let err = execute_node(8, &OperatorSpec::ExchangeUnion, &[], &cat).unwrap_err();
        assert!(matches!(err, EngineError::Operator(_)));
    }
}
