//! The execution engine: a dataflow scheduler over a fixed worker pool.
//!
//! The paper's run-time environment consists of "a scheduler, an interpreter,
//! and a profiler. The scheduler uses a data-flow graph based scheduling
//! policy, where an operator is scheduled for execution once all its input
//! sources are available. While an interpreter per CPU core executes the
//! scheduled operators, the profiler gathers performance data on an executed
//! operator basis." (§2)
//!
//! [`Engine`] owns the worker pool ("interpreter per CPU core"); queries are
//! submitted with [`Engine::execute`], which performs dependency-counting
//! dataflow scheduling: a node becomes runnable when all its producers have
//! finished and is then handed to the engine's [`Scheduler`]. *Which* worker
//! runs it *when* is the scheduler's choice — see [`crate::scheduler`] for
//! the pluggable policies ([`SchedulerPolicy::GlobalQueue`], the seed
//! engine's shared FIFO, and [`SchedulerPolicy::WorkStealing`], per-worker
//! deques with local-first pop). Because the pool is shared by *all*
//! concurrently submitted queries, a heavy concurrent workload creates
//! exactly the resource contention the paper studies; per-task queue-wait
//! times are recorded in the profile so downstream consumers can tell
//! operator cost from scheduler interference.

use std::collections::{hash_map, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use parking_lot::{Condvar, Mutex};

use apq_columnar::partition::RowRange;
use apq_columnar::Catalog;

use crate::chunk::{Chunk, QueryOutput};
use crate::controller::{
    equal_share, is_governed, share_weight, weighted_share, ControllerConfig, ResourceController,
    TickReport,
};
use crate::error::{EngineError, Result};
use crate::fault::{FaultConfig, FaultInjector, FaultKind, FaultStats};
use crate::interpreter::{exchange_union, execute_node, slice_part};
use crate::noise::{NoiseConfig, NoiseInjector};
use crate::pipeline::{
    morsel_count, ExecutionMode, Pipeline, PipelinePlan, PipelineSource, Step, DEFAULT_MORSEL_ROWS,
};
use crate::plan::{NodeId, OperatorSpec, Plan};
use crate::profiler::{DopPhase, OperatorProfile, PipelineProfile, QueryProfile};
use crate::scheduler::{
    QueryHandle, Scheduler, SchedulerPolicy, SchedulerStats, Task, TaskContext,
};
use crate::sharing::{ScanRegistry, SharedScan, SharingConfig, SharingStats};

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Number of worker threads ("interpreters"). The paper's machines have
    /// 32 / 96 hardware threads; experiments here scale this down.
    pub n_workers: usize,
    /// Optional synthetic OS-noise injection (convergence robustness tests).
    pub noise: Option<NoiseConfig>,
    /// Fixed extra latency added to every operator execution, in
    /// microseconds. Used to emulate a platform with slower memory access
    /// (the 4-socket configuration of paper Fig. 17b).
    pub per_operator_overhead_us: u64,
    /// Task-scheduling policy of the worker pool.
    pub scheduler: SchedulerPolicy,
    /// How plans are turned into scheduler tasks: one task per operator
    /// (default) or fused pipelines driven by fixed-size morsels. See
    /// [`crate::pipeline`] for the execution-model comparison; results are
    /// byte-identical either way.
    pub execution_mode: ExecutionMode,
    /// Morsel size in rows for [`ExecutionMode::MorselDriven`]
    /// (default [`DEFAULT_MORSEL_ROWS`]). Ignored in operator-at-a-time
    /// mode. Under the elastic controller this is the *starting* size; the
    /// controller may override it per query within its configured bounds.
    pub morsel_rows: usize,
    /// Elastic resource controller ([`crate::controller`]): mid-flight DOP
    /// re-grants and adaptive morsel sizing driven by live scheduler
    /// signals. `None` (default) disables the subsystem — admitted DOP and
    /// morsel size then stay exactly as submitted.
    pub controller: Option<ControllerConfig>,
    /// Deterministic fault injection ([`crate::fault`]): seeded operator
    /// panics, dispatch stalls, spurious cancellations and delays, threaded
    /// through the panic-guarded operator runner and both scheduler
    /// policies' dispatch loops. `None` (default) disables the chaos layer.
    pub faults: Option<FaultConfig>,
    /// Multi-query work sharing ([`crate::sharing`]): cooperative shared
    /// scans (each morsel window of a table produced once and fanned to
    /// every concurrent consumer) and bounded partial-aggregate reuse.
    /// `None` (default) disables the subsystem — every query then scans
    /// privately, exactly as before.
    pub sharing: Option<SharingConfig>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            n_workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4),
            noise: None,
            per_operator_overhead_us: 0,
            scheduler: SchedulerPolicy::default(),
            execution_mode: ExecutionMode::default(),
            morsel_rows: DEFAULT_MORSEL_ROWS,
            controller: None,
            faults: None,
            sharing: None,
        }
    }
}

impl EngineConfig {
    /// Configuration with an explicit worker count and no noise.
    pub fn with_workers(n_workers: usize) -> Self {
        EngineConfig { n_workers: n_workers.max(1), ..EngineConfig::default() }
    }

    /// Sets the scheduling policy (builder style).
    pub fn with_scheduler(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Sets the execution mode (builder style).
    pub fn with_execution_mode(mut self, mode: ExecutionMode) -> Self {
        self.execution_mode = mode;
        self
    }

    /// Sets the morsel size in rows for morsel-driven execution (builder
    /// style). Values are clamped to at least 1 at use sites.
    pub fn with_morsel_rows(mut self, morsel_rows: usize) -> Self {
        self.morsel_rows = morsel_rows;
        self
    }

    /// Enables the elastic resource controller (builder style); see
    /// [`crate::controller`] for the feedback-loop specification.
    pub fn with_controller(mut self, controller: ControllerConfig) -> Self {
        self.controller = Some(controller);
        self
    }

    /// Enables deterministic fault injection (builder style); see
    /// [`crate::fault`] for the chaos-layer specification.
    pub fn with_faults(mut self, faults: FaultConfig) -> Self {
        self.faults = Some(faults);
        self
    }

    /// Enables multi-query work sharing (builder style); see
    /// [`crate::sharing`] for the shared-scan and partial-reuse protocols.
    pub fn with_sharing(mut self, sharing: SharingConfig) -> Self {
        self.sharing = Some(sharing);
        self
    }
}

/// Per-query submission options: scheduling priority and admitted degree of
/// parallelism (see [`QueryHandle`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryOptions {
    /// Scheduling priority; `> 0` uses the schedulers' priority lane.
    pub priority: u8,
    /// Maximum concurrently executing tasks of this query (`0` = unlimited).
    pub admitted_dop: usize,
}

impl QueryOptions {
    /// Options with an admitted degree of parallelism.
    pub fn with_admitted_dop(dop: usize) -> Self {
        QueryOptions { admitted_dop: dop, ..QueryOptions::default() }
    }

    /// Options with a scheduling priority.
    pub fn with_priority(priority: u8) -> Self {
        QueryOptions { priority, ..QueryOptions::default() }
    }
}

/// Result of one query execution: the final value plus its profile.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// Canonical result value (comparable across plans of the same query).
    pub output: QueryOutput,
    /// Per-operator and per-query performance data.
    pub profile: QueryProfile,
}

/// A census reservation: a [`QueryHandle`] registered in the engine's
/// live-query registry *before* submission ([`Engine::reserve_query`] /
/// [`Engine::reserve_admitted`]), so the elastic controller counts the
/// pending client from issue time — a ticket *is* a registry entry, not a
/// side counter.
///
/// Dropping the reservation releases the census slot (and with it the
/// query's claim on future DOP shares). The reservation does not cancel a
/// submission already in flight — cancellation stays with
/// [`QueryHandle::cancel`].
pub struct ReservedQuery {
    handle: Arc<QueryHandle>,
    registry: Arc<Mutex<HashMap<u64, Arc<QueryHandle>>>>,
}

impl ReservedQuery {
    /// The reservation's query handle — pass it to
    /// [`Engine::execute_with_handle`] to submit under this census slot.
    pub fn handle(&self) -> Arc<QueryHandle> {
        Arc::clone(&self.handle)
    }

    /// Engine-assigned query id of the reserved slot.
    pub fn id(&self) -> u64 {
        self.handle.id()
    }
}

impl std::fmt::Debug for ReservedQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReservedQuery")
            .field("id", &self.handle.id())
            .field("admitted_dop", &self.handle.admitted_dop())
            .finish()
    }
}

impl Drop for ReservedQuery {
    fn drop(&mut self) {
        self.registry.lock().remove(&self.handle.id());
    }
}

/// The shared execution engine (worker pool + pluggable task scheduler).
pub struct Engine {
    config: EngineConfig,
    scheduler: Arc<dyn Scheduler>,
    workers: Vec<JoinHandle<()>>,
    noise: Option<Arc<NoiseInjector>>,
    next_query_id: AtomicU64,
    /// Queries currently inside `execute_with_handle` (all clients).
    in_flight: AtomicUsize,
    /// Handles of the queries currently executing, keyed by query id — the
    /// registry the controller's ticks (and [`Engine::active_queries`])
    /// snapshot.
    registry: Arc<Mutex<HashMap<u64, Arc<QueryHandle>>>>,
    /// Elastic resource controller; `None` when disabled.
    controller: Option<Arc<ResourceController>>,
    /// Stop flag + wakeup for the background control thread.
    controller_stop: Arc<(Mutex<bool>, Condvar)>,
    controller_thread: Option<JoinHandle<()>>,
    /// Chaos layer ([`crate::fault`]); `None` when disabled.
    faults: Option<Arc<FaultInjector>>,
    /// Work-sharing coordinator ([`crate::sharing`]); `None` when disabled.
    sharing: Option<Arc<ScanRegistry>>,
    /// Monotonic controller tick number, shared by the background loop and
    /// [`Engine::controller_tick`] (the fault schedule keys scripted tick
    /// panics on it).
    controller_ticks: Arc<AtomicU64>,
    /// Times the tick watchdog contained a panicking controller tick and
    /// restarted the loop.
    controller_restarts: Arc<AtomicU64>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("n_workers", &self.config.n_workers)
            .field("scheduler", &self.config.scheduler)
            .field("noise", &self.config.noise)
            .finish()
    }
}

impl Engine {
    /// Creates an engine with the given configuration, spawning the worker pool.
    pub fn new(config: EngineConfig) -> Self {
        let n_workers = config.n_workers.max(1);
        let faults = config.faults.clone().map(|c| Arc::new(FaultInjector::new(c)));
        let scheduler = config.scheduler.build(n_workers, faults.clone());
        let mut workers = Vec::with_capacity(n_workers);
        for worker_idx in 0..n_workers {
            let sched = Arc::clone(&scheduler);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("apq-worker-{worker_idx}"))
                    .spawn(move || sched.run_worker(worker_idx))
                    .expect("failed to spawn worker thread"),
            );
        }
        let noise = config.noise.clone().map(|c| Arc::new(NoiseInjector::new(c)));
        let registry: Arc<Mutex<HashMap<u64, Arc<QueryHandle>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let controller = config
            .controller
            .clone()
            .map(|cfg| Arc::new(ResourceController::new(cfg, n_workers, config.morsel_rows)));
        let controller_stop = Arc::new((Mutex::new(false), Condvar::new()));
        let controller_ticks = Arc::new(AtomicU64::new(0));
        let controller_restarts = Arc::new(AtomicU64::new(0));
        let controller_thread = controller.as_ref().map(|ctrl| {
            let ctrl = Arc::clone(ctrl);
            let registry = Arc::clone(&registry);
            let sched = Arc::clone(&scheduler);
            let stop = Arc::clone(&controller_stop);
            let faults = faults.clone();
            let ticks = Arc::clone(&controller_ticks);
            let restarts = Arc::clone(&controller_restarts);
            std::thread::Builder::new()
                .name("apq-controller".to_string())
                .spawn(move || loop {
                    {
                        let (lock, cv) = &*stop;
                        let mut stopped = lock.lock();
                        if *stopped {
                            return;
                        }
                        cv.wait_for(&mut stopped, ctrl.config().tick);
                        if *stopped {
                            return;
                        }
                    }
                    supervised_tick(
                        &ctrl,
                        &registry,
                        &*sched,
                        faults.as_deref(),
                        &ticks,
                        &restarts,
                    );
                })
                .expect("failed to spawn controller thread")
        });
        let sharing = config.sharing.clone().map(|cfg| Arc::new(ScanRegistry::new(cfg)));
        Engine {
            config,
            scheduler,
            workers,
            noise,
            next_query_id: AtomicU64::new(0),
            in_flight: AtomicUsize::new(0),
            registry,
            controller,
            controller_stop,
            controller_thread,
            faults,
            sharing,
            controller_ticks,
            controller_restarts,
        }
    }

    /// Engine with `n` workers and default settings otherwise.
    pub fn with_workers(n: usize) -> Self {
        Engine::new(EngineConfig::with_workers(n))
    }

    /// Number of worker threads.
    pub fn n_workers(&self) -> usize {
        self.config.n_workers
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Snapshot of the scheduler's per-worker counters (cumulative since the
    /// engine was created).
    pub fn scheduler_stats(&self) -> SchedulerStats {
        self.scheduler.stats()
    }

    /// Number of queries currently executing on this engine (all clients).
    pub fn in_flight_queries(&self) -> usize {
        self.in_flight.load(Ordering::Acquire)
    }

    /// Handles of the queries currently executing (all clients), in no
    /// particular order — the live population the controller governs.
    pub fn active_queries(&self) -> Vec<Arc<QueryHandle>> {
        self.registry.lock().values().cloned().collect()
    }

    /// Number of submitted tasks not yet dispatched by the scheduler (pool
    /// pressure; approximate while workers drain concurrently).
    pub fn pending_tasks(&self) -> usize {
        self.scheduler.pending_tasks()
    }

    /// Runs one synchronous control round of the elastic resource
    /// controller over the currently active queries, returning what it did.
    /// A no-op returning an empty report when the controller is disabled.
    ///
    /// The background control thread ticks on its own
    /// ([`ControllerConfig::tick`]); this entry point exists so tests,
    /// examples and operators can force a deterministic round. Like the
    /// background loop, the round runs under the tick watchdog: a panicking
    /// tick is contained, counted in [`Engine::controller_restarts`] and
    /// returns an empty report instead of unwinding into the caller.
    pub fn controller_tick(&self) -> TickReport {
        match &self.controller {
            Some(ctrl) => supervised_tick(
                ctrl,
                &self.registry,
                &*self.scheduler,
                self.faults.as_deref(),
                &self.controller_ticks,
                &self.controller_restarts,
            ),
            None => TickReport::default(),
        }
    }

    /// Times the controller tick watchdog contained a panicking tick and
    /// restarted the control loop (0 in healthy operation; chaos runs with
    /// scripted tick panics drive it up). A panic costs one interval of
    /// adaptive signal, never the control loop itself — the alternative, a
    /// dead `apq-controller` thread, would silently freeze elastic
    /// re-grants for the rest of the engine's life.
    pub fn controller_restarts(&self) -> u64 {
        self.controller_restarts.load(Ordering::Relaxed)
    }

    /// Cumulative fault-injection counters of the chaos layer
    /// ([`crate::fault`]); all zeros when injection is disabled.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats()).unwrap_or_default()
    }

    /// Cumulative work-sharing counters ([`crate::sharing`]); all zeros when
    /// sharing is disabled.
    pub fn sharing_stats(&self) -> SharingStats {
        self.sharing.as_ref().map(|s| s.stats()).unwrap_or_default()
    }

    /// True when the work-sharing subsystem is enabled.
    pub fn sharing_enabled(&self) -> bool {
        self.sharing.is_some()
    }

    /// Drops every shared-scan group over `table` and every cached
    /// aggregate partial whose subtree read `table`. A no-op when sharing
    /// is disabled. The service layer calls this from its per-table
    /// invalidation so mutated tables can never serve stale windows.
    pub fn invalidate_sharing_table(&self, table: &str) {
        if let Some(sharing) = &self.sharing {
            sharing.invalidate_table(table);
        }
    }

    /// Flushes every shared-scan group and cached aggregate partial
    /// (catalog swaps, global invalidation). A no-op when sharing is
    /// disabled.
    pub fn invalidate_sharing(&self) {
        if let Some(sharing) = &self.sharing {
            sharing.invalidate_all();
        }
    }

    /// Registers a query with the scheduler, returning its handle. The handle
    /// can be passed to [`Engine::execute_with_handle`] and retained by the
    /// caller for mid-flight control (cancellation, DOP re-grants).
    pub fn register_query(&self, options: QueryOptions) -> Arc<QueryHandle> {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        Arc::new(QueryHandle::new(id, options.priority, options.admitted_dop))
    }

    /// Reserves a census slot for a query *before* it is submitted: the
    /// returned reservation's handle enters the live-query registry
    /// immediately, so [`Engine::active_queries`] and controller ticks count
    /// it from issue time. This is the unified-census replacement for
    /// side-table admission tickets (the baselines crate's
    /// `AdmissionController` keeps its own active counter — a second census
    /// the controller's ticks cannot see).
    ///
    /// The reservation is RAII: dropping it removes the handle from the
    /// registry. Executing via [`Engine::execute_with_handle`] with the
    /// reservation's handle records a [`DopPhase::Submit`] timeline event
    /// and leaves registration to the reservation — the slot stays held
    /// across repeated submissions until the client drops it.
    pub fn reserve_query(&self, options: QueryOptions) -> ReservedQuery {
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let handle = Arc::new(QueryHandle::with_phase(
            id,
            options.priority,
            options.admitted_dop,
            DopPhase::Reserve,
        ));
        self.registry.lock().insert(id, Arc::clone(&handle));
        ReservedQuery { handle, registry: Arc::clone(&self.registry) }
    }

    /// Reserves a census slot with an *admission-controlled* DOP grant: the
    /// equal share `max(1, total_dop / n_governed)` over the governed
    /// population, counted and granted under one registry lock — the same
    /// census snapshot the elastic controller's ticks rebalance over, so
    /// the admit-time target and the next re-grant target can never
    /// disagree about who is present. `total_dop == 0` means the engine's
    /// worker count.
    ///
    /// ```
    /// use apq_engine::Engine;
    ///
    /// let engine = Engine::with_workers(4);
    /// let first = engine.reserve_admitted(0, 4);
    /// assert_eq!(first.handle().admitted_dop(), 4); // alone: whole pool
    /// let second = engine.reserve_admitted(0, 4);
    /// assert_eq!(second.handle().admitted_dop(), 2); // equal share of 2
    /// // Both are census-visible before any submission:
    /// assert_eq!(engine.active_queries().len(), 2);
    /// drop(first);
    /// assert_eq!(engine.active_queries().len(), 1);
    /// ```
    pub fn reserve_admitted(&self, priority: u8, total_dop: usize) -> ReservedQuery {
        let total = if total_dop == 0 { self.config.n_workers } else { total_dop };
        let id = self.next_query_id.fetch_add(1, Ordering::Relaxed);
        let weighted = self.controller.as_ref().is_some_and(|c| c.config().weighted_shares);
        let mut registry = self.registry.lock();
        let target = if weighted {
            // Priority-weighted admission (`ControllerConfig::weighted_shares`):
            // the grant is proportional to `priority + 1` over the governed
            // population plus this arrival, mirroring the controller's
            // weighted re-grants tick-for-tick.
            let weight_sum = registry
                .values()
                .filter(|h| is_governed(h))
                .map(|h| share_weight(h.priority()))
                .sum::<usize>()
                + share_weight(priority);
            weighted_share(total, share_weight(priority), weight_sum)
        } else {
            let n_governed = registry.values().filter(|h| is_governed(h)).count() + 1;
            equal_share(total, n_governed)
        };
        let handle = Arc::new(QueryHandle::with_phase(id, priority, target, DopPhase::Reserve));
        registry.insert(id, Arc::clone(&handle));
        drop(registry);
        ReservedQuery { handle, registry: Arc::clone(&self.registry) }
    }

    /// Executes a plan against a catalog, blocking until the result is ready.
    ///
    /// May be called concurrently from many client threads; all queries share
    /// the same worker pool.
    pub fn execute(&self, plan: &Plan, catalog: &Arc<Catalog>) -> Result<QueryExecution> {
        self.execute_shared(&Arc::new(plan.clone()), catalog)
    }

    /// Like [`Engine::execute`] but borrows an already-shared plan, avoiding
    /// the deep plan clone per run — the hot path for repeated executions of
    /// the same plan (benchmark loops, background workloads).
    ///
    /// ```
    /// use std::sync::Arc;
    /// use apq_columnar::{partition::RowRange, Catalog, ScalarValue, TableBuilder};
    /// use apq_engine::plan::{OperatorSpec, Plan};
    /// use apq_engine::{Engine, QueryOutput};
    /// use apq_operators::{AggFunc, CmpOp, Predicate};
    ///
    /// // A tiny table and the plan for `SELECT sum(v) FROM t WHERE v < 3`.
    /// let mut catalog = Catalog::new();
    /// catalog.register(
    ///     TableBuilder::new("t").i64_column("v", vec![0, 1, 2, 3, 4]).build()?,
    /// );
    /// let catalog = Arc::new(catalog);
    ///
    /// let mut plan = Plan::new();
    /// let scan = plan.add(
    ///     OperatorSpec::ScanColumn {
    ///         table: "t".into(),
    ///         column: "v".into(),
    ///         range: RowRange::new(0, 5),
    ///     },
    ///     vec![],
    /// );
    /// let sel = plan.add(
    ///     OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, 3i64) },
    ///     vec![scan],
    /// );
    /// let fetch = plan.add(OperatorSpec::Fetch, vec![sel, scan]);
    /// let agg = plan.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
    /// let fin = plan.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
    /// plan.set_root(fin);
    ///
    /// // Share the plan once, execute it many times without re-cloning it.
    /// let engine = Engine::with_workers(2);
    /// let plan = Arc::new(plan);
    /// for _ in 0..3 {
    ///     let exec = engine.execute_shared(&plan, &catalog)?;
    ///     assert_eq!(exec.output, QueryOutput::Scalar(ScalarValue::I64(3)));
    /// }
    /// # Ok::<(), apq_engine::EngineError>(())
    /// ```
    pub fn execute_shared(
        &self,
        plan: &Arc<Plan>,
        catalog: &Arc<Catalog>,
    ) -> Result<QueryExecution> {
        let handle = self.register_query(QueryOptions::default());
        self.execute_with_handle(plan, catalog, handle)
    }

    /// Executes a plan under an explicit [`QueryHandle`] (from
    /// [`Engine::register_query`]), giving the caller per-query scheduling
    /// control: priority, admitted degree of parallelism, cancellation.
    pub fn execute_with_handle(
        &self,
        plan: &Arc<Plan>,
        catalog: &Arc<Catalog>,
        handle: Arc<QueryHandle>,
    ) -> Result<QueryExecution> {
        plan.validate()?;

        // Count of *other* queries in flight at submission, recorded in the
        // profile so consumers of the queue-wait signal can tell cross-query
        // interference from self-inflicted queueing (more partitions than
        // workers). The guard keeps the counter balanced on error returns.
        let concurrent_peers = self.in_flight.fetch_add(1, Ordering::AcqRel);
        struct InFlightGuard<'a>(&'a AtomicUsize);
        impl Drop for InFlightGuard<'_> {
            fn drop(&mut self) {
                self.0.fetch_sub(1, Ordering::AcqRel);
            }
        }
        let _in_flight = InFlightGuard(&self.in_flight);

        // Publish the handle in the live-query registry for the duration of
        // the execution, so controller ticks see it. The guard keeps the
        // registry consistent on every exit path; a re-grant racing query
        // completion at worst writes to a handle nobody reads anymore.
        //
        // A handle that is *already* registered is a census reservation
        // ([`Engine::reserve_admitted`]): it entered the registry at issue
        // time and its [`ReservedQuery`] owns the removal, so the guard must
        // not unregister it here — the reservation stays census-visible
        // until the client drops it, even across repeated submissions.
        let reserved = {
            let mut registry = self.registry.lock();
            match registry.entry(handle.id()) {
                hash_map::Entry::Occupied(_) => true,
                hash_map::Entry::Vacant(slot) => {
                    slot.insert(Arc::clone(&handle));
                    false
                }
            }
        };
        if reserved {
            handle.mark_submitted();
        }
        struct RegistryGuard<'a> {
            registry: &'a Mutex<HashMap<u64, Arc<QueryHandle>>>,
            id: u64,
            owned: bool,
        }
        impl Drop for RegistryGuard<'_> {
            fn drop(&mut self) {
                if self.owned {
                    self.registry.lock().remove(&self.id);
                }
            }
        }
        let _registered =
            RegistryGuard { registry: &self.registry, id: handle.id(), owned: !reserved };

        // Pre-dispatch liveness gate: a query submitted already cancelled or
        // with an expired deadline fails here, before a single task reaches
        // the scheduler — no morsel is dispatched for work that cannot
        // complete.
        if let Some(err) = liveness_error(&handle) {
            return Err(err);
        }

        if self.config.execution_mode == ExecutionMode::MorselDriven {
            return self.execute_morsel_driven(plan, catalog, handle, concurrent_peers);
        }

        let capacity = plan.capacity();
        let live = plan.node_ids();
        let mut deps: Vec<AtomicUsize> = Vec::with_capacity(capacity);
        for id in 0..capacity {
            let n = if plan.contains(id) { plan.node(id)?.inputs.len() } else { 0 };
            deps.push(AtomicUsize::new(n));
        }

        let state = Arc::new(RunState {
            plan: Arc::clone(plan),
            catalog: Arc::clone(catalog),
            handle,
            results: (0..capacity).map(|_| OnceLock::new()).collect(),
            profiles: (0..capacity).map(|_| OnceLock::new()).collect(),
            deps,
            remaining: AtomicUsize::new(live.len()),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            started: Instant::now(),
            noise: self.noise.clone(),
            faults: self.faults.clone(),
            overhead_us: self.config.per_operator_overhead_us,
            sharing: self.sharing.clone(),
        });

        // Seed the scheduler with every node that has no inputs. The check
        // must use the static plan structure (not the atomic dependency
        // counters): workers already run seeded nodes concurrently with this
        // loop and may drive another node's counter to zero before the loop
        // reaches it, which would double-schedule that node.
        for &id in &live {
            if plan.node(id)?.inputs.is_empty() {
                let st = Arc::clone(&state);
                let task = Task::new(Arc::clone(&state.handle), move |ctx| run_node(st, ctx, id));
                if !self.scheduler.submit(task) {
                    return Err(EngineError::EngineShutDown);
                }
            }
        }

        // Wait for completion (or failure).
        {
            let mut done = state.done.lock();
            while !*done {
                state.done_cv.wait(&mut done);
            }
        }
        drain_query_tasks(&state.handle);
        if let Some(err) = state.error.lock().clone() {
            return Err(err);
        }

        let root = plan.root().expect("validated plan has a root");
        let root_chunk = state.results[root]
            .get()
            .cloned()
            .ok_or_else(|| EngineError::InvalidPlan("root node produced no result".to_string()))?;
        let operators: Vec<OperatorProfile> =
            state.profiles.iter().filter_map(OnceLock::get).cloned().collect();
        let profile = QueryProfile {
            wall_time: state.started.elapsed(),
            n_workers: self.config.n_workers,
            concurrent_peers,
            operators,
            pipelines: Vec::new(),
            dop_timeline: state.handle.dop_timeline(),
        };
        Ok(QueryExecution { output: root_chunk.to_output(), profile })
    }

    /// Morsel-driven execution of a validated plan (see [`crate::pipeline`]).
    ///
    /// The plan is decomposed into fused pipelines and single-node steps;
    /// each runnable pipeline fans out into one scheduler task per morsel.
    /// Results are byte-identical to the operator-at-a-time path.
    fn execute_morsel_driven(
        &self,
        plan: &Arc<Plan>,
        catalog: &Arc<Catalog>,
        handle: Arc<QueryHandle>,
        concurrent_peers: usize,
    ) -> Result<QueryExecution> {
        let fused = PipelinePlan::analyze(plan)?;
        let capacity = plan.capacity();
        let n_steps = fused.steps.len();

        // Partial-aggregate reuse ([`crate::sharing`]): before anything is
        // launched, probe the registry for cached terminal chunks of
        // aggregate-terminated steps. A hit satisfies the whole step — its
        // terminal chunk is seeded into the result slot instead of being
        // recomputed, and steps that would feed only satisfied work are
        // skipped transitively.
        let grid = handle.morsel_rows_hint().unwrap_or(self.config.morsel_rows.max(1)).max(1);
        let mut satisfied = vec![false; n_steps];
        let mut partial_keys: Vec<Option<PartialKey>> = vec![None; n_steps];
        let mut seeded: Vec<(NodeId, Chunk)> = Vec::new();
        if let Some(registry) = &self.sharing {
            for (idx, step) in fused.steps.iter().enumerate() {
                // A fused pipeline's terminal chunk is the exchange-union
                // merge over its morsel grid, so the cache key carries the
                // grid; single steps execute whole (grid 0).
                let (terminal, step_grid) = match step {
                    Step::Single(node) => (*node, 0),
                    Step::Fused(p) => (p.terminal(), grid),
                };
                let spec = &plan.node(terminal)?.spec;
                if !matches!(spec, OperatorSpec::ScalarAgg { .. } | OperatorSpec::GroupAgg { .. }) {
                    continue;
                }
                let signature = plan.subtree_signature(terminal)?;
                let tables = plan.subtree_tables(terminal)?;
                if let Some(chunk) = registry.partial_get(catalog, step_grid, &signature) {
                    satisfied[idx] = true;
                    seeded.push((terminal, chunk));
                }
                partial_keys[idx] = Some(PartialKey { signature, tables });
            }
        }

        // Transitively skip steps whose entire consumer set is skipped —
        // their published output would feed only work that never runs. A
        // fixpoint loop, not a single reverse sweep: step indices are not
        // topologically ordered.
        let mut skipped = satisfied;
        loop {
            let mut changed = false;
            for idx in 0..n_steps {
                if !skipped[idx]
                    && !fused.out_edges[idx].is_empty()
                    && fused.out_edges[idx].iter().all(|&(c, _)| skipped[c])
                {
                    skipped[idx] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        // Remove skipped producers' edges from the dependency counts so live
        // consumers do not wait on steps that will never run.
        let mut adjusted_deps = fused.deps.clone();
        for (idx, _) in skipped.iter().enumerate().filter(|(_, &skip)| skip) {
            for &(consumer, edges) in &fused.out_edges[idx] {
                adjusted_deps[consumer] -= edges;
            }
        }
        let live_steps = skipped.iter().filter(|&&s| !s).count();

        let state = Arc::new(MorselState {
            plan: Arc::clone(plan),
            catalog: Arc::clone(catalog),
            handle,
            results: (0..capacity).map(|_| OnceLock::new()).collect(),
            profiles: (0..capacity).map(|_| OnceLock::new()).collect(),
            step_deps: adjusted_deps.iter().map(|&d| AtomicUsize::new(d)).collect(),
            fused_runs: (0..n_steps).map(|_| OnceLock::new()).collect(),
            pipeline_profiles: Mutex::new(Vec::new()),
            remaining: AtomicUsize::new(live_steps),
            failed: AtomicBool::new(false),
            error: Mutex::new(None),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            started: Instant::now(),
            noise: self.noise.clone(),
            faults: self.faults.clone(),
            overhead_us: self.config.per_operator_overhead_us,
            morsel_rows: self.config.morsel_rows.max(1),
            n_workers: self.config.n_workers,
            sharing: self.sharing.clone(),
            partial_keys,
            skipped,
            fused,
        });

        // Publish reused partials before any task can observe the slots.
        for (terminal, chunk) in seeded {
            let _ = state.results[terminal].set(chunk);
        }

        if live_steps == 0 {
            // Every step was satisfied from the partial cache (the root's
            // terminal chunk included): nothing to schedule.
            state.finish();
        }
        // Seed every live step with no remaining cross-step dependencies.
        // Like the operator-at-a-time path, seeding consults the *static*
        // (pre-launch) dependency counts so concurrently running workers
        // cannot double-launch a step.
        for (step, &deps) in adjusted_deps.iter().enumerate() {
            if !state.skipped[step] && deps == 0 {
                let ok = launch_step(&state, step, &|task| self.scheduler.submit(task));
                if !ok {
                    return Err(EngineError::EngineShutDown);
                }
            }
        }

        {
            let mut done = state.done.lock();
            while !*done {
                state.done_cv.wait(&mut done);
            }
        }
        drain_query_tasks(&state.handle);
        if let Some(err) = state.error.lock().clone() {
            return Err(err);
        }

        let root = plan.root().expect("validated plan has a root");
        let root_chunk = state.results[root]
            .get()
            .cloned()
            .ok_or_else(|| EngineError::InvalidPlan("root node produced no result".to_string()))?;
        let operators: Vec<OperatorProfile> =
            state.profiles.iter().filter_map(OnceLock::get).cloned().collect();
        let pipelines = std::mem::take(&mut *state.pipeline_profiles.lock());
        let profile = QueryProfile {
            wall_time: state.started.elapsed(),
            n_workers: self.config.n_workers,
            concurrent_peers,
            operators,
            pipelines,
            dop_timeline: state.handle.dop_timeline(),
        };
        Ok(QueryExecution { output: root_chunk.to_output(), profile })
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Stop the control loop first so no tick runs against a draining
        // scheduler.
        if let Some(thread) = self.controller_thread.take() {
            {
                let (lock, cv) = &*self.controller_stop;
                *lock.lock() = true;
                cv.notify_all();
            }
            let _ = thread.join();
        }
        // Shutting the scheduler down lets the workers drain remaining tasks
        // and exit.
        self.scheduler.shutdown();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// One watchdog-supervised controller round, shared by the background
/// control thread and [`Engine::controller_tick`]. A panicking tick (a
/// controller bug, or a scripted
/// [`crate::fault::FaultConfig::controller_tick_panics`] entry) is contained
/// here: the controller's signal windows are reset (a panic may have unwound
/// mid-update) and the restart counter incremented, so the control loop
/// keeps ticking instead of dying silently and freezing elastic re-grants.
fn supervised_tick(
    ctrl: &ResourceController,
    registry: &Mutex<HashMap<u64, Arc<QueryHandle>>>,
    sched: &dyn Scheduler,
    faults: Option<&FaultInjector>,
    ticks: &AtomicU64,
    restarts: &AtomicU64,
) -> TickReport {
    let tick_idx = ticks.fetch_add(1, Ordering::Relaxed);
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if let Some(faults) = faults {
            if faults.tick_should_panic(tick_idx) {
                panic!("injected controller tick panic (tick {tick_idx})");
            }
        }
        let active: Vec<Arc<QueryHandle>> = registry.lock().values().cloned().collect();
        ctrl.tick(&active, sched.pending_tasks())
    }));
    match outcome {
        Ok(report) => report,
        Err(_) => {
            ctrl.reset();
            restarts.fetch_add(1, Ordering::Relaxed);
            TickReport::default()
        }
    }
}

/// The liveness check every cancel checkpoint runs: `Cancelled` wins over
/// `DeadlineExceeded` (an explicit client action over a passive expiry);
/// expiry records the [`DopPhase::Timeout`] timeline event on first
/// observation.
fn liveness_error(handle: &QueryHandle) -> Option<EngineError> {
    if handle.is_cancelled() {
        return Some(EngineError::Cancelled);
    }
    if handle.deadline_exceeded() {
        handle.mark_deadline_exceeded();
        return Some(EngineError::DeadlineExceeded);
    }
    None
}

/// Spin-waits until no task of the query is left anywhere in the scheduler.
///
/// Completion (`done`) fires from inside the last task's body — and a
/// *failure* fires from the first checkpoint that observes it, with sibling
/// tasks still queued or executing. Returning to the client at that point
/// would leak stragglers into the pool: they hold DOP slots, touch the run
/// state, and skew the next submission's scheduling. Draining here makes
/// `running() == 0` an invariant the moment a submission returns, errors
/// included. The wait is short by construction — post-failure tasks bail at
/// their first liveness check before doing operator work.
fn drain_query_tasks(handle: &QueryHandle) {
    while handle.inflight_tasks() > 0 {
        std::thread::yield_now();
    }
}

struct RunState {
    plan: Arc<Plan>,
    catalog: Arc<Catalog>,
    handle: Arc<QueryHandle>,
    /// One write-once slot per plan node: a producer publishes its chunk,
    /// consumers read it lock-free. Replaces the seed engine's whole-`Vec`
    /// mutex, which serialized input gathering under high DOP.
    results: Vec<OnceLock<Chunk>>,
    profiles: Vec<OnceLock<OperatorProfile>>,
    deps: Vec<AtomicUsize>,
    remaining: AtomicUsize,
    /// Fast-path flag mirroring `error.is_some()`.
    failed: AtomicBool,
    error: Mutex<Option<EngineError>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    started: Instant,
    noise: Option<Arc<NoiseInjector>>,
    faults: Option<Arc<FaultInjector>>,
    overhead_us: u64,
    /// Shared-scan coordinator ([`crate::sharing`]); `None` when disabled.
    sharing: Option<Arc<ScanRegistry>>,
}

impl RunState {
    fn finish(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.done_cv.notify_all();
    }

    fn fail(&self, err: EngineError) {
        {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.failed.store(true, Ordering::Release);
        self.finish();
    }
}

fn run_node(state: Arc<RunState>, ctx: &TaskContext<'_>, node: NodeId) {
    // A failed sibling already tore the query down; do nothing.
    if state.failed.load(Ordering::Acquire) {
        return;
    }
    if let Some(err) = liveness_error(&state.handle) {
        return state.fail(err);
    }
    let mut inject_panic = false;
    if let Some(faults) = &state.faults {
        match faults.operator_fault(state.handle.id(), node) {
            Some(FaultKind::SpuriousCancel) => {
                // Flip the real cancel flag so every later checkpoint of the
                // query observes the same cancellation an external client
                // would have caused.
                state.handle.cancel();
                return state.fail(EngineError::Cancelled);
            }
            Some(FaultKind::OperatorPanic) => inject_panic = true,
            _ => {}
        }
    }
    if let Err(e) = execute_and_publish(
        &state.plan,
        &state.catalog,
        &state.results,
        &state.profiles,
        state.started,
        state.noise.as_deref(),
        state.overhead_us,
        ctx,
        node,
        state.faults.as_deref().map(|f| (f, state.handle.id())),
        inject_panic,
        state.sharing.as_deref(),
        &state.handle,
    ) {
        return state.fail(e);
    }

    // Wake up consumers whose dependencies are now all satisfied; follow-up
    // tasks go through the task context, so a work-stealing scheduler keeps
    // them on this worker's local deque (the producing core's cache is hot).
    for consumer in state.plan.consumers(node) {
        let edges = state
            .plan
            .node(consumer)
            .map(|c| c.inputs.iter().filter(|&&i| i == node).count())
            .unwrap_or(0);
        if edges == 0 {
            continue;
        }
        let before = state.deps[consumer].fetch_sub(edges, Ordering::AcqRel);
        if before == edges {
            let st = Arc::clone(&state);
            ctx.submit(Task::new(Arc::clone(&state.handle), move |ctx| {
                run_node(st, ctx, consumer)
            }));
        }
    }

    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        state.finish();
    }
}

/// Gathers `node`'s materialized inputs from the write-once slots, executes
/// the operator (panic-guarded, with emulated overhead/noise applied), and
/// publishes its chunk and profile. The whole-node execution protocol,
/// shared by the operator-at-a-time path ([`run_node`]) and morsel mode's
/// single-node steps ([`run_single_step`]) so the two execution models
/// cannot drift. Errors are returned for the caller to fail the query with.
#[allow(clippy::too_many_arguments)]
fn execute_and_publish(
    plan: &Plan,
    catalog: &Arc<Catalog>,
    results: &[OnceLock<Chunk>],
    profiles: &[OnceLock<OperatorProfile>],
    started: Instant,
    noise: Option<&NoiseInjector>,
    overhead_us: u64,
    ctx: &TaskContext<'_>,
    node: NodeId,
    faults: Option<(&FaultInjector, u64)>,
    inject_panic: bool,
    sharing: Option<&ScanRegistry>,
    query: &QueryHandle,
) -> Result<()> {
    let node_ref = plan.node(node)?.clone();

    // Gather the (already materialized) inputs from their write-once slots.
    let mut inputs: Vec<Chunk> = Vec::with_capacity(node_ref.inputs.len());
    for &input in &node_ref.inputs {
        match results.get(input).and_then(OnceLock::get) {
            Some(chunk) => inputs.push(chunk.clone()),
            None => {
                return Err(EngineError::InvalidPlan(format!(
                    "node {node} was scheduled before its input {input} completed"
                )));
            }
        }
    }

    let queue_wait_us = ctx.queue_wait.as_micros() as u64;
    let start_us = started.elapsed().as_micros() as u64;
    let outcome = match &node_ref.spec {
        OperatorSpec::ScanColumn { table, column, range } => {
            // Whole-node scans go through the shared-scan coordinator when
            // sharing is on: the first consumer of the window executes the
            // scan and publishes it, later consumers reuse the published
            // chunk. Fault-injected executions bypass the coordinator — an
            // injected panic must fail this query, never poison (or be
            // masked by) a window other queries reuse.
            let served = match sharing {
                Some(registry) if !inject_panic => {
                    let scan = registry.attach(catalog, table, column);
                    scan.window(range.start, range.end, || {
                        guarded_execute(node, &node_ref.spec, &inputs, catalog, false)
                    })
                }
                _ => guarded_execute(node, &node_ref.spec, &inputs, catalog, inject_panic)
                    .map(|chunk| (chunk, false)),
            };
            served.map(|(chunk, shared)| {
                query.record_morsel(shared);
                chunk
            })
        }
        _ => guarded_execute(node, &node_ref.spec, &inputs, catalog, inject_panic),
    };
    if overhead_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(overhead_us));
    }
    if let Some(noise) = noise {
        noise.inject();
    }
    if let Some((faults, query_id)) = faults {
        // Chaos-layer delay: like noise, but site-keyed and deterministic
        // per seed. Timing-only — results are unaffected by construction.
        let delay = faults.operator_delay_us(query_id, node);
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
    }
    let end_us = started.elapsed().as_micros() as u64;

    let chunk = outcome?;
    let profile = OperatorProfile {
        node,
        name: node_ref.spec.name(),
        start_us,
        duration_us: end_us.saturating_sub(start_us),
        queue_wait_us,
        worker: ctx.worker,
        rows_out: chunk.rows(),
        bytes_out: chunk.byte_size(),
    };
    if profiles[node].set(profile).is_err() {
        return Err(EngineError::InvalidPlan(format!("node {node} executed twice")));
    }
    if results[node].set(chunk).is_err() {
        return Err(EngineError::InvalidPlan(format!("node {node} produced two results")));
    }
    Ok(())
}

/// Executes one operator, converting panics into query-level errors: a
/// panicking operator must fail *this query* (waking the submitting client)
/// rather than unwind through the shared worker pool.
///
/// `inject_panic` is the chaos layer's [`FaultKind::OperatorPanic`]: the
/// injected panic unwinds from *inside* the guarded region, so it exercises
/// exactly the containment path a genuine operator bug would take.
fn guarded_execute(
    node: NodeId,
    spec: &OperatorSpec,
    inputs: &[Chunk],
    catalog: &Catalog,
    inject_panic: bool,
) -> Result<Chunk> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if inject_panic {
            panic!("injected operator fault");
        }
        execute_node(node, spec, inputs, catalog)
    }))
    .unwrap_or_else(|panic| {
        let msg = panic
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| panic.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        Err(EngineError::WorkerPanicked(format!("operator {node} panicked: {msg}")))
    })
}

// ------------------------------------------------------------- morsel driver
//
// The morsel-driven execution path. Dependency tracking happens at *step*
// granularity (a step is a fused pipeline or a single pipeline-breaker node,
// see `crate::pipeline`); a runnable pipeline fans out into one task per
// morsel, and the last morsel to finish assembles the partial outputs in
// morsel order and publishes the terminal chunk exactly where the
// operator-at-a-time path would have published it.

/// Shared state of one morsel-driven query execution (the step-granular
/// analogue of [`RunState`]).
struct MorselState {
    plan: Arc<Plan>,
    catalog: Arc<Catalog>,
    handle: Arc<QueryHandle>,
    /// Write-once chunk slot per plan node; only published nodes (single
    /// steps and pipeline terminals) are ever set.
    results: Vec<OnceLock<Chunk>>,
    profiles: Vec<OnceLock<OperatorProfile>>,
    /// Remaining cross-step input edges per step.
    step_deps: Vec<AtomicUsize>,
    /// Morsel bookkeeping per step; set when the step is launched (fused
    /// steps only).
    fused_runs: Vec<OnceLock<Arc<FusedRun>>>,
    pipeline_profiles: Mutex<Vec<PipelineProfile>>,
    /// Steps still to complete.
    remaining: AtomicUsize,
    failed: AtomicBool,
    error: Mutex<Option<EngineError>>,
    done: Mutex<bool>,
    done_cv: Condvar,
    started: Instant,
    noise: Option<Arc<NoiseInjector>>,
    faults: Option<Arc<FaultInjector>>,
    overhead_us: u64,
    /// Engine-default morsel size; each pipeline launch may override it
    /// with the query's live hint (see [`FusedRun::morsel_rows`]).
    morsel_rows: usize,
    n_workers: usize,
    /// Shared-scan coordinator ([`crate::sharing`]); `None` when disabled.
    sharing: Option<Arc<ScanRegistry>>,
    /// Per-step partial-aggregate cache key; `Some` only for steps whose
    /// terminal is a cacheable aggregate and sharing is enabled.
    partial_keys: Vec<Option<PartialKey>>,
    /// Steps satisfied by a cached partial (or feeding only such steps);
    /// they are never launched, their terminal chunk is seeded instead.
    skipped: Vec<bool>,
    fused: PipelinePlan,
}

/// Cache key of a step's partial-aggregate entry ([`crate::sharing`]): the
/// terminal's structural signature plus the base tables its subtree reads
/// (the per-table invalidation handle).
#[derive(Clone)]
struct PartialKey {
    signature: String,
    tables: Vec<String>,
}

impl MorselState {
    fn finish(&self) {
        let mut done = self.done.lock();
        *done = true;
        self.done_cv.notify_all();
    }

    fn fail(&self, err: EngineError) {
        {
            let mut slot = self.error.lock();
            if slot.is_none() {
                *slot = Some(err);
            }
        }
        self.failed.store(true, Ordering::Release);
        self.finish();
    }
}

/// Per-pipeline morsel bookkeeping, created when the pipeline is launched
/// (its fan-out depends on the actual source size).
struct FusedRun {
    /// Morsel size resolved at launch: the query's live override
    /// ([`QueryHandle::morsel_rows_hint`], written by the adaptive
    /// controller) or the engine default. Fixed for the pipeline's lifetime
    /// so slicing and fan-out agree.
    morsel_rows: usize,
    n_morsels: usize,
    /// Rows of the pipeline's input (effective scan range or source chunk).
    source_rows: usize,
    /// First effective row of a scan source (clamped to the table size).
    scan_start: usize,
    /// Terminal partial output per morsel, assembled in morsel order.
    parts: Vec<OnceLock<Chunk>>,
    remaining: AtomicUsize,
    /// Accumulated per-stage execution time / output rows / output bytes,
    /// indexed like `Pipeline::member_nodes`.
    stage_time_us: Vec<AtomicU64>,
    stage_rows: Vec<AtomicU64>,
    stage_bytes: Vec<AtomicU64>,
    /// Morsels executed per worker — the locality signal fig19 reports.
    morsels_by_worker: Vec<AtomicU64>,
    queue_wait_us: AtomicU64,
    /// Offset since query start when the pipeline became runnable.
    start_us: u64,
    /// Shared-scan membership for the pipeline's lifetime (scan-source
    /// pipelines with sharing on); dropping it detaches from the group.
    shared: Option<SharedScan>,
    /// Morsels of this pipeline served from the group's published windows.
    morsels_shared: AtomicU64,
    /// Process-wide typed-cache hit count sampled at launch; assembly
    /// reports the delta as [`PipelineProfile::typed_cache_hits`].
    typed_hits_at_launch: u64,
}

impl FusedRun {
    fn record_stage(&self, member: usize, started: Instant, chunk: &Chunk) {
        self.stage_time_us[member]
            .fetch_add(started.elapsed().as_micros() as u64, Ordering::Relaxed);
        self.stage_rows[member].fetch_add(chunk.rows() as u64, Ordering::Relaxed);
        self.stage_bytes[member].fetch_add(chunk.byte_size() as u64, Ordering::Relaxed);
    }
}

/// Launches a runnable step: submits the single-node task, or computes the
/// morsel fan-out and submits one task per morsel.
///
/// Returns `false` only when the scheduler refused a submission (engine shut
/// down). Query-level failures (bad catalog references, double launches) are
/// routed through [`MorselState::fail`] and return `true` — the engine is
/// alive, the query is not.
fn launch_step(state: &Arc<MorselState>, step: usize, submit: &dyn Fn(Task) -> bool) -> bool {
    match &state.fused.steps[step] {
        Step::Single(node) => {
            let st = Arc::clone(state);
            let node = *node;
            submit(Task::new(Arc::clone(&state.handle), move |ctx| {
                run_single_step(st, ctx, step, node)
            }))
        }
        Step::Fused(pipeline) => {
            let (source_rows, scan_start, sliceable, shared) = match pipeline.source {
                PipelineSource::Scan { node } => {
                    let spec = match state.plan.node(node) {
                        Ok(n) => n.spec.clone(),
                        Err(e) => {
                            state.fail(e);
                            return true;
                        }
                    };
                    let OperatorSpec::ScanColumn { table, column, range } = spec else {
                        state.fail(EngineError::InvalidPlan(format!(
                            "pipeline source {node} is not a scan"
                        )));
                        return true;
                    };
                    let len = match state.catalog.table(&table).and_then(|t| t.column(&column)) {
                        Ok(col) => col.len(),
                        Err(e) => {
                            state.fail(e.into());
                            return true;
                        }
                    };
                    let end = range.end.min(len);
                    let start = range.start.min(end);
                    // Attach to the table's scan group for the pipeline's
                    // lifetime; the `FusedRun` holds the membership and every
                    // morsel produces-or-reuses through it.
                    let shared = state
                        .sharing
                        .as_ref()
                        .filter(|_| pipeline.shareable)
                        .map(|reg| reg.attach(&state.catalog, &table, &column));
                    (end - start, start, true, shared)
                }
                PipelineSource::Chunk { producer } => {
                    let chunk = state.results[producer]
                        .get()
                        .expect("chunk-source pipeline launched before its producer");
                    // Non-positional chunks (hash tables, scalars, partials)
                    // cannot be sliced; the pipeline still runs, as a single
                    // morsel covering the whole input.
                    let sliceable =
                        matches!(chunk, Chunk::Column(_) | Chunk::Oids(_) | Chunk::Join(_));
                    (chunk.rows(), 0, sliceable, None)
                }
            };
            // Morsel size is resolved per pipeline launch: the adaptive
            // controller may have overridden the query's size since the
            // last pipeline started. Within one pipeline the size is fixed
            // (slice offsets and fan-out must agree).
            let morsel_rows = state.handle.morsel_rows_hint().unwrap_or(state.morsel_rows).max(1);
            let n_morsels = if sliceable { morsel_count(source_rows, morsel_rows) } else { 1 };
            let n_members = pipeline.member_nodes().len();
            let run = Arc::new(FusedRun {
                morsel_rows,
                n_morsels,
                source_rows,
                scan_start,
                parts: (0..n_morsels).map(|_| OnceLock::new()).collect(),
                remaining: AtomicUsize::new(n_morsels),
                stage_time_us: (0..n_members).map(|_| AtomicU64::new(0)).collect(),
                stage_rows: (0..n_members).map(|_| AtomicU64::new(0)).collect(),
                stage_bytes: (0..n_members).map(|_| AtomicU64::new(0)).collect(),
                morsels_by_worker: (0..state.n_workers).map(|_| AtomicU64::new(0)).collect(),
                queue_wait_us: AtomicU64::new(0),
                start_us: state.started.elapsed().as_micros() as u64,
                shared,
                morsels_shared: AtomicU64::new(0),
                typed_hits_at_launch: apq_columnar::typed_cache_hits(),
            });
            if state.fused_runs[step].set(run).is_err() {
                state.fail(EngineError::InvalidPlan(format!("step {step} launched twice")));
                return true;
            }
            for morsel in 0..n_morsels {
                let st = Arc::clone(state);
                let task = Task::new(Arc::clone(&state.handle), move |ctx| {
                    run_morsel(st, ctx, step, morsel)
                });
                if !submit(task) {
                    return false;
                }
            }
            true
        }
    }
}

/// Executes a pipeline-breaker step whole, exactly like the
/// operator-at-a-time path, then advances the step graph.
fn run_single_step(state: Arc<MorselState>, ctx: &TaskContext<'_>, step: usize, node: NodeId) {
    if state.failed.load(Ordering::Acquire) {
        return;
    }
    if let Some(err) = liveness_error(&state.handle) {
        return state.fail(err);
    }
    let mut inject_panic = false;
    match morsel_fault(&state, node) {
        Some(FaultKind::SpuriousCancel) => {
            state.handle.cancel();
            return state.fail(EngineError::Cancelled);
        }
        Some(FaultKind::OperatorPanic) => inject_panic = true,
        _ => {}
    }
    if let Err(e) = execute_and_publish(
        &state.plan,
        &state.catalog,
        &state.results,
        &state.profiles,
        state.started,
        state.noise.as_deref(),
        state.overhead_us,
        ctx,
        node,
        state.faults.as_deref().map(|f| (f, state.handle.id())),
        inject_panic,
        state.sharing.as_deref(),
        &state.handle,
    ) {
        return state.fail(e);
    }
    // Keep a whole-node aggregate partial warm for the next query of the
    // same shape (grid 0: single steps execute unsliced).
    if let (Some(registry), Some(key)) = (&state.sharing, &state.partial_keys[step]) {
        if let Some(chunk) = state.results.get(node).and_then(OnceLock::get) {
            registry.partial_put(
                &state.catalog,
                0,
                &key.signature,
                key.tables.clone(),
                chunk.clone(),
            );
        }
    }
    complete_step(&state, ctx, step);
}

/// The chaos layer's outcome-changing fault decision for one operator
/// execution in morsel mode. `None` when injection is off or the site is
/// fault-free; the caller maps [`FaultKind::SpuriousCancel`] to a real
/// cancellation and [`FaultKind::OperatorPanic`] to an injected panic inside
/// [`guarded_execute`].
fn morsel_fault(state: &MorselState, node: NodeId) -> Option<FaultKind> {
    state.faults.as_ref().and_then(|f| f.operator_fault(state.handle.id(), node))
}

/// Executes one morsel: slices the pipeline's source, streams the slice
/// through every fused stage, and stores the terminal partial output. The
/// last morsel to finish assembles and publishes.
fn run_morsel(state: Arc<MorselState>, ctx: &TaskContext<'_>, step: usize, morsel: usize) {
    if state.failed.load(Ordering::Acquire) {
        return;
    }
    if let Some(err) = liveness_error(&state.handle) {
        return state.fail(err);
    }
    let Step::Fused(pipeline) = &state.fused.steps[step] else {
        return state.fail(EngineError::InvalidPlan(format!("step {step} is not a pipeline")));
    };
    let run = Arc::clone(
        state.fused_runs[step].get().expect("morsel dispatched before its step was launched"),
    );
    let morsel_rows = run.morsel_rows;

    // The morsel's slice of the pipeline source. Stream slices go through
    // `slice_part`, which preserves the `stream_base` alignment invariant
    // (see `crate::chunk::Chunk::Oids`).
    let mut member = 0;
    let mut cur: Chunk = match pipeline.source {
        PipelineSource::Scan { node } => {
            let spec = match state.plan.node(node) {
                Ok(n) => n.spec.clone(),
                Err(e) => return state.fail(e),
            };
            let OperatorSpec::ScanColumn { table, column, .. } = spec else {
                return state.fail(EngineError::InvalidPlan(format!(
                    "pipeline source {node} is not a scan"
                )));
            };
            let lo = run.scan_start + morsel * morsel_rows;
            let hi = (lo + morsel_rows).min(run.scan_start + run.source_rows);
            let sub = OperatorSpec::ScanColumn { table, column, range: RowRange::new(lo, hi) };
            let inject_panic = match morsel_fault(&state, node) {
                Some(FaultKind::SpuriousCancel) => {
                    state.handle.cancel();
                    return state.fail(EngineError::Cancelled);
                }
                Some(FaultKind::OperatorPanic) => true,
                _ => false,
            };
            let started = Instant::now();
            // Produce-or-reuse through the scan group: the first member to
            // need this window executes the slice and publishes it; everyone
            // else (late attachers circling back for the prefix included)
            // reuses the published chunk. Fault-injected morsels bypass the
            // group — an injected panic must fail this query, never poison
            // (or be masked by) a window other members reuse.
            let produced = match &run.shared {
                Some(scan) if !inject_panic => scan
                    .window(lo, hi, || guarded_execute(node, &sub, &[], &state.catalog, false))
                    .map(|(chunk, shared)| {
                        if shared {
                            run.morsels_shared.fetch_add(1, Ordering::Relaxed);
                        }
                        state.handle.record_morsel(shared);
                        chunk
                    }),
                _ => guarded_execute(node, &sub, &[], &state.catalog, inject_panic)
                    .inspect(|_| state.handle.record_morsel(false)),
            };
            match produced {
                Ok(chunk) => {
                    run.record_stage(member, started, &chunk);
                    member = 1;
                    chunk
                }
                Err(e) => return state.fail(e),
            }
        }
        PipelineSource::Chunk { producer } => {
            let chunk = match state.results.get(producer).and_then(OnceLock::get) {
                Some(chunk) => chunk.clone(),
                None => {
                    return state.fail(EngineError::InvalidPlan(format!(
                        "pipeline over node {producer} ran before it completed"
                    )));
                }
            };
            if run.n_morsels == 1 {
                chunk
            } else {
                match slice_part(producer, &chunk, morsel * morsel_rows, morsel_rows) {
                    Ok(slice) => slice,
                    Err(e) => return state.fail(e),
                }
            }
        }
    };

    // Stream the morsel through the fused stages while it is cache-hot.
    for &stage in &pipeline.stages {
        let node_ref = match state.plan.node(stage) {
            Ok(n) => n.clone(),
            Err(e) => return state.fail(e),
        };
        let mut inputs: Vec<Chunk> = Vec::with_capacity(node_ref.inputs.len());
        inputs.push(cur);
        let aligned = node_ref.spec.aligned_inputs(node_ref.inputs.len());
        for (i, &input) in node_ref.inputs.iter().enumerate().skip(1) {
            let chunk = match state.results.get(input).and_then(OnceLock::get) {
                Some(chunk) => chunk,
                None => {
                    return state.fail(EngineError::InvalidPlan(format!(
                        "stage {stage} ran before its shared input {input} completed"
                    )));
                }
            };
            // A range-aligned secondary input (Calc col⊗col, IfThenElse)
            // zips positionally against the pipeline stream, so it must be
            // cut at the same relative window as the source morsel. The
            // analyzer only fuses these stages when nothing upstream has
            // compacted the stream, so the source's morsel grid applies
            // verbatim. A whole-length mismatch is surfaced here exactly as
            // operator-at-a-time would report it; without this check each
            // morsel-sized slice pair could happen to agree and silently
            // diverge from the serial semantics.
            let positional = matches!(chunk, Chunk::Column(_) | Chunk::Oids(_) | Chunk::Join(_));
            if run.n_morsels > 1 && aligned.get(i).copied().unwrap_or(false) && positional {
                if chunk.rows() != run.source_rows {
                    return state.fail(
                        apq_operators::OperatorError::LengthMismatch {
                            left: run.source_rows,
                            right: chunk.rows(),
                        }
                        .into(),
                    );
                }
                match slice_part(input, chunk, morsel * morsel_rows, morsel_rows) {
                    Ok(slice) => inputs.push(slice),
                    Err(e) => return state.fail(e),
                }
            } else {
                inputs.push(chunk.clone());
            }
        }
        let inject_panic = match morsel_fault(&state, stage) {
            Some(FaultKind::SpuriousCancel) => {
                state.handle.cancel();
                return state.fail(EngineError::Cancelled);
            }
            Some(FaultKind::OperatorPanic) => true,
            _ => false,
        };
        let started = Instant::now();
        match guarded_execute(stage, &node_ref.spec, &inputs, &state.catalog, inject_panic) {
            Ok(chunk) => {
                run.record_stage(member, started, &chunk);
                member += 1;
                cur = chunk;
            }
            Err(e) => return state.fail(e),
        }
    }

    // Emulated overhead / noise apply once per morsel (the morsel is the
    // dispatch unit here, as the operator is in operator-at-a-time mode).
    if state.overhead_us > 0 {
        std::thread::sleep(std::time::Duration::from_micros(state.overhead_us));
    }
    if let Some(noise) = &state.noise {
        noise.inject();
    }
    if let Some(faults) = &state.faults {
        // Chaos-layer delay, once per morsel (the dispatch unit here), keyed
        // on the pipeline terminal. Timing-only.
        let delay = faults.operator_delay_us(state.handle.id(), pipeline.terminal());
        if delay > 0 {
            std::thread::sleep(std::time::Duration::from_micros(delay));
        }
    }

    run.morsels_by_worker[ctx.worker].fetch_add(1, Ordering::Relaxed);
    run.queue_wait_us.fetch_add(ctx.queue_wait.as_micros() as u64, Ordering::Relaxed);
    if run.parts[morsel].set(cur).is_err() {
        return state.fail(EngineError::InvalidPlan(format!(
            "morsel {morsel} of step {step} executed twice"
        )));
    }
    if run.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        assemble_pipeline(&state, ctx, step, pipeline, &run);
    }
}

/// Runs on the worker that finished a pipeline's last morsel: packs the
/// partial outputs in morsel order (the exchange-union recombination, so the
/// published chunk is byte-identical to whole-node execution), publishes the
/// terminal chunk and the per-node/per-pipeline profiles, and advances the
/// step graph.
fn assemble_pipeline(
    state: &Arc<MorselState>,
    ctx: &TaskContext<'_>,
    step: usize,
    pipeline: &Pipeline,
    run: &FusedRun,
) {
    let terminal = pipeline.terminal();
    let members = pipeline.member_nodes();
    let terminal_member = members.len() - 1;

    let assembly_started = Instant::now();
    let final_chunk = if run.n_morsels == 1 {
        run.parts[0].get().cloned().expect("single morsel completed")
    } else {
        let parts: Vec<Chunk> =
            run.parts.iter().map(|p| p.get().cloned().expect("all morsels completed")).collect();
        match exchange_union(terminal, &parts) {
            Ok(chunk) => chunk,
            Err(e) => return state.fail(e),
        }
    };
    run.stage_time_us[terminal_member]
        .fetch_add(assembly_started.elapsed().as_micros() as u64, Ordering::Relaxed);

    for (i, &node) in members.iter().enumerate() {
        let node_ref = match state.plan.node(node) {
            Ok(n) => n.clone(),
            Err(e) => return state.fail(e),
        };
        let is_terminal = i == terminal_member;
        let profile = OperatorProfile {
            node,
            name: node_ref.spec.name(),
            start_us: run.start_us,
            duration_us: run.stage_time_us[i].load(Ordering::Relaxed),
            // The pipeline's accumulated morsel queue wait is attributed to
            // the terminal stage so query-level totals stay meaningful
            // without double counting per fused stage.
            queue_wait_us: if is_terminal { run.queue_wait_us.load(Ordering::Relaxed) } else { 0 },
            worker: ctx.worker,
            rows_out: if is_terminal {
                final_chunk.rows()
            } else {
                run.stage_rows[i].load(Ordering::Relaxed) as usize
            },
            bytes_out: if is_terminal {
                final_chunk.byte_size()
            } else {
                run.stage_bytes[i].load(Ordering::Relaxed) as usize
            },
        };
        if state.profiles[node].set(profile).is_err() {
            return state.fail(EngineError::InvalidPlan(format!("node {node} executed twice")));
        }
    }

    state.pipeline_profiles.lock().push(PipelineProfile {
        step,
        nodes: members,
        n_morsels: run.n_morsels,
        morsel_rows: run.morsel_rows,
        source_rows: run.source_rows,
        queue_wait_us: run.queue_wait_us.load(Ordering::Relaxed),
        morsels_by_worker: run
            .morsels_by_worker
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect(),
        morsels_shared: run.morsels_shared.load(Ordering::Relaxed),
        groupagg_fused: matches!(
            state.plan.node(terminal).map(|n| &n.spec),
            Ok(OperatorSpec::GroupAgg { .. })
        ),
        typed_cache_hits: apq_columnar::typed_cache_hits().saturating_sub(run.typed_hits_at_launch),
    });

    // Keep the assembled aggregate partial warm for the next query of the
    // same shape ([`crate::sharing`] partial-aggregate reuse).
    if let (Some(registry), Some(key)) = (&state.sharing, &state.partial_keys[step]) {
        registry.partial_put(
            &state.catalog,
            run.morsel_rows,
            &key.signature,
            key.tables.clone(),
            final_chunk.clone(),
        );
    }

    if state.results[terminal].set(final_chunk).is_err() {
        return state
            .fail(EngineError::InvalidPlan(format!("node {terminal} produced two results")));
    }
    complete_step(state, ctx, step);
}

/// Marks a step complete: launches consumer steps whose dependencies are now
/// all satisfied (their tasks go through the task context, so work-stealing
/// schedulers keep them on the publishing worker's deque) and finishes the
/// query when every step is done.
fn complete_step(state: &Arc<MorselState>, ctx: &TaskContext<'_>, step: usize) {
    for &(consumer, edges) in &state.fused.out_edges[step] {
        let before = state.step_deps[consumer].fetch_sub(edges, Ordering::AcqRel);
        if before == edges {
            // A consumer satisfied from the partial cache already has its
            // terminal chunk seeded; it must never launch.
            if state.skipped[consumer] {
                continue;
            }
            launch_step(state, consumer, &|task| {
                ctx.submit(task);
                true
            });
        }
    }
    if state.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
        state.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apq_columnar::partition::RowRange;
    use apq_columnar::{ScalarValue, TableBuilder};
    use apq_operators::{AggFunc, CmpOp, Predicate};

    use crate::plan::OperatorSpec;

    fn catalog(rows: usize) -> Arc<Catalog> {
        let mut c = Catalog::new();
        c.register(
            TableBuilder::new("t")
                .i64_column("a", (0..rows as i64).collect())
                .i64_column("b", (0..rows as i64).map(|v| v * 2).collect())
                .build()
                .unwrap(),
        );
        Arc::new(c)
    }

    fn scan(col: &str, rows: usize) -> OperatorSpec {
        OperatorSpec::ScanColumn {
            table: "t".into(),
            column: col.into(),
            range: RowRange::new(0, rows),
        }
    }

    /// Serial plan: sum(b) where a < threshold.
    fn filter_sum_plan(rows: usize, threshold: i64) -> Plan {
        let mut p = Plan::new();
        let a = p.add(scan("a", rows), vec![]);
        let sel = p
            .add(OperatorSpec::Select { predicate: Predicate::cmp(CmpOp::Lt, threshold) }, vec![a]);
        let b = p.add(scan("b", rows), vec![]);
        let fetch = p.add(OperatorSpec::Fetch, vec![sel, b]);
        let agg = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![fetch]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![agg]);
        p.set_root(fin);
        p
    }

    fn both_policies() -> [Engine; 2] {
        [
            Engine::new(EngineConfig::with_workers(2)),
            Engine::new(
                EngineConfig::with_workers(2).with_scheduler(SchedulerPolicy::WorkStealing),
            ),
        ]
    }

    #[test]
    fn executes_serial_plan() {
        for engine in both_policies() {
            let cat = catalog(1000);
            let plan = filter_sum_plan(1000, 10);
            let exec = engine.execute(&plan, &cat).unwrap();
            // sum of b over a in [0,10) = 2 * (0+..+9) = 90.
            assert_eq!(exec.output, QueryOutput::Scalar(ScalarValue::I64(90)));
            assert_eq!(exec.profile.operators.len(), 6);
            assert!(exec.profile.wall_us() > 0);
            assert!(exec.profile.most_expensive().is_some());
            // Every task's dispatch is recorded by the scheduler.
            assert_eq!(engine.scheduler_stats().total_executed(), 6);
        }
    }

    #[test]
    fn parallel_partitioned_plan_gives_same_answer() {
        let engine = Engine::with_workers(4);
        let cat = catalog(10_000);
        let serial = filter_sum_plan(10_000, 500);
        let serial_out = engine.execute(&serial, &cat).unwrap().output;

        // Hand-built two-partition version of the same query.
        let mut p = Plan::new();
        let a0 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(0, 5_000),
            },
            vec![],
        );
        let a1 = p.add(
            OperatorSpec::ScanColumn {
                table: "t".into(),
                column: "a".into(),
                range: RowRange::new(5_000, 10_000),
            },
            vec![],
        );
        let pred = Predicate::cmp(CmpOp::Lt, 500i64);
        let s0 = p.add(OperatorSpec::Select { predicate: pred.clone() }, vec![a0]);
        let s1 = p.add(OperatorSpec::Select { predicate: pred }, vec![a1]);
        let b = p.add(scan("b", 10_000), vec![]);
        let f0 = p.add(OperatorSpec::Fetch, vec![s0, b]);
        let f1 = p.add(OperatorSpec::Fetch, vec![s1, b]);
        let g0 = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![f0]);
        let g1 = p.add(OperatorSpec::ScalarAgg { func: AggFunc::Sum }, vec![f1]);
        let fin = p.add(OperatorSpec::FinalizeAgg { func: AggFunc::Sum }, vec![g0, g1]);
        p.set_root(fin);

        let exec = engine.execute(&p, &cat).unwrap();
        assert_eq!(exec.output, serial_out);
        // Both partitions' operators were profiled.
        assert_eq!(exec.profile.operators.len(), 10);
    }

    #[test]
    fn concurrent_queries_share_the_pool() {
        for policy in SchedulerPolicy::ALL {
            let engine =
                Arc::new(Engine::new(EngineConfig::with_workers(3).with_scheduler(policy)));
            let cat = catalog(5_000);
            let mut handles = Vec::new();
            for i in 0..8 {
                let engine = Arc::clone(&engine);
                let cat = Arc::clone(&cat);
                handles.push(std::thread::spawn(move || {
                    let plan = filter_sum_plan(5_000, 100 + i);
                    engine.execute(&plan, &cat).unwrap().output
                }));
            }
            for (i, h) in handles.into_iter().enumerate() {
                let out = h.join().unwrap();
                let threshold = 100 + i as i64;
                let expected: i64 = (0..threshold).map(|v| v * 2).sum();
                assert_eq!(out, QueryOutput::Scalar(ScalarValue::I64(expected)));
            }
        }
    }

    #[test]
    fn execution_errors_are_propagated() {
        for engine in both_policies() {
            let cat = catalog(10);
            // Division by zero in a calc node.
            let mut p = Plan::new();
            let a = p.add(scan("a", 10), vec![]);
            let div = p.add(
                OperatorSpec::Calc {
                    op: apq_operators::BinaryOp::Div,
                    left_scalar: None,
                    right_scalar: Some(ScalarValue::I64(0)),
                },
                vec![a],
            );
            p.set_root(div);
            let err = engine.execute(&p, &cat).unwrap_err();
            assert!(matches!(err, EngineError::Operator(_)));

            // Unknown table surfaces as a storage error.
            let mut p = Plan::new();
            let bad = p.add(
                OperatorSpec::ScanColumn {
                    table: "missing".into(),
                    column: "x".into(),
                    range: RowRange::new(0, 1),
                },
                vec![],
            );
            p.set_root(bad);
            assert!(engine.execute(&p, &cat).is_err());

            // Invalid plans are rejected before execution.
            let p = Plan::new();
            assert!(matches!(engine.execute(&p, &cat), Err(EngineError::InvalidPlan(_))));
        }
    }

    #[test]
    fn noise_and_overhead_inflate_operator_times() {
        let cat = catalog(100);
        let plan = filter_sum_plan(100, 50);
        let quiet = Engine::new(EngineConfig::with_workers(2));
        let slow = Engine::new(EngineConfig {
            per_operator_overhead_us: 500,
            ..EngineConfig::with_workers(2)
        });
        let q = quiet.execute(&plan, &cat).unwrap();
        let s = slow.execute(&plan, &cat).unwrap();
        assert_eq!(q.output, s.output);
        assert!(s.profile.total_cpu_us() > q.profile.total_cpu_us() + 1_000);

        let noisy = Engine::new(EngineConfig {
            noise: Some(NoiseConfig { probability: 1.0, max_delay_us: 300, seed: 7 }),
            ..EngineConfig::with_workers(2)
        });
        let n = noisy.execute(&plan, &cat).unwrap();
        assert_eq!(n.output, q.output);
    }

    #[test]
    fn engine_debug_and_config() {
        let engine = Engine::with_workers(2);
        assert_eq!(engine.n_workers(), 2);
        assert!(format!("{engine:?}").contains("n_workers"));
        assert_eq!(engine.config().per_operator_overhead_us, 0);
        assert_eq!(engine.config().scheduler, SchedulerPolicy::GlobalQueue);
        let default_cfg = EngineConfig::default();
        assert!(default_cfg.n_workers >= 1);
        assert_eq!(default_cfg.scheduler, SchedulerPolicy::GlobalQueue);
    }

    #[test]
    fn queue_wait_is_profiled() {
        // One worker, a plan with independent scans: whichever scan runs
        // second must have waited in the queue while the first executed.
        let engine = Engine::with_workers(1);
        let cat = catalog(50_000);
        let plan = filter_sum_plan(50_000, 1_000);
        let exec = engine.execute(&plan, &cat).unwrap();
        let total_wait: u64 = exec.profile.operators.iter().map(|o| o.queue_wait_us).sum();
        assert!(
            total_wait > 0,
            "no queue wait recorded on a single-worker engine: {:?}",
            exec.profile.operators
        );
        assert_eq!(exec.profile.total_queue_wait_us(), total_wait);
    }

    #[test]
    fn cancellation_aborts_the_query() {
        for engine in both_policies() {
            let cat = catalog(1_000);
            let plan = Arc::new(filter_sum_plan(1_000, 10));
            let handle = engine.register_query(QueryOptions::default());
            handle.cancel();
            let err = engine.execute_with_handle(&plan, &cat, handle).unwrap_err();
            assert_eq!(err, EngineError::Cancelled);
        }
    }

    #[test]
    fn admitted_dop_throttles_but_preserves_results() {
        for policy in SchedulerPolicy::ALL {
            let engine = Engine::new(EngineConfig::with_workers(4).with_scheduler(policy));
            let cat = catalog(10_000);
            let plan = Arc::new(filter_sum_plan(10_000, 500));
            let expected = engine.execute_shared(&plan, &cat).unwrap().output;
            let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
            let exec = engine.execute_with_handle(&plan, &cat, handle).unwrap();
            assert_eq!(exec.output, expected, "{policy}: throttled run diverged");
        }
    }

    #[test]
    fn shared_plan_execution_avoids_replanning() {
        let engine = Engine::with_workers(2);
        let cat = catalog(2_000);
        let plan = Arc::new(filter_sum_plan(2_000, 20));
        let first = engine.execute_shared(&plan, &cat).unwrap().output;
        for _ in 0..3 {
            assert_eq!(engine.execute_shared(&plan, &cat).unwrap().output, first);
        }
    }

    #[test]
    fn morsel_mode_matches_operator_at_a_time() {
        let cat = catalog(10_000);
        let plan = filter_sum_plan(10_000, 500);
        let reference = Engine::with_workers(2).execute(&plan, &cat).unwrap();
        for policy in SchedulerPolicy::ALL {
            let engine = Engine::new(
                EngineConfig::with_workers(2)
                    .with_scheduler(policy)
                    .with_execution_mode(ExecutionMode::MorselDriven)
                    .with_morsel_rows(1_000),
            );
            let exec = engine.execute(&plan, &cat).unwrap();
            assert_eq!(exec.output, reference.output, "{policy}: morsel mode diverged");
            // Every live node still gets a profile.
            assert_eq!(exec.profile.operators.len(), reference.profile.operators.len());
            // The scan→select→fetch→agg chain fused: 10 morsels of 1000 rows.
            assert_eq!(exec.profile.pipelines.len(), 1);
            let pipeline = &exec.profile.pipelines[0];
            assert_eq!(pipeline.n_morsels, 10);
            assert_eq!(pipeline.source_rows, 10_000);
            assert_eq!(exec.profile.total_morsels(), 10);
            assert_eq!(
                exec.profile.morsels_by_worker().iter().sum::<u64>(),
                10,
                "{policy}: morsel worker counters incomplete"
            );
        }
    }

    #[test]
    fn morsel_mode_handles_errors_and_cancellation() {
        let engine = Engine::new(
            EngineConfig::with_workers(2).with_execution_mode(ExecutionMode::MorselDriven),
        );
        let cat = catalog(100);
        // Division by zero inside a fused stage fails the query cleanly.
        let mut p = Plan::new();
        let a = p.add(scan("a", 100), vec![]);
        let div = p.add(
            OperatorSpec::Calc {
                op: apq_operators::BinaryOp::Div,
                left_scalar: None,
                right_scalar: Some(ScalarValue::I64(0)),
            },
            vec![a],
        );
        p.set_root(div);
        assert!(matches!(engine.execute(&p, &cat), Err(EngineError::Operator(_))));

        // Cancellation before submission aborts the query.
        let plan = Arc::new(filter_sum_plan(100, 10));
        let handle = engine.register_query(QueryOptions::default());
        handle.cancel();
        let err = engine.execute_with_handle(&plan, &cat, handle).unwrap_err();
        assert_eq!(err, EngineError::Cancelled);

        // And the engine still executes healthy queries afterwards.
        let ok = engine.execute(&filter_sum_plan(100, 10), &cat).unwrap();
        assert_eq!(ok.output, QueryOutput::Scalar(ScalarValue::I64(90)));
    }

    #[test]
    fn morsel_mode_respects_admitted_dop() {
        for policy in SchedulerPolicy::ALL {
            let engine = Engine::new(
                EngineConfig::with_workers(4)
                    .with_scheduler(policy)
                    .with_execution_mode(ExecutionMode::MorselDriven)
                    .with_morsel_rows(512),
            );
            let cat = catalog(10_000);
            let plan = Arc::new(filter_sum_plan(10_000, 500));
            let expected = engine.execute_shared(&plan, &cat).unwrap().output;
            let handle = engine.register_query(QueryOptions::with_admitted_dop(1));
            let exec = engine.execute_with_handle(&plan, &cat, handle).unwrap();
            assert_eq!(exec.output, expected, "{policy}: throttled morsel run diverged");
        }
    }

    #[test]
    fn work_stealing_records_locality() {
        let engine = Engine::new(
            EngineConfig::with_workers(2).with_scheduler(SchedulerPolicy::WorkStealing),
        );
        let cat = catalog(20_000);
        // A serial chain: every follow-up is produced on a worker, so local
        // hits must appear.
        let plan = filter_sum_plan(20_000, 500);
        engine.execute(&plan, &cat).unwrap();
        let stats = engine.scheduler_stats();
        assert_eq!(stats.policy, "work-stealing");
        assert_eq!(stats.total_executed(), 6);
        assert!(
            stats.total_local_hits() > 0,
            "chained operators never hit the local deque: {stats:?}"
        );
    }
}
